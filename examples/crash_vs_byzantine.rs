//! The paper's motivation, live: the same Byzantine coordinator destroys
//! the crash-model protocol and bounces off the transformed one.
//!
//! ```text
//! cargo run --example crash_vs_byzantine
//! ```

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::core::crash::{CrashConsensus, CrashMsg};
use ft_modular::core::spec::Resilience;
use ft_modular::core::validator::{check_crash_consensus, check_vector_consensus, detections};
use ft_modular::faults::attacks::VectorCorruptor;
use ft_modular::faults::crash_attacks::{CrashAttack, CrashSaboteur};
use ft_modular::faults::ByzantineWrapper;
use ft_modular::fd::TimeoutDetector;
use ft_modular::sim::runner::BoxedActor;
use ft_modular::sim::{Duration, SimConfig, Simulation};

const N: usize = 4;
const SEED: u64 = 11;

fn main() {
    let proposals: Vec<Value> = (0..N as u64).map(|i| 100 + i).collect();
    println!("proposals: {proposals:?}");
    println!("attacker: p0, the round-1 coordinator, lies about p2's value\n");

    // ------------------------------------------------------------------
    // Act 1: the crash-model protocol meets a Byzantine coordinator.
    // ------------------------------------------------------------------
    let report = Simulation::build_boxed(SimConfig::new(N).seed(SEED), |id| {
        let honest = CrashConsensus::new(
            Resilience::new(N, 1),
            id,
            100 + id.0 as u64,
            TimeoutDetector::new(N, Duration::of(150)),
            Duration::of(25),
            Some(Duration::of(40)),
        );
        if id.0 == 0 {
            Box::new(CrashSaboteur::new(
                honest,
                CrashAttack::CorruptEstimate { poison: 31337 },
            )) as BoxedActor<CrashMsg, Value>
        } else {
            Box::new(honest)
        }
    })
    .run();
    println!("== crash-model protocol (Fig. 2) ==");
    for (i, d) in report.decisions.iter().enumerate().skip(1) {
        println!("  p{i} decided {d:?}");
    }
    let verdict = check_crash_consensus(&report, &proposals, &[true, false, false, false]);
    println!("  verdict: {}", render(&verdict.violations));

    // ------------------------------------------------------------------
    // Act 2: the transformed protocol meets the same attack.
    // ------------------------------------------------------------------
    let setup = ProtocolConfig::new(N, 1).seed(SEED).setup();
    let report = Simulation::build_boxed(SimConfig::new(N).seed(SEED), |id| {
        let honest = ByzantineConsensus::new(&setup, id, 100 + id.0 as u64);
        if id.0 == 0 {
            Box::new(ByzantineWrapper::new(
                honest,
                Box::new(VectorCorruptor {
                    entry: 2,
                    poison: 31337,
                }),
                setup.keys[0].clone(),
                Duration::of(30),
            )) as BoxedActor<_, ValueVector>
        } else {
            Box::new(honest)
        }
    })
    .run();
    println!("\n== transformed protocol (Fig. 3) ==");
    for (i, d) in report.decisions.iter().enumerate().skip(1) {
        match d {
            Some(v) => println!("  p{i} decided {v:?}"),
            None => println!("  p{i} never decided"),
        }
    }
    let verdict = check_vector_consensus(&report, &proposals, &[true, false, false, false], 1);
    println!("  verdict: {}", render(&verdict.violations));
    println!("  convictions of the attacker:");
    for d in detections(&report.trace) {
        println!(
            "    t={} {} convicted {} ({})",
            d.at, d.observer, d.culprit, d.class
        );
    }
}

fn render(violations: &[String]) -> String {
    if violations.is_empty() {
        "all properties hold".to_string()
    } else {
        format!("VIOLATED — {}", violations.join("; "))
    }
}
