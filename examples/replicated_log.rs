//! A replicated log built from repeated vector consensus — the classic
//! application consensus papers motivate. Each slot of the log is decided
//! by one instance of the transformed protocol; a Byzantine process
//! attacks a different way in every slot and the log stays consistent.
//!
//! ```text
//! cargo run --example replicated_log
//! ```

use ft_modular::certify::ValueVector;
use ft_modular::core::byzantine::log::{check_log_consistency, ReplicatedLog};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::faults::attacks::{DecideForger, MuteAfter, VectorCorruptor, VoteDuplicator};
use ft_modular::faults::{ByzantineWrapper, Tamper};
use ft_modular::runtime::{Duration, SendBoxedActor, VirtualTime};
use ft_modular::sim::{SimConfig, Simulation};

const N: usize = 4;
const SLOTS: u64 = 6;

fn main() {
    // ------------------------------------------------------------------
    // Part 1: true state-machine replication — one simulation, one
    // ReplicatedLog actor per replica, slots pipelined inside the run.
    // A replica crashes in the middle; the survivors never fork.
    // ------------------------------------------------------------------
    println!("== part 1: ReplicatedLog, one simulation, crash mid-log ==");
    let setup = ProtocolConfig::new(N, 1).seed(42).setup();
    let report = Simulation::build_boxed(
        SimConfig::new(N).seed(42).crash(2, VirtualTime::at(40)),
        |id| {
            Box::new(ReplicatedLog::<ByzantineConsensus>::new(
                &setup,
                id,
                4,
                |slot, p| 1000 * slot + 100 + p as u64,
            ))
        },
    )
    .run();
    match check_log_consistency(&report.decisions, &report.crashed, 3) {
        Ok(log) => {
            for (i, v) in log.iter().enumerate() {
                println!("  slot {i}: {v:?}");
            }
            println!(
                "  {} live replicas agree on {} slots (p2 crashed at t=40); {} msgs, t = {}",
                report.crashed.iter().filter(|c| !**c).count(),
                log.len(),
                report.metrics.messages_sent,
                report.end_time
            );
        }
        Err(e) => println!("  LOG INCONSISTENT: {e}"),
    }

    // ------------------------------------------------------------------
    // Part 2: one fresh consensus instance per slot, with the Byzantine
    // p3 rotating its attack strategy every slot.
    // ------------------------------------------------------------------
    println!("\n== part 2: per-slot instances, rotating attacks ==");
    println!("p3 is Byzantine and rotates its strategy every slot\n");

    let mut log: Vec<ValueVector> = Vec::new();
    for slot in 0..SLOTS {
        // Each slot: fresh keys and a fresh instance; commands are
        // "client requests" 1000*slot + client id.
        let setup = ProtocolConfig::new(N, 1).seed(slot).setup();
        let attack: Box<dyn Tamper> = match slot % 4 {
            0 => Box::new(VectorCorruptor {
                entry: 1,
                poison: 31337,
            }),
            1 => Box::new(MuteAfter {
                after: VirtualTime::at(5),
            }),
            2 => Box::new(DecideForger::new(VirtualTime::at(1), N, 999)),
            _ => Box::new(VoteDuplicator),
        };
        let attack_name = match slot % 4 {
            0 => "vector corruption",
            1 => "muteness",
            2 => "forged DECIDE",
            _ => "vote duplication",
        };
        // The factory runs once per process; the single attacker takes
        // the boxed strategy out of this Option.
        let mut attack = Some(attack);
        let report = Simulation::build_boxed(SimConfig::new(N).seed(slot), |id| {
            let honest = ByzantineConsensus::new(&setup, id, 1000 * slot + 100 + id.0 as u64);
            if id.0 == 3 {
                Box::new(ByzantineWrapper::new(
                    honest,
                    attack.take().expect("exactly one attacker"),
                    setup.keys[3].clone(),
                    Duration::of(10),
                )) as SendBoxedActor<_, ValueVector>
            } else {
                Box::new(honest)
            }
        })
        .run();

        let decided = (0..3)
            .filter_map(|p| report.decisions[p].clone())
            .next()
            .expect("correct processes decided");
        let consistent = (0..3)
            .filter_map(|p| report.decisions[p].as_ref())
            .all(|v| *v == decided);
        println!("slot {slot}: {attack_name:<18} decided {decided:?}  consistent={consistent}");
        assert!(consistent, "log diverged at slot {slot}");
        log.push(decided);
    }

    println!("\nfinal log ({} slots):", log.len());
    for (i, v) in log.iter().enumerate() {
        println!("  [{i}] {v:?}");
    }
    println!("\nEvery slot carries >= n − F client commands despite a different");
    println!("attack per slot — the log never forked.");
}
