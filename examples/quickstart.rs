//! Quickstart: run the transformed (Byzantine-resilient) vector consensus
//! on a simulated asynchronous network and print what everyone decided.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::core::validator::max_round;
use ft_modular::sim::{SimConfig, Simulation};

fn main() {
    let n = 5;
    let f = 2;

    // Shared setup: RSA key pairs for everyone plus the public directory.
    let setup = ProtocolConfig::new(n, f).seed(2026).setup();
    println!(
        "system: n = {n}, F = {f}, quorum = {}",
        setup.resilience.quorum()
    );
    println!(
        "psi bound: decided vector carries >= {} correct entries\n",
        setup.resilience.psi()
    );

    // Everyone proposes 100 + its index; the network delivers with random
    // delays in [1, 10] and stabilizes after GST.
    let report = Simulation::build_boxed(SimConfig::new(n).seed(7), |id| {
        Box::new(ByzantineConsensus::new(&setup, id, 100 + id.0 as u64))
    })
    .run();

    for (i, d) in report.decisions.iter().enumerate() {
        match d {
            Some(vect) => println!("p{i} decided {vect:?}"),
            None => println!("p{i} never decided"),
        }
    }
    println!(
        "\nagreement: {}",
        if report.unanimous().is_some() {
            "yes"
        } else {
            "NO"
        }
    );
    println!("rounds used: {}", max_round(&report.trace, n));
    println!(
        "cost: {} messages, {} bytes, decided at t = {}",
        report.metrics.messages_sent, report.metrics.bytes_sent, report.end_time
    );
}
