//! The fault-injection lab: run the whole attack gallery against the
//! transformed protocol and print, per attack, whether the paper's
//! properties held and which module convicted the attacker.
//!
//! ```text
//! cargo run --example fault_injection_lab
//! ```

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::{ProtocolConfig, ProtocolSetup};
use ft_modular::core::validator::{check_vector_consensus, detections};
use ft_modular::faults::attacks::{
    DecideForger, IdentityThief, InitEquivocator, MuteAfter, RoundJumper, SpuriousCurrent,
    VectorCorruptor, VoteDuplicator, WrongKeySigner,
};
use ft_modular::faults::{ByzantineWrapper, Tamper};
use ft_modular::sim::runner::BoxedActor;
use ft_modular::sim::{Duration, ProcessId, SimConfig, Simulation, VirtualTime};

const N: usize = 4;
const ATTACKER: u32 = 3;

/// A named attack constructor.
type AttackEntry = (&'static str, Box<dyn Fn(&ProtocolSetup) -> Box<dyn Tamper>>);

fn main() {
    let gallery: Vec<AttackEntry> = vec![
        (
            "muteness (silent after t=30)",
            Box::new(|_| {
                Box::new(MuteAfter {
                    after: VirtualTime::at(30),
                })
            }),
        ),
        (
            "vector corruption",
            Box::new(|_| {
                Box::new(VectorCorruptor {
                    entry: 1,
                    poison: 666,
                })
            }),
        ),
        (
            "round jumping (+5)",
            Box::new(|_| Box::new(RoundJumper { jump: 5 })),
        ),
        ("vote duplication", Box::new(|_| Box::new(VoteDuplicator))),
        (
            "forged DECIDE",
            Box::new(|_| Box::new(DecideForger::new(VirtualTime::at(1), N, 999))),
        ),
        (
            "wrong signing key",
            Box::new(|_| {
                let mut rng = ft_modular::crypto::rng_from_seed(0xBAD);
                Box::new(WrongKeySigner {
                    wrong: ft_modular::crypto::rsa::KeyPair::generate(&mut rng, 128),
                })
            }),
        ),
        (
            "identity theft (claims p1)",
            Box::new(|_| {
                Box::new(IdentityThief {
                    victim: ProcessId(1),
                })
            }),
        ),
        (
            "INIT equivocation",
            Box::new(|_| Box::new(InitEquivocator { alt: 1313 })),
        ),
        (
            "spurious CURRENT",
            Box::new(|_| Box::new(SpuriousCurrent::new(VirtualTime::at(1), N))),
        ),
    ];

    println!("n = {N}, F = 1, attacker = p{ATTACKER}; every row is one simulated run\n");
    println!(
        "{:<28} {:<11} {:<10} {:<22} classes seen",
        "attack", "agreement", "validity", "first conviction"
    );
    println!("{}", "-".repeat(95));

    for (name, mk) in gallery {
        let proposals: Vec<Value> = (0..N as u64).map(|i| 100 + i).collect();
        let setup = ProtocolConfig::new(N, 1).seed(5).setup();
        let report = Simulation::build_boxed(SimConfig::new(N).seed(5), |id| {
            let honest = ByzantineConsensus::new(&setup, id, proposals[id.index()]);
            if id.0 == ATTACKER {
                Box::new(ByzantineWrapper::new(
                    honest,
                    mk(&setup),
                    setup.keys[ATTACKER as usize].clone(),
                    Duration::of(10),
                )) as BoxedActor<_, ValueVector>
            } else {
                Box::new(honest)
            }
        })
        .run();

        let mut faulty = [false; N];
        faulty[ATTACKER as usize] = true;
        let v = check_vector_consensus(&report, &proposals, &faulty, 1);
        let det = detections(&report.trace);
        let mut classes: Vec<&str> = det
            .iter()
            .filter(|d| d.observer.0 != ATTACKER)
            .map(|d| d.class.as_str())
            .collect();
        classes.sort_unstable();
        classes.dedup();
        let first = det
            .iter()
            .filter(|d| d.observer.0 != ATTACKER)
            .map(|d| format!("t={} by {}", d.at, d.observer))
            .next()
            .unwrap_or_else(|| "(none needed)".to_string());
        println!(
            "{:<28} {:<11} {:<10} {:<22} {}",
            name,
            yes(v.agreement && v.termination),
            yes(v.validity),
            first,
            if classes.is_empty() {
                "-".to_string()
            } else {
                classes.join(", ")
            },
        );
    }
    println!(
        "\n'(none needed)' marks faults that are either handled by the muteness detector\n\
         alone or are not locally detectable (equivocation) — properties hold regardless."
    );

    sweep_demo();
}

/// The same gallery, harness-style: a scenario matrix fanned across
/// worker threads, aggregated into the structured JSON report. The matrix
/// crosses the protocol axis, so every cell runs once under the
/// transformed Hurfin–Raynal instance and once under transformed
/// Chandra–Toueg. The report is a pure function of `(matrix, base seed)`
/// — rerun it on any number of threads and the bytes do not change.
fn sweep_demo() {
    use ft_modular::faults::{sweep_matrix, FaultBehavior, ScenarioMatrix};

    let matrix = ScenarioMatrix::new(
        vec![(4, 1), (5, 2), (7, 3)],
        vec![
            FaultBehavior::Honest,
            FaultBehavior::VectorCorrupt,
            FaultBehavior::ForgeDecide,
        ],
    )
    .cross_protocols();
    let report = sweep_matrix(&matrix, 0x1AB, 4);
    println!("\n== scenario sweep (3 systems x 3 behaviors x 2 protocols, 4 worker threads) ==\n");
    println!("{}", report.to_json().render());
    assert!(report.all_ok(), "a sweep cell violated the spec");
    println!("\nall {} runs satisfied the spec", report.records.len());
}

fn yes(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "VIOLATED"
    }
}
