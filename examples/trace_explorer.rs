//! Trace explorer: print the complete annotated event trace of a small
//! transformed-protocol run — every send, delivery, suspicion, round
//! change, conviction and decision, in virtual-time order.
//!
//! Useful for understanding how the module stack behaves step by step.
//!
//! ```text
//! cargo run --example trace_explorer            # honest run
//! cargo run --example trace_explorer corrupt    # with a lying coordinator
//! ```

use ft_modular::certify::ValueVector;
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::faults::attacks::VectorCorruptor;
use ft_modular::faults::ByzantineWrapper;
use ft_modular::sim::runner::BoxedActor;
use ft_modular::sim::trace::TraceEvent;
use ft_modular::sim::{Duration, SimConfig, Simulation};

fn main() {
    let corrupt = std::env::args().any(|a| a == "corrupt");
    let n = 3;
    let setup = ProtocolConfig::new(n, 1).seed(1).setup();
    println!(
        "n = {n}, F = 1, quorum = {}{}\n",
        setup.resilience.quorum(),
        if corrupt {
            " — p0 (coordinator) corrupts entry 1 of every vector"
        } else {
            " — all honest"
        }
    );

    let report = Simulation::build_boxed(SimConfig::new(n).seed(1), |id| {
        let honest = ByzantineConsensus::new(&setup, id, 100 + id.0 as u64);
        if corrupt && id.0 == 0 {
            Box::new(ByzantineWrapper::new(
                honest,
                Box::new(VectorCorruptor {
                    entry: 1,
                    poison: 666,
                }),
                setup.keys[0].clone(),
                Duration::of(30),
            )) as BoxedActor<_, ValueVector>
        } else {
            Box::new(honest)
        }
    })
    .run();

    for entry in report.trace.entries() {
        let line = match &entry.event {
            TraceEvent::Send {
                src,
                dst,
                label,
                bytes,
            } => {
                format!("{src} ──▶ {dst}  {label}  ({bytes}B)")
            }
            TraceEvent::Deliver { src, dst, label } => {
                format!("{dst} ◀── {src}  {label}")
            }
            TraceEvent::Timer { at_process, tag } => format!("{at_process} timer #{tag}"),
            TraceEvent::Crash { process } => format!("{process} 💥 CRASH"),
            TraceEvent::Decide { process, value } => format!("{process} ✔ DECIDE {value}"),
            TraceEvent::Halt { process } => format!("{process} ∎ halt"),
            TraceEvent::Note { process, text } => format!("{process} ✎ {text}"),
        };
        println!("[t={:>4}] {line}", entry.at);
    }

    println!("\nfinal decisions:");
    for (i, d) in report.decisions.iter().enumerate() {
        println!("  p{i}: {d:?}");
    }
    println!(
        "totals: {} messages, {} bytes, {} events",
        report.metrics.messages_sent, report.metrics.bytes_sent, report.metrics.events_processed
    );
}
