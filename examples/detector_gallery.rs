//! Failure-detector gallery (experiment E7 in miniature): replay the same
//! message timeline into the adaptive ◇M-style detector and the
//! fixed-timeout quiet-process detector, sweeping the timeout parameter,
//! and print the completeness/accuracy trade-off.
//!
//! ```text
//! cargo run --example detector_gallery
//! ```

use ft_modular::fd::properties::replay_quality;
use ft_modular::fd::{QuietDetector, TimeoutDetector};
use ft_modular::sim::{Duration, ProcessId, VirtualTime};

fn main() {
    // A peer that speaks every 25 ticks for a while, then goes mute at
    // t = 1000 — the muteness case the detector must catch…
    let mute_deliveries: Vec<VirtualTime> = (1..=40).map(|i| VirtualTime::at(i * 25)).collect();
    // …and a peer that speaks every 60 ticks forever — the slow-but-
    // correct case it must learn to trust.
    let slow_deliveries: Vec<VirtualTime> = (1..=200).map(|i| VirtualTime::at(i * 60)).collect();

    let horizon = VirtualTime::at(12_000);
    let peer = ProcessId(0);

    println!(
        "peer A: speaks every 25 ticks, mute from t=1000; peer B: speaks every 60 ticks, correct"
    );
    println!("horizon t=12000, queries every 5 ticks\n");
    println!(
        "{:<10} {:<22} {:<22} {:<24} {:<10}",
        "timeout",
        "A: detection latency",
        "A: false suspicions",
        "B: false suspicions",
        "B: trusted at end"
    );
    println!("{}", "-".repeat(92));

    for timeout in [10u64, 25, 50, 100, 200, 400] {
        let mut adaptive = TimeoutDetector::new(1, Duration::of(timeout));
        let qa = replay_quality(
            &mut adaptive,
            peer,
            &mute_deliveries,
            Some(VirtualTime::at(1_000)),
            horizon,
            Duration::of(5),
        );
        let mut adaptive_b = TimeoutDetector::new(1, Duration::of(timeout));
        let qb = replay_quality(
            &mut adaptive_b,
            peer,
            &slow_deliveries,
            None,
            horizon,
            Duration::of(5),
        );
        println!(
            "{:<10} {:<22} {:<22} {:<24} {:<10}",
            format!("Δ={timeout}"),
            qa.detection_time
                .map_or_else(|| "missed!".to_string(), |d| format!("{d} ticks")),
            qa.mistakes,
            qb.mistakes,
            if qb.suspected_at_horizon { "NO" } else { "yes" },
        );
    }

    println!("\nThe adaptive detector (timeout doubles on every mistake) keeps false");
    println!("suspicions finite even at aggressive settings — the Malkhi–Reiter");
    println!("fixed-timeout quiet detector does not:\n");

    println!(
        "{:<10} {:<28} {:<28}",
        "timeout", "adaptive: B false suspicions", "fixed: B false suspicions"
    );
    println!("{}", "-".repeat(66));
    for timeout in [10u64, 25, 50] {
        let mut adaptive = TimeoutDetector::new(1, Duration::of(timeout));
        let qa = replay_quality(
            &mut adaptive,
            peer,
            &slow_deliveries,
            None,
            horizon,
            Duration::of(5),
        );
        let mut fixed = QuietDetector::new(1, Duration::of(timeout));
        let qf = replay_quality(
            &mut fixed,
            peer,
            &slow_deliveries,
            None,
            horizon,
            Duration::of(5),
        );
        println!(
            "{:<10} {:<28} {:<28}",
            format!("Δ={timeout}"),
            qa.mistakes,
            qf.mistakes
        );
    }
}
