#!/usr/bin/env bash
# Loopback smoke: boot four ftm-serve replicas of the transformed
# Byzantine replicated log on 127.0.0.1 and drive them with ftm-load.
#
# Exit 0 requires BOTH:
#   * ftm-load exits 0 — every replica halted, completed every slot,
#     produced the same log digest, and convicted nobody;
#   * every ftm-serve replica exits 0 — its own log halted
#     uncontradicted.
#
# Tunables (env): SLOTS (default 1000), BASE_PORT (7100), SEED (0xD00D),
# OUT (loopback-report.json), BIN (target/release), TIMEOUT_MS (120000).
set -euo pipefail

SLOTS="${SLOTS:-1000}"
BASE_PORT="${BASE_PORT:-7100}"
SEED="${SEED:-0xD00D}"
OUT="${OUT:-loopback-report.json}"
BIN="${BIN:-target/release}"
TIMEOUT_MS="${TIMEOUT_MS:-120000}"

PEERS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2)),127.0.0.1:$((BASE_PORT + 3))"

pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

for i in 0 1 2 3; do
    "$BIN/ftm-serve" --id "$i" --peers "$PEERS" --protocol hr --f 1 \
        --slots "$SLOTS" --seed "$SEED" --timeout-ms "$TIMEOUT_MS" &
    pids+=("$!")
done

"$BIN/ftm-load" --peers "$PEERS" --slots "$SLOTS" \
    --timeout-ms "$TIMEOUT_MS" --out "$OUT"

# ftm-load shut every replica down; each must report a clean exit.
for pid in "${pids[@]}"; do
    wait "$pid"
done
trap - EXIT

echo "== load report ($OUT) =="
cat "$OUT"
