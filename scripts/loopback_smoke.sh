#!/usr/bin/env bash
# Loopback smoke: boot four ftm-serve replicas of the transformed
# Byzantine replicated log on 127.0.0.1, kill one mid-run and restart it
# into the live cluster, while 64 concurrent clients push commands
# through the survivors.
#
# The run exercises the whole §15 stack in one shot:
#   * the single-threaded readiness-loop transport under 64 concurrent
#     client connections (ftm-load --clients);
#   * command batching (--batch 8) on every replica;
#   * peer reconnect + checkpoint catch-up: replica 3 is SIGKILLed once
#     the run is underway and restarted ~1 s later with --barrier 0 (a
#     rejoiner cannot expect a fresh mesh handshake), so it must redial,
#     catch up via checkpoint certificates and finish the log in step.
#
# A --delay-ms hop latency paces the slot cadence, so the kill lands
# mid-run by construction on any machine speed: with DELAY_MS=3 a slot
# costs ≥ 6 ms of network time, bounding the run's pace well below the
# kill timer regardless of CPU.
#
# Exit 0 requires ALL of:
#   * ftm-load exits 0 — every replica (the restarted one included)
#     halted, completed every slot, produced the same log digest, kept
#     the batching ledger conservation law, and convicted nobody;
#   * replicas 0-2 and the restarted replica 3 all exit 0 — each log
#     halted uncontradicted. (The killed first incarnation of replica 3
#     is expected to die by SIGKILL and is not waited on.)
#
# Tunables (env): SLOTS (default 1000), BASE_PORT (7100), SEED (0xD00D),
# OUT (loopback-report.json), BIN (target/release), TIMEOUT_MS (120000),
# CLIENTS (64), REQUESTS (8), BATCH (8), DELAY_MS (3), KILL_AFTER_S (4),
# RESTART_GAP_S (1).
set -euo pipefail

SLOTS="${SLOTS:-1000}"
BASE_PORT="${BASE_PORT:-7100}"
SEED="${SEED:-0xD00D}"
OUT="${OUT:-loopback-report.json}"
BIN="${BIN:-target/release}"
TIMEOUT_MS="${TIMEOUT_MS:-120000}"
CLIENTS="${CLIENTS:-64}"
REQUESTS="${REQUESTS:-8}"
BATCH="${BATCH:-8}"
DELAY_MS="${DELAY_MS:-3}"
KILL_AFTER_S="${KILL_AFTER_S:-4}"
RESTART_GAP_S="${RESTART_GAP_S:-1}"

PEERS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2)),127.0.0.1:$((BASE_PORT + 3))"
# Clients avoid replica 3: it is down for part of the run.
TARGETS="127.0.0.1:${BASE_PORT},127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2))"

serve() {
    local id="$1"
    shift
    # exec: the backgrounded pid must be ftm-serve itself, not a wrapping
    # subshell — the chaos kill below has to hit the real process.
    exec "$BIN/ftm-serve" --id "$id" --peers "$PEERS" --protocol hr --f 1 \
        --slots "$SLOTS" --seed "$SEED" --timeout-ms "$TIMEOUT_MS" \
        --batch "$BATCH" --delay-ms "$DELAY_MS" "$@"
}

pids=()
restart_pid=""
cleanup() {
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    [ -n "$restart_pid" ] && kill "$restart_pid" 2>/dev/null || true
}
trap cleanup EXIT

for i in 0 1 2 3; do
    serve "$i" &
    pids+=("$!")
done

# Chaos timer: once the run is underway, SIGKILL replica 3 (its listener
# and every socket vanish — peers see EOF and start backoff redials),
# wait out the gap, then restart it on the same address with a fresh
# process and no start barrier. Checkpoint catch-up must rebuild its log.
(
    sleep "$KILL_AFTER_S"
    echo "== chaos: SIGKILL replica 3 (pid ${pids[3]}) =="
    kill -9 "${pids[3]}" 2>/dev/null || true
    sleep "$RESTART_GAP_S"
    echo "== chaos: restarting replica 3 with --barrier 0 =="
) &
chaos_timer="$!"

"$BIN/ftm-load" --peers "$PEERS" --slots "$SLOTS" --cluster 0 \
    --clients "$CLIENTS" --requests-per-client "$REQUESTS" \
    --targets "$TARGETS" --seed "$SEED" \
    --timeout-ms "$TIMEOUT_MS" --out "$OUT" &
load_pid="$!"

# Restart replica 3 after the chaos window (the subshell above only
# prints; the restart happens here so the new pid is waitable).
wait "$chaos_timer"
serve 3 --barrier 0 &
restart_pid="$!"

wait "$load_pid"

# ftm-load shut every replica down; the survivors and the restarted
# replica 3 must each report a clean (exit 0) run. The SIGKILLed first
# incarnation is reaped without checking: dying was its job.
for i in 0 1 2; do
    wait "${pids[$i]}"
done
wait "${pids[3]}" 2>/dev/null || true
wait "$restart_pid"
restart_pid=""
trap - EXIT

echo "== load report ($OUT) =="
cat "$OUT"
