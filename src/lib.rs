//! # ft-modular
//!
//! A full reproduction of **Baldoni, Hélary, Raynal — "From Crash
//! Fault-Tolerance to Arbitrary-Fault Tolerance: Towards a Modular
//! Approach" (DSN 2000)**: the modular methodology that turns a round-based
//! protocol tolerating crash failures into one tolerating arbitrary
//! (Byzantine) failures, instantiated on the Hurfin–Raynal consensus
//! protocol.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`crypto`] — from-scratch SHA-256, bignum, RSA signatures, key
//!   directory, canonical encoding;
//! * [`runtime`] — the runtime-agnostic actor boundary: [`runtime::Actor`],
//!   staged effects, virtual time, and the [`runtime::Runtime`] trait both
//!   runtimes implement;
//! * [`sim`] — deterministic discrete-event simulator (reliable FIFO
//!   channels, partial synchrony, crash scheduling);
//! * [`net`] — threaded TCP transport: the same actors over real sockets
//!   (`ftm-serve` / `ftm-load` binaries live in the `ftm-serve` crate);
//! * [`fd`] — failure detectors: ◇S (crash), ◇M (muteness), quiet-process
//!   baseline, oracles, and quality measurement;
//! * [`certify`] — signed envelopes, certificates, the certificate
//!   analyzer, vector certification;
//! * [`detect`] — non-muteness failure detection (per-peer state
//!   machines);
//! * [`core`] — the crash-model protocol (Fig. 2), the transformation
//!   stack (Fig. 1), the transformed vector consensus (Fig. 3), and run
//!   validators;
//! * [`faults`] — the Byzantine fault-injection library;
//! * [`rbcast`] — reliable broadcast substrates (eager relay for the
//!   crash model, Bracha's double echo for the arbitrary-fault model);
//! * [`verify`] — static protocol analyzer: model-checks the observer
//!   automaton (determinism, totality, bounded soundness, mutation kill
//!   matrix) and the certificate-rule coverage table.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduced results.
//!
//! # Example: surviving a Byzantine coordinator
//!
//! ```
//! use ft_modular::core::byzantine::ByzantineConsensus;
//! use ft_modular::core::config::ProtocolConfig;
//! use ft_modular::core::validator::check_vector_consensus;
//! use ft_modular::faults::attacks::VectorCorruptor;
//! use ft_modular::faults::ByzantineWrapper;
//! use ft_modular::sim::{Duration, SimConfig, Simulation};
//!
//! let n = 4;
//! let setup = ProtocolConfig::new(n, 1).seed(1).setup();
//! let report = Simulation::build_boxed(SimConfig::new(n).seed(1), |id| {
//!     let honest = ByzantineConsensus::new(&setup, id, 100 + id.0 as u64);
//!     if id.0 == 0 {
//!         // Round-1 coordinator lies about p2's value in every vector.
//!         Box::new(ByzantineWrapper::new(
//!             honest,
//!             Box::new(VectorCorruptor { entry: 2, poison: 666 }),
//!             setup.keys[0].clone(),
//!             Duration::of(40),
//!         ))
//!     } else {
//!         Box::new(honest)
//!     }
//! })
//! .run();
//! let verdict = check_vector_consensus(
//!     &report,
//!     &[100, 101, 102, 103],
//!     &[true, false, false, false],
//!     1,
//! );
//! assert!(verdict.ok(), "{:?}", verdict.violations);
//! ```

pub use ftm_certify as certify;
pub use ftm_core as core;
pub use ftm_crypto as crypto;
pub use ftm_detect as detect;
pub use ftm_faults as faults;
pub use ftm_fd as fd;
pub use ftm_net as net;
pub use ftm_rbcast as rbcast;
pub use ftm_runtime as runtime;
pub use ftm_sim as sim;
pub use ftm_verify as verify;
