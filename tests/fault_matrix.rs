//! The fault matrix (experiments E3/E4): every fault class from the
//! paper's taxonomy is injected into the transformed protocol, and for
//! each we check
//!
//! 1. **safety & liveness survive** — Agreement, Termination and Vector
//!    Validity hold for the correct processes, and
//! 2. **detection happens where the paper says it should** — the module
//!    responsible for the class convicts the culprit at every correct
//!    process (where the class is locally detectable at all).

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::config::ProtocolSetup;
use ft_modular::core::validator::{detections, Verdict};
use ft_modular::faults::attacks::{
    CertStripper, DecideForger, IdentityThief, InitEquivocator, MuteAfter, Replayer, RoundJumper,
    SelectiveSender, SpuriousCurrent, VectorCorruptor, VoteDuplicator, WrongKeySigner,
};
use ft_modular::faults::{AttackRun, Tamper};
use ft_modular::sim::{Duration, ProcessId, RunReport, VirtualTime};

const N: usize = 4;
const F: usize = 1;

/// Runs the transformed protocol with `attacker` running `tamper`, through
/// the shared [`AttackRun`] glue (the injection timer defaults to 3 ticks,
/// beating the fastest honest decision so timed attacks never fire into an
/// already-halted system).
fn run_with_attack(
    seed: u64,
    attacker: u32,
    mk_tamper: impl FnOnce(&ProtocolSetup) -> Box<dyn Tamper>,
) -> RunReport<ValueVector> {
    AttackRun::new(N, F, seed, attacker).run(|setup| Some(mk_tamper(setup)))
}

fn verdict(report: &RunReport<ValueVector>, attacker: u32) -> Verdict {
    AttackRun::new(N, F, 0, attacker).verdict(report)
}

/// Runs with `attacker` Byzantine AND the round-1 coordinator p0 crashed
/// at t = 0, forcing NEXT-vote traffic (n = 5, F = 2 keeps the quorum).
fn run_with_attack_and_dead_coordinator(
    seed: u64,
    attacker: u32,
    mk_tamper: impl FnOnce(&ProtocolSetup) -> Box<dyn Tamper>,
) -> RunReport<ValueVector> {
    AttackRun::new(5, 2, seed, attacker)
        .crash_at_start(0)
        .injection_delay(Duration::of(10))
        .run(|setup| Some(mk_tamper(setup)))
}

fn verdict5(report: &RunReport<ValueVector>, attacker: u32) -> Verdict {
    AttackRun::new(5, 2, 0, attacker).verdict(report)
}

/// Asserts that at least one correct process convicted the attacker with
/// the expected class (processes that decided before the faulty message
/// arrived legitimately never observe it).
fn assert_detected_by_some(report: &RunReport<ValueVector>, attacker: u32, class: &str) {
    let det = detections(&report.trace);
    let culprit = format!("p{attacker}");
    assert!(
        det.iter()
            .any(|d| d.observer.0 != attacker && d.culprit == culprit && d.class == class),
        "no correct process convicted p{attacker} of {class}; detections: {det:?}"
    );
}

/// Asserts that every correct process convicted the attacker with the
/// expected fault class.
fn assert_detected_by_all(report: &RunReport<ValueVector>, attacker: u32, class: &str) {
    let det = detections(&report.trace);
    let culprit = format!("p{attacker}");
    let n = report.decisions.len();
    for p in 0..n as u32 {
        if p == attacker || report.crashed[p as usize] {
            continue;
        }
        assert!(
            det.iter()
                .any(|d| d.observer == ProcessId(p) && d.culprit == culprit && d.class == class),
            "p{p} never convicted p{attacker} of {class}; detections: {det:?}"
        );
    }
}

fn assert_no_honest_convicted(report: &RunReport<ValueVector>, attacker: u32) {
    let culprit = format!("p{attacker}");
    for d in detections(&report.trace) {
        assert_eq!(d.culprit, culprit, "an honest process was convicted: {d:?}");
    }
}

#[test]
fn muteness_is_survived_and_needs_no_conviction() {
    for seed in 0..5 {
        let report = run_with_attack(seed, 0, |_| {
            Box::new(MuteAfter {
                after: VirtualTime::at(30),
            })
        });
        let v = verdict(&report, 0);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_no_honest_convicted(&report, 0);
    }
}

#[test]
fn vector_corruption_is_survived_and_detected() {
    // The attacker is p0, the round-1 coordinator: the worst placement.
    for seed in 0..5 {
        let report = run_with_attack(seed, 0, |_| {
            Box::new(VectorCorruptor {
                entry: 2,
                poison: 666,
            })
        });
        let v = verdict(&report, 0);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_detected_by_all(&report, 0, "bad-certificate");
        assert_no_honest_convicted(&report, 0);
        // The poison never reaches a decided vector.
        for d in report.decisions.iter().take(N).flatten() {
            assert_ne!(d.get(2), Some(666), "seed {seed}: poison decided");
        }
    }
}

#[test]
fn round_jumping_is_survived_and_detected() {
    // p0 (round-1 coordinator) is crashed so NEXT votes must flow; the
    // attacker p4 corrupts its round numbers.
    for seed in 0..5 {
        let report =
            run_with_attack_and_dead_coordinator(seed, 4, |_| Box::new(RoundJumper { jump: 5 }));
        let v = verdict5(&report, 4);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_detected_by_all(&report, 4, "out-of-order");
        assert_no_honest_convicted(&report, 4);
    }
}

#[test]
fn vote_duplication_is_survived_and_detected() {
    for seed in 0..5 {
        let report = run_with_attack_and_dead_coordinator(seed, 4, |_| Box::new(VoteDuplicator));
        let v = verdict5(&report, 4);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_detected_by_all(&report, 4, "out-of-order");
        assert_no_honest_convicted(&report, 4);
    }
}

#[test]
fn forged_decide_is_survived_and_detected() {
    for seed in 0..5 {
        let report = run_with_attack(seed, 3, |_| {
            Box::new(DecideForger::new(VirtualTime::at(1), N, 999))
        });
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_detected_by_some(&report, 3, "bad-certificate");
        assert_no_honest_convicted(&report, 3);
        // Nobody decided the fabricated vector.
        for d in report.decisions.iter().enumerate().filter(|(i, _)| *i != 3) {
            if let Some(vect) = d.1 {
                assert_ne!(
                    vect.get(0),
                    Some(999),
                    "seed {seed}: forged decide accepted"
                );
            }
        }
    }
}

#[test]
fn wrong_key_signatures_are_survived_and_detected() {
    for seed in 0..5 {
        let report = run_with_attack(seed, 3, |_| {
            let mut rng = ft_modular::crypto::rng_from_seed(0xBAD + seed);
            Box::new(WrongKeySigner {
                wrong: ft_modular::crypto::rsa::KeyPair::generate(&mut rng, 128),
            })
        });
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_detected_by_all(&report, 3, "bad-signature");
        assert_no_honest_convicted(&report, 3);
    }
}

#[test]
fn identity_theft_is_survived_and_pinned_on_the_thief() {
    for seed in 0..5 {
        let report = run_with_attack(seed, 3, |_| {
            Box::new(IdentityThief {
                victim: ProcessId(1),
            })
        });
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        // The channel gives the thief away: p3 is convicted, p1 is not.
        assert_detected_by_all(&report, 3, "bad-signature");
        assert_no_honest_convicted(&report, 3);
    }
}

#[test]
fn init_equivocation_cannot_break_agreement() {
    // Not locally detectable — the test is that Agreement and Vector
    // Validity survive anyway (the paper's Proposition 2 territory).
    for seed in 0..8 {
        let report = run_with_attack(seed, 3, |_| Box::new(InitEquivocator { alt: 1313 }));
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        // Whatever entry 3 shows, entries of correct processes are intact.
        if let Some(vect) = report.decisions[0].as_ref() {
            for (k, val) in vect.iter_set() {
                if k != 3 {
                    assert_eq!(val, 100 + k as u64);
                }
            }
        }
    }
}

#[test]
fn spurious_current_is_survived_and_detected() {
    for seed in 0..5 {
        let report = run_with_attack(seed, 3, |_| {
            Box::new(SpuriousCurrent::new(VirtualTime::at(1), N))
        });
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        // Either the bogus CURRENT arrives while the receiver still expects
        // an in-round message (bad certificate) or out of pattern; both
        // convict p3 at whoever is still running.
        let det = detections(&report.trace);
        assert!(
            det.iter().any(|d| d.observer.0 != 3 && d.culprit == "p3"),
            "seed {seed}: nobody convicted p3: {det:?}"
        );
        assert_no_honest_convicted(&report, 3);
    }
}

#[test]
fn replayed_recordings_are_survived_and_detected() {
    // The attacker records its own honest output and replays it all later:
    // every replayed message is a duplicate or stale — out-of-order.
    for seed in 0..5 {
        let report = run_with_attack(seed, 3, |_| Box::new(Replayer::new(VirtualTime::at(30))));
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        // Detection happens whenever a replay reaches a still-running
        // process; with fast decisions that is not guaranteed, but when a
        // conviction exists it must classify as out-of-order and name p3.
        for d in detections(&report.trace) {
            assert_eq!(d.culprit, "p3", "{d:?}");
        }
    }
}

#[test]
fn stripped_certificates_are_survived_and_detected() {
    // Certificates removed from every message that had one: CURRENT/NEXT
    // relays and decisions all lose their evidence.
    for seed in 0..5 {
        let report = run_with_attack(seed, 0, |_| Box::new(CertStripper));
        let v = verdict(&report, 0);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_detected_by_some(&report, 0, "bad-certificate");
        assert_no_honest_convicted(&report, 0);
    }
}

#[test]
fn selective_omission_is_survived() {
    // p3 talks only to p0 and p1; p2 experiences p3 as mute. The paper's
    // point: faultiness is per-observer, and the quorum n − F makes the
    // system whole anyway.
    for seed in 0..5 {
        let report = run_with_attack(seed, 3, |_| Box::new(SelectiveSender { cutoff: 2 }));
        let v = verdict(&report, 3);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        assert_no_honest_convicted(&report, 3);
    }
}

#[test]
fn two_simultaneous_different_attackers_within_the_budget() {
    // n = 5, F = 2: one vector corruptor AND one forged-decide injector at
    // once. Both convicted, properties intact for the three correct
    // processes. Two attackers means the shared single-attacker glue does
    // not apply; this test builds its stack by hand.
    use ft_modular::core::byzantine::ByzantineConsensus;
    use ft_modular::core::config::ProtocolConfig;
    use ft_modular::core::validator::check_vector_consensus;
    use ft_modular::faults::ByzantineWrapper;
    use ft_modular::sim::runner::BoxedActor;
    use ft_modular::sim::{SimConfig, Simulation};

    for seed in 0..5 {
        let setup = ProtocolConfig::new(5, 2).seed(seed).setup();
        let report = Simulation::build_boxed(SimConfig::new(5).seed(seed), |id| {
            let honest = ByzantineConsensus::new(&setup, id, 100 + id.0 as u64);
            match id.0 {
                0 => Box::new(ByzantineWrapper::new(
                    honest,
                    Box::new(VectorCorruptor {
                        entry: 2,
                        poison: 666,
                    }),
                    setup.keys[0].clone(),
                    Duration::of(10),
                )) as BoxedActor<_, _>,
                4 => Box::new(ByzantineWrapper::new(
                    honest,
                    Box::new(DecideForger::new(VirtualTime::at(1), 5, 999)),
                    setup.keys[4].clone(),
                    Duration::of(10),
                )),
                _ => Box::new(honest),
            }
        })
        .run();
        let props: Vec<Value> = (0..5).map(|i| 100 + i).collect();
        let v = check_vector_consensus(&report, &props, &[true, false, false, false, true], 2);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
        // Only the two attackers may appear as culprits.
        for d in detections(&report.trace) {
            assert!(
                d.culprit == "p0" || d.culprit == "p4",
                "framed an honest process: {d:?}"
            );
        }
    }
}

#[test]
fn scenario_sweep_covers_the_matrix_with_layer_metrics() {
    // The harness-native fault matrix: 3 system sizes x 3 behaviors, every
    // run surviving the spec check, and the aggregated JSON carrying the
    // per-module-layer byte breakdown for every cell.
    use ft_modular::faults::{sweep_matrix, FaultBehavior, ScenarioMatrix};

    let m = ScenarioMatrix::new(
        vec![(4, 1), (5, 2), (7, 3)],
        vec![
            FaultBehavior::Honest,
            FaultBehavior::VectorCorrupt,
            FaultBehavior::WrongKey,
        ],
    );
    let report = sweep_matrix(&m, 0x3A3, 4);
    assert!(report.all_ok(), "some cell violated the spec: {report:?}");

    let cells = report.cells();
    assert_eq!(cells.len(), 9, "expected a full 3x3 matrix");
    for (cell, stats) in &cells {
        for layer in ["bytes-signature", "bytes-certificate", "bytes-protocol"] {
            assert!(
                stats.stats.contains_key(layer),
                "cell {cell} lost layer counter {layer}"
            );
        }
        let total = stats.stats["bytes-total"].p50;
        let sum = stats.stats["bytes-signature"].p50
            + stats.stats["bytes-certificate"].p50
            + stats.stats["bytes-protocol"].p50;
        assert_eq!(sum, total, "cell {cell}: layer bytes do not decompose");
    }

    // The rendered JSON exposes the same breakdown for downstream tooling.
    let json = report.to_json().render();
    for key in [
        "bytes-signature",
        "bytes-certificate",
        "bytes-protocol",
        "detections",
    ] {
        assert!(json.contains(key), "JSON report lost {key}");
    }
}

#[test]
fn fault_classification_is_protocol_independent() {
    // The transformation's promise is protocol-generic: each fault class
    // must be caught by the *same module* whether the transformed protocol
    // is Hurfin–Raynal or Chandra–Toueg. Counts and timings legitimately
    // differ (the protocols exchange different message kinds); the
    // classification — which conviction classes fire, and whether ◇M
    // suspicion covers the muteness cases — must not.
    //
    // n = 5, F = 2 with the round-1 coordinator crashed: under HR this
    // forces NEXT-vote traffic (so vote-targeting attacks have something
    // to corrupt), under CT the NACK path; the budget (attacker + one
    // crash = 2 = F) stays within bounds.
    use ft_modular::certify::ProtocolId;
    use ft_modular::faults::{run_scenario, FaultBehavior, Scenario};
    use std::collections::BTreeSet;

    let classify = |behavior: FaultBehavior, protocol: ProtocolId| -> (BTreeSet<&str>, bool) {
        let mut classes = BTreeSet::new();
        let mut suspicion = false;
        // Union over seeds: classification is about which module *can*
        // convict the behavior, not one execution's timing accidents.
        for seed in 0..3u64 {
            let sc = Scenario::new(5, 2, behavior)
                .protocol(protocol)
                .extra_crashes(1);
            let rec = run_scenario(seed as usize, &sc, 0xC1A5 + seed);
            assert!(
                rec.ok,
                "{} under {}: spec violated: {rec:?}",
                behavior.label(),
                protocol
            );
            for class in [
                "bad-signature",
                "bad-certificate",
                "out-of-order",
                "wrong-syntax",
            ] {
                if rec.get(&format!("convicted-{class}")) > 0 {
                    classes.insert(class);
                }
            }
            suspicion |= rec.get("suspicion-covered") > 0;
        }
        (classes, suspicion)
    };

    for behavior in FaultBehavior::all() {
        let (hr_classes, hr_susp) = classify(behavior, ProtocolId::HurfinRaynal);
        let (ct_classes, ct_susp) = classify(behavior, ProtocolId::ChandraToueg);
        assert_eq!(
            hr_classes,
            ct_classes,
            "behavior {}: conviction classes differ between protocols",
            behavior.label()
        );
        assert_eq!(
            hr_susp,
            ct_susp,
            "behavior {}: ◇M suspicion coverage differs between protocols",
            behavior.label()
        );
        // The muteness cases must actually be covered by ◇M everywhere.
        if matches!(behavior, FaultBehavior::Crash | FaultBehavior::Mute) {
            assert!(hr_susp, "{}: muteness never suspected", behavior.label());
        }
    }
}

#[test]
fn checkpoint_compaction_changes_no_decision_or_conviction() {
    // Certificate checkpointing is pure local compaction: a replica that
    // replaces decided slots' evidence with a signed checkpoint sends not
    // one extra byte on the wire, so a same-seeded attacked run must
    // produce the same decisions, finish at the same virtual time, and
    // yield the identical conviction split (who convicted whom of what)
    // under either retention policy — for both transformed protocols.
    use ft_modular::certify::ProtocolId;
    use ft_modular::core::byzantine::log::Retention;
    use ft_modular::faults::FaultBehavior;
    use std::collections::BTreeSet;

    let conviction_split = |report: &RunReport<Vec<ValueVector>>| -> BTreeSet<String> {
        detections(&report.trace)
            .iter()
            .map(|d| format!("{}:{}:{}", d.observer.0, d.culprit, d.class))
            .collect()
    };

    for protocol in [ProtocolId::HurfinRaynal, ProtocolId::ChandraToueg] {
        for seed in 0..3u64 {
            let run = |retention: Retention| {
                AttackRun::new(N, F, seed, 0)
                    .protocol(protocol)
                    .retention(retention)
                    .run_log(2, |_| {
                        FaultBehavior::VectorCorrupt.make_tamper_for(protocol, N, 0, seed)
                    })
            };
            let full = run(Retention::Full);
            let compact = run(Retention::Checkpoint);
            assert_eq!(
                full.decisions, compact.decisions,
                "{protocol} seed {seed}: compaction changed a decision"
            );
            assert_eq!(
                full.end_time, compact.end_time,
                "{protocol} seed {seed}: compaction changed the schedule"
            );
            assert_eq!(
                conviction_split(&full),
                conviction_split(&compact),
                "{protocol} seed {seed}: compaction changed the conviction split"
            );
        }
    }
}

#[test]
fn detection_latency_is_bounded() {
    // E4's quantitative claim: detection happens promptly after the
    // faulty message is delivered, not rounds later.
    let report = run_with_attack(1, 0, |_| {
        Box::new(VectorCorruptor {
            entry: 2,
            poison: 666,
        })
    });
    let det = detections(&report.trace);
    let first = det.iter().map(|d| d.at).min().expect("detected at all");
    assert!(
        first < VirtualTime::at(200),
        "first detection too late: {first:?}"
    );
}

#[test]
fn mixed_coalition_classification_is_protocol_independent() {
    // A heterogeneous coalition — one mute member and one double-speaker
    // — must land in the same per-member conviction-class split whether
    // the transformed protocol is Hurfin–Raynal or Chandra–Toueg: the
    // duplicator is an automaton ("out-of-order") conviction, the mute
    // member is ◇M suspicion territory and is never convicted of
    // anything. n = 7, F = 3 with the round-1 coordinator crashed keeps
    // the budget at 3 = F while forcing enough rounds that both members
    // actually act; the adverse network profile stretches the run far
    // past the mute member's onset (t = 30) plus the ◇M allowance, so
    // the suspicion fires before the system can decide its way out.
    use ft_modular::certify::ProtocolId;
    use ft_modular::faults::{run_scenario, FaultBehavior, NetworkProfile, Scenario};
    use std::collections::BTreeSet;

    let split = |protocol: ProtocolId| -> (BTreeSet<&str>, BTreeSet<&str>, bool) {
        let mut mute_classes = BTreeSet::new();
        let mut dup_classes = BTreeSet::new();
        let mut mute_suspected = false;
        // Union over seeds: the split is about which module *can* convict
        // each member, not one execution's timing accidents.
        for seed in 0..3u64 {
            let sc =
                Scenario::coalition_of(7, 3, &[FaultBehavior::Mute, FaultBehavior::DuplicateVotes])
                    .extra_crashes(1)
                    .network(NetworkProfile::adverse())
                    .protocol(protocol);
            let rec = run_scenario(seed as usize, &sc, 0x5117 + seed);
            assert!(rec.ok, "mixed coalition under {protocol}: {rec:?}");
            for class in [
                "bad-signature",
                "bad-certificate",
                "out-of-order",
                "wrong-syntax",
            ] {
                if rec.get(&format!("m0-convicted-{class}")) > 0 {
                    mute_classes.insert(class);
                }
                if rec.get(&format!("m1-convicted-{class}")) > 0 {
                    dup_classes.insert(class);
                }
            }
            mute_suspected |= rec.get("m0-suspected") > 0;
        }
        (mute_classes, dup_classes, mute_suspected)
    };

    let (hr_mute, hr_dup, hr_susp) = split(ProtocolId::HurfinRaynal);
    let (ct_mute, ct_dup, ct_susp) = split(ProtocolId::ChandraToueg);

    // The duplicator is convicted by the automaton under both protocols.
    assert!(
        hr_dup.contains("out-of-order"),
        "HR never convicted the duplicator: {hr_dup:?}"
    );
    assert_eq!(hr_dup, ct_dup, "duplicator conviction split diverged");
    // The mute member is suspicion-covered, never convicted, under both.
    assert!(
        hr_susp && ct_susp,
        "mute member escaped suspicion (hr={hr_susp}, ct={ct_susp})"
    );
    assert!(
        hr_mute.is_empty(),
        "HR convicted the mute member: {hr_mute:?}"
    );
    assert_eq!(hr_mute, ct_mute, "mute-member conviction split diverged");
}
