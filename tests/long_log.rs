//! Long-log checkpointing soak: certificate memory stays bounded over
//! 10⁴ decided slots.
//!
//! The unit tests prove the flat-versus-linear shape at toy scale; this
//! soak runs the checkpointed replicated log long enough that unbounded
//! retention would be visible as a trend. It is `#[ignore]`d — the weekly
//! deep-verify CI job runs it in release mode.

use ft_modular::core::byzantine::log::Retention;
use ft_modular::faults::AttackRun;
use ft_modular::sim::trace::TraceEvent;

const SLOTS: u64 = 10_000;

#[test]
#[ignore = "10^4-slot soak; run in release via the deep-verify cron"]
fn checkpointed_log_memory_is_bounded_over_ten_thousand_slots() {
    let report = AttackRun::new(4, 1, 9, 0)
        .retention(Retention::Checkpoint)
        .run_log(SLOTS, |_| None);

    // Every replica decided every slot and the logs agree.
    for (p, log) in report.decisions.iter().enumerate() {
        let log = log
            .as_ref()
            .unwrap_or_else(|| panic!("p{p} never finished"));
        assert_eq!(log.len() as u64, SLOTS, "p{p} lost slots");
        assert_eq!(
            Some(log),
            report.decisions[0].as_ref(),
            "p{p} diverged from p0"
        );
    }

    // Replica 0's retained evidence: one sound checkpoint per slot, and
    // the per-slot retained bytes never trend upward — the whole point of
    // compaction. (Full retention reaches ~SLOTS × quorum-cert bytes.)
    let mut series: Vec<u64> = Vec::new();
    for entry in report.trace.entries() {
        if let TraceEvent::Note { process, text } = &entry.event {
            if process.0 == 0 {
                assert!(
                    !text.starts_with("checkpoint-unsound"),
                    "replica 0 built an unsound checkpoint: {text}"
                );
                if text.starts_with("checkpoint slot=") {
                    if let Some(bytes) =
                        text.rsplit_once("bytes=").and_then(|(_, b)| b.parse().ok())
                    {
                        series.push(bytes);
                    }
                }
            }
        }
    }
    assert_eq!(series.len() as u64, SLOTS, "a slot was never compacted");
    let (min, max) = (*series.iter().min().unwrap(), *series.iter().max().unwrap());
    assert!(
        max < 2 * min,
        "checkpoint bytes drifted: min={min} max={max} (first={} last={})",
        series[0],
        series[SLOTS as usize - 1]
    );
}
