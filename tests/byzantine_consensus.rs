//! E3/E5 sweeps: the transformed protocol across sizes, fault budgets,
//! crash placements and network conditions — plus the ψ = n − 2F bound
//! and Propositions 1–2 at the run level.

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::{MutenessMode, ProtocolConfig};
use ft_modular::core::validator::{check_vector_consensus, max_round};
use ft_modular::sim::{Duration, RunReport, SimConfig, Simulation, VirtualTime};

fn proposals(n: usize) -> Vec<Value> {
    (0..n as u64).map(|i| 100 + i).collect()
}

fn run(n: usize, f: usize, seed: u64, crashes: &[(usize, u64)]) -> RunReport<ValueVector> {
    let setup = ProtocolConfig::new(n, f).seed(seed).setup();
    let mut cfg = SimConfig::new(n).seed(seed);
    for &(p, t) in crashes {
        cfg = cfg.crash(p, VirtualTime::at(t));
    }
    let props = proposals(n);
    Simulation::build_boxed(cfg, |id| {
        Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
    })
    .run()
}

#[test]
fn sweep_sizes_and_fault_budgets_all_honest() {
    for (n, f) in [(3usize, 1usize), (4, 1), (5, 2), (7, 3), (9, 4)] {
        for seed in 0..3 {
            let report = run(n, f, seed, &[]);
            let v = check_vector_consensus(&report, &proposals(n), &vec![false; n], f);
            assert!(v.ok(), "n={n} f={f} seed={seed}: {:?}", v.violations);
            let vect = report.unanimous().expect("agreement");
            assert!(
                vect.non_null_count() >= n - f,
                "n={n} f={f}: vector has {} entries < n−F",
                vect.non_null_count()
            );
        }
    }
}

#[test]
fn psi_bound_holds_with_maximal_crashes() {
    // With F processes crashed from the start, the decided vector still
    // carries at least ψ = n − 2F entries of correct processes.
    for (n, f) in [(4usize, 1usize), (5, 2), (7, 3)] {
        for seed in 0..3 {
            let crashes: Vec<(usize, u64)> = (0..f).map(|i| (i, 0)).collect();
            let report = run(n, f, seed, &crashes);
            let faulty: Vec<bool> = (0..n).map(|i| i < f).collect();
            let v = check_vector_consensus(&report, &proposals(n), &faulty, f);
            assert!(v.ok(), "n={n} f={f} seed={seed}: {:?}", v.violations);
            let vect = report.unanimous().expect("agreement among survivors");
            let correct_entries = vect.iter_set().filter(|(k, _)| *k >= f).count();
            assert!(
                correct_entries >= n - 2 * f,
                "n={n} f={f} seed={seed}: only {correct_entries} correct entries"
            );
        }
    }
}

#[test]
fn proposition2_no_two_different_certified_vectors_decided() {
    // Across many seeds and crash placements, all correct deciders hold
    // the same vector (Agreement implies Proposition 2 at decision time).
    for seed in 0..10 {
        let report = run(5, 2, seed, &[(4, 30)]);
        assert!(report.unanimous().is_some(), "seed {seed}: disagreement");
    }
}

#[test]
fn mid_round_crashes_at_various_times() {
    for crash_time in [0u64, 10, 25, 50, 100, 200] {
        let report = run(4, 1, 3, &[(1, crash_time)]);
        let v = check_vector_consensus(&report, &proposals(4), &[false; 4], 1);
        assert!(v.ok(), "crash at {crash_time}: {:?}", v.violations);
    }
}

#[test]
fn slow_network_costs_rounds_but_not_safety() {
    let setup = ProtocolConfig::new(4, 1)
        .seed(8)
        .muteness_timeout(Duration::of(60)) // aggressive vs. slow network
        .setup();
    let props = proposals(4);
    let cfg = SimConfig::new(4)
        .seed(8)
        .delay_range(Duration::of(5), Duration::of(90))
        .gst(VirtualTime::at(4_000), Duration::of(15));
    let report = Simulation::build_boxed(cfg, |id| {
        Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
    })
    .run();
    let v = check_vector_consensus(&report, &props, &[false; 4], 1);
    assert!(v.ok(), "{:?}", v.violations);
}

#[test]
fn wrongful_muteness_suspicions_are_tolerated() {
    // A tiny muteness timeout guarantees wrongful suspicions of correct
    // coordinators; the protocol must churn rounds yet stay correct.
    let setup = ProtocolConfig::new(4, 1)
        .seed(9)
        .muteness_timeout(Duration::of(15))
        .poll_interval(Duration::of(10))
        .setup();
    let props = proposals(4);
    let report = Simulation::build_boxed(SimConfig::new(4).seed(9), |id| {
        Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
    })
    .run();
    let v = check_vector_consensus(&report, &props, &[false; 4], 1);
    assert!(v.ok(), "{:?}", v.violations);
}

#[test]
fn rounds_progress_past_a_dead_coordinator_chain() {
    // Kill coordinators of rounds 1 and 2 (p0, p1) in a 5/2 system.
    let report = run(5, 2, 4, &[(0, 0), (1, 0)]);
    let v = check_vector_consensus(&report, &proposals(5), &[false; 5], 2);
    assert!(v.ok(), "{:?}", v.violations);
    assert!(max_round(&report.trace, 5) >= 3);
}

#[test]
fn round_aware_muteness_detector_also_works() {
    // Same scenarios as the default detector, with the ◇M variant whose
    // allowance grows per round.
    for seed in 0..5 {
        let setup = ProtocolConfig::new(4, 1)
            .seed(seed)
            .muteness_mode(MutenessMode::RoundAware {
                per_round: Duration::of(50),
            })
            .setup();
        let props = proposals(4);
        let cfg = SimConfig::new(4).seed(seed).crash(0, VirtualTime::ZERO);
        let report = Simulation::build_boxed(cfg, |id| {
            Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
        })
        .run();
        let v = check_vector_consensus(&report, &props, &[false; 4], 1);
        assert!(v.ok(), "seed {seed}: {:?}", v.violations);
    }
}

#[test]
fn round_aware_detector_suffers_fewer_wrongful_suspicions_on_slow_nets() {
    // Under a slow network, the adaptive detector with a small base
    // timeout churns extra rounds; the round-aware variant's growing
    // allowance converges faster. Compare rounds-to-decide.
    let slow = |mode: MutenessMode, seed: u64| {
        let setup = ProtocolConfig::new(4, 1)
            .seed(seed)
            .muteness_timeout(Duration::of(40))
            .poll_interval(Duration::of(10))
            .muteness_mode(mode)
            .setup();
        let props = proposals(4);
        let cfg = SimConfig::new(4)
            .seed(seed)
            .delay_range(Duration::of(20), Duration::of(60))
            .gst(VirtualTime::at(8_000), Duration::of(30));
        let report = Simulation::build_boxed(cfg, |id| {
            Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
        })
        .run();
        let v = check_vector_consensus(&report, &props, &[false; 4], 1);
        assert!(v.ok(), "{mode:?} seed {seed}: {:?}", v.violations);
        max_round(&report.trace, 4)
    };
    let mut adaptive_rounds = 0usize;
    let mut aware_rounds = 0usize;
    for seed in 0..8 {
        adaptive_rounds += slow(MutenessMode::Adaptive, seed);
        aware_rounds += slow(
            MutenessMode::RoundAware {
                per_round: Duration::of(60),
            },
            seed,
        );
    }
    assert!(
        aware_rounds <= adaptive_rounds,
        "round-aware {aware_rounds} vs adaptive {adaptive_rounds}"
    );
}

#[test]
fn fifo_relay_adoption_blocks_the_textbook_attack_transformed() {
    // The transformed-protocol analogue of the crash-side scripted test
    // (tests/crash_consensus.rs): p0 coordinates round 1 and decides, its
    // DECIDE is delayed by 400 ticks, p1/p4 never hear p0 after the INIT
    // phase and suspect it, p2/p3 change their minds, and round 2's
    // coordinator p1 — which never relayed in round 1 — re-proposes the
    // vector it *adopted* from p2's FIFO-ordered CURRENT relay. Everyone,
    // including the long-decided p0, must hold the same certified vector.
    let n = 5;
    let f = 2;
    let setup = ProtocolConfig::new(n, f)
        .seed(0)
        .muteness_timeout(Duration::of(20))
        .poll_interval(Duration::of(25))
        .setup();
    let props = proposals(n);
    let slow_pairs = [(2u32, 3u32), (3, 2), (2, 4), (3, 4), (2, 1), (3, 1)];
    let cfg = SimConfig::new(n)
        .seed(0)
        .max_time(VirtualTime::at(20_000))
        .delay_script(move |src, dst, now| {
            if now == VirtualTime::ZERO {
                1 // the INIT wave reaches everyone fast
            } else if src.0 == 0 && (dst.0 == 1 || dst.0 == 4 || now > VirtualTime::at(2)) {
                // p0's CURRENT and DECIDE to the slanderers, and its
                // DECIDE broadcast: very late.
                400
            } else if slow_pairs.contains(&(src.0, dst.0)) {
                30 // cross relays among p1..p4: late enough for change_mind
            } else {
                1
            }
        });
    let report = Simulation::build_boxed(cfg, |id| {
        Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
    })
    .run();

    let v = check_vector_consensus(&report, &props, &vec![false; n], f);
    assert!(v.ok(), "{:?} (stop={:?})", v.violations, report.stop);
    assert!(
        max_round(&report.trace, n) >= 2,
        "schedule failed to push past round 1"
    );
    // Whatever p0 decided in round 1 is exactly what the later rounds
    // re-proposed and decided.
    let p0 = report.decisions[0].clone().expect("p0 decided in round 1");
    assert_eq!(report.unanimous(), Some(p0));
}

#[test]
fn deterministic_replay() {
    let a = run(4, 1, 77, &[(2, 40)]);
    let b = run(4, 1, 77, &[(2, 40)]);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn certificates_grow_with_rounds_but_stay_flat_per_round() {
    // Structural sanity on the cost model: message sizes in round r are
    // bounded (cores are one level deep), so mean message size must stay
    // within a small multiple of the INIT-phase size even when rounds
    // churn. Guards against accidental recursive-certificate blowup.
    let fast = run(4, 1, 1, &[]);
    let churny = {
        let setup = ProtocolConfig::new(4, 1)
            .seed(1)
            .muteness_timeout(Duration::of(15))
            .poll_interval(Duration::of(10))
            .setup();
        let props = proposals(4);
        Simulation::build_boxed(SimConfig::new(4).seed(1), |id| {
            Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
        })
        .run()
    };
    let fast_mean = fast.metrics.mean_message_bytes_tenths();
    let churny_mean = churny.metrics.mean_message_bytes_tenths();
    assert!(
        churny_mean < fast_mean * 8,
        "certificate blowup: churny {churny_mean} vs fast {fast_mean} (tenths of a byte)"
    );
}
