//! The coalition property campaign: for *any* seeded draw of a coalition
//! of up to F attackers — random size, random member placement, random
//! per-member behaviors from the full non-benign taxonomy — under *any*
//! drawn network profile, the transformed protocol must keep its
//! contract:
//!
//! * **Agreement + Vector Validity** among honest processes, always;
//! * **Termination** whenever the drawn profile has a GST;
//! * **no wrongful convictions** — every process convicted by an honest
//!   observer is a real coalition member (the channel source pins even
//!   an identity thief, so forged sender identities must not frame the
//!   victim).
//!
//! Cases are drawn from the in-tree seeded PRNG, so every case is
//! identified by its iteration number and replays identically everywhere.
//! Both transformed protocols get their own campaign of 64 draws — the
//! hard CI gate runs all of them.

use ft_modular::certify::ProtocolId;
use ft_modular::core::validator::detections;
use ft_modular::crypto::prng::{Rng64, SplitMix64};
use ft_modular::faults::{coalition_faulty, AttackRun, FaultBehavior, NetworkProfile, Scenario};

/// The behaviors a drawn coalition member may take: the full taxonomy
/// minus `Honest` (a coalition of honest processes proves nothing).
fn attacker_palette() -> Vec<FaultBehavior> {
    FaultBehavior::all()
        .into_iter()
        .filter(|&b| b != FaultBehavior::Honest)
        .collect()
}

/// Draws a coalition of `size` distinct members with random placement
/// (the coordinator p0 is fair game) and random behaviors.
fn draw_coalition(
    gen: &mut SplitMix64,
    n: usize,
    size: usize,
    palette: &[FaultBehavior],
) -> Vec<(u32, FaultBehavior)> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    // Partial Fisher–Yates: the first `size` entries end up random and
    // distinct.
    for i in 0..size {
        let j = gen.gen_range_u64(i as u64, n as u64 - 1) as usize;
        ids.swap(i, j);
    }
    (0..size)
        .map(|i| {
            let b = palette[gen.gen_range_u64(0, palette.len() as u64 - 1) as usize];
            (ids[i], b)
        })
        .collect()
}

/// One campaign: 64 seeded draws against `protocol`.
fn campaign(protocol: ProtocolId, campaign_seed: u64) {
    let mut gen = SplitMix64::from_seed(campaign_seed);
    let palette = attacker_palette();
    let systems = [(4usize, 1usize), (5, 2), (7, 3)];
    let networks = [
        NetworkProfile::calm(),
        NetworkProfile::jittery(),
        NetworkProfile::adverse(),
    ];
    for case in 0..64 {
        let seed = gen.next_u64();
        let (n, f) = systems[gen.gen_range_u64(0, systems.len() as u64 - 1) as usize];
        let size = gen.gen_range_u64(1, f as u64) as usize;
        let members = draw_coalition(&mut gen, n, size, &palette);
        let network = networks[gen.gen_range_u64(0, networks.len() as u64 - 1) as usize];

        let run = AttackRun::new(n, f, seed, members[0].0)
            .protocol(protocol)
            .network(network);
        let report = run.run_coalition(&members);
        let verdict = run.coalition_verdict(&members, &report);

        // The drawn profiles all have a GST, so the full contract —
        // Agreement, Termination, Vector Validity — must hold.
        assert!(
            verdict.ok(),
            "case {case} ({protocol}): seed={seed:#x} n={n} f={f} \
             members={members:?} net={}: {:?}",
            network.label,
            verdict.violations
        );

        // No wrongful convictions: every conviction spoken by an honest
        // observer names a coalition member.
        let faulty = coalition_faulty(n, &members);
        for d in detections(&report.trace) {
            if faulty[d.observer.index()] {
                continue; // coalition members may say anything
            }
            let convicted: u32 = d
                .culprit
                .strip_prefix('p')
                .and_then(|p| p.parse().ok())
                .unwrap_or_else(|| panic!("unparseable culprit {:?}", d.culprit));
            assert!(
                members.iter().any(|&(m, _)| m == convicted),
                "case {case} ({protocol}): seed={seed:#x} members={members:?} \
                 net={}: honest p{} wrongfully convicted p{convicted} ({})",
                network.label,
                d.observer.0,
                d.class
            );
        }
    }
}

#[test]
fn hurfin_raynal_survives_random_coalitions_under_random_networks() {
    campaign(ProtocolId::HurfinRaynal, 0xC0A1);
}

#[test]
fn chandra_toueg_survives_random_coalitions_under_random_networks() {
    campaign(ProtocolId::ChandraToueg, 0xC0A2);
}

/// Pure asynchrony: no GST at all. Termination is no longer owed (the
/// round cap is the backstop), but safety and conviction attribution
/// still are — 16 draws per protocol over *active* behaviors (mute and
/// crash coalitions park the run against the simulator's time limit,
/// which proves nothing beyond what the GST campaigns already cover).
#[test]
fn safety_holds_without_any_gst() {
    let active: Vec<FaultBehavior> = attacker_palette()
        .into_iter()
        .filter(|&b| b != FaultBehavior::Crash && b != FaultBehavior::Mute)
        .collect();
    let mut gen = SplitMix64::from_seed(0xA57C);
    for protocol in ProtocolId::all() {
        for case in 0..16 {
            let seed = gen.next_u64();
            let (n, f) = (5usize, 2usize);
            let size = gen.gen_range_u64(1, f as u64) as usize;
            let members = draw_coalition(&mut gen, n, size, &active);

            let run = AttackRun::new(n, f, seed, members[0].0)
                .protocol(protocol)
                .network(NetworkProfile::no_gst());
            let report = run.run_coalition(&members);
            let verdict = run.coalition_verdict(&members, &report);
            assert!(
                verdict.agreement && verdict.validity,
                "case {case} ({protocol}): seed={seed:#x} members={members:?}: \
                 safety broke without GST: {:?}",
                verdict.violations
            );
            let faulty = coalition_faulty(n, &members);
            for d in detections(&report.trace) {
                if faulty[d.observer.index()] {
                    continue;
                }
                let convicted: u32 = d
                    .culprit
                    .strip_prefix('p')
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_default();
                assert!(
                    members.iter().any(|&(m, _)| m == convicted),
                    "case {case} ({protocol}): honest p{} wrongfully \
                     convicted p{convicted}",
                    d.observer.0
                );
            }
        }
    }
}

/// A member index drawn by the campaigns is a real process id.
#[test]
fn drawn_coalitions_are_distinct_and_in_range() {
    let mut gen = SplitMix64::from_seed(7);
    let palette = attacker_palette();
    for _ in 0..200 {
        let members = draw_coalition(&mut gen, 7, 3, &palette);
        assert_eq!(members.len(), 3);
        let ids: std::collections::BTreeSet<u32> = members.iter().map(|&(m, _)| m).collect();
        assert_eq!(ids.len(), 3, "duplicate members in {members:?}");
        assert!(ids.iter().all(|&m| m < 7));
        // And the Scenario constructor accepts them.
        let _ = Scenario::coalition(7, 3, members);
    }
}

/// The deep-verify cell the weekly CI cron runs: a large coalition —
/// F = 10 simultaneous attackers, every fourth one mute — at n = 31
/// under the adverse profile. Too slow for the per-push gate
/// (`--ignored` opts in), but the budget claim is about *any* coalition
/// up to F, and 10 is a very different quorum geometry than 3.
#[test]
#[ignore = "deep-verify: minutes-long; run with --ignored in the weekly cron"]
fn large_coalition_at_the_full_budget_under_adversity() {
    let palette = [
        FaultBehavior::VectorCorrupt,
        FaultBehavior::DuplicateVotes,
        FaultBehavior::ForgeDecide,
        FaultBehavior::Mute,
    ];
    let members: Vec<(u32, FaultBehavior)> = (0..10)
        .map(|i| (30 - i as u32, palette[i % palette.len()]))
        .collect();
    for protocol in ProtocolId::all() {
        let run = AttackRun::new(31, 10, 0xB16C0A1, members[0].0)
            .protocol(protocol)
            .network(NetworkProfile::adverse());
        let report = run.run_coalition(&members);
        let verdict = run.coalition_verdict(&members, &report);
        assert!(
            verdict.ok(),
            "({protocol}) n=31 F=10 coalition under adversity: {:?}",
            verdict.violations
        );
        let faulty = coalition_faulty(31, &members);
        let wrongful: Vec<String> = detections(&report.trace)
            .into_iter()
            .filter(|d| !faulty[d.observer.index()])
            .filter(|d| {
                let convicted: Option<u32> =
                    d.culprit.strip_prefix('p').and_then(|p| p.parse().ok());
                convicted.is_none_or(|c| !members.iter().any(|&(m, _)| m == c))
            })
            .map(|d| format!("p{} convicted {} ({})", d.observer.0, d.culprit, d.class))
            .collect();
        assert!(wrongful.is_empty(), "wrongful convictions: {wrongful:?}");
        // With 10 attackers the stack must actually have worked for a
        // living: at least one conviction from some honest observer.
        assert!(
            detections(&report.trace)
                .iter()
                .any(|d| !faulty[d.observer.index()]),
            "no honest process convicted anyone out of a 10-member coalition"
        );
    }
}
