//! E1 sweeps: the crash-model Hurfin–Raynal protocol across system sizes,
//! crash patterns and detector quality.

use ft_modular::certify::Value;
use ft_modular::core::crash::CrashConsensus;
use ft_modular::core::spec::Resilience;
use ft_modular::core::validator::{check_crash_consensus, max_round};
use ft_modular::fd::{OracleDetector, TimeoutDetector};
use ft_modular::sim::{Duration, ProcessId, RunReport, SimConfig, Simulation, VirtualTime};

fn run(n: usize, seed: u64, crashes: &[(usize, u64)]) -> RunReport<Value> {
    let mut cfg = SimConfig::new(n).seed(seed);
    for &(p, t) in crashes {
        cfg = cfg.crash(p, VirtualTime::at(t));
    }
    let res = Resilience::new(n, ftm_core::quorum::max_faults(n));
    Simulation::build(cfg, |id| {
        CrashConsensus::new(
            res,
            id,
            100 + id.0 as u64,
            TimeoutDetector::new(n, Duration::of(150)),
            Duration::of(25),
            Some(Duration::of(40)),
        )
    })
    .run()
}

fn proposals(n: usize) -> Vec<Value> {
    (0..n as u64).map(|i| 100 + i).collect()
}

#[test]
fn sweep_system_sizes_all_honest() {
    for n in [3usize, 4, 5, 7, 9, 12, 16] {
        for seed in 0..3 {
            let report = run(n, seed, &[]);
            let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
            assert!(v.ok(), "n={n} seed={seed}: {:?}", v.violations);
            // A correct coordinator with honest peers decides in round 1.
            assert_eq!(max_round(&report.trace, n), 1, "n={n} seed={seed}");
        }
    }
}

#[test]
fn sweep_crash_counts_up_to_the_bound() {
    let n = 7; // tolerates 3 crashes
    for f in 1..=3usize {
        for seed in 0..3 {
            let crashes: Vec<(usize, u64)> = (0..f).map(|i| (i, (i as u64) * 40)).collect();
            let report = run(n, seed, &crashes);
            let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
            assert!(v.ok(), "f={f} seed={seed}: {:?}", v.violations);
        }
    }
}

#[test]
fn crashed_coordinators_cost_extra_rounds() {
    // Crash the coordinators of rounds 1 and 2 before the run: survivors
    // must reach round 3 (or later) to decide.
    let n = 5;
    let report = run(n, 1, &[(0, 0), (1, 0)]);
    let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
    assert!(v.ok(), "{:?}", v.violations);
    assert!(
        max_round(&report.trace, n) >= 3,
        "two dead coordinators cannot be bypassed in fewer than 3 rounds"
    );
    // The decided value must come from a survivor.
    let d = report.unanimous().expect("agreement");
    assert!(d >= 102, "decided {d} belongs to a crashed coordinator");
}

#[test]
fn termination_with_a_lying_oracle_detector() {
    // Eventual weak accuracy is enough: the detector slanders every
    // process until t = 600, then tells the truth.
    let n = 4;
    let res = Resilience::new(n, 1);
    // Slow delivery (30–60) with a fast suspicion poll (5) guarantees the
    // slander is consulted before the coordinator's CURRENT can land.
    let cfg = SimConfig::new(n)
        .seed(5)
        .delay_range(Duration::of(30), Duration::of(60))
        .gst(VirtualTime::at(2_000), Duration::of(40));
    let report = Simulation::build(cfg, |id| {
        let mut fd = OracleDetector::new(n);
        for p in 0..n as u32 {
            if p != id.0 {
                fd = fd.wrongly_suspect_until(ProcessId(p), VirtualTime::at(600));
            }
        }
        CrashConsensus::new(res, id, 100 + id.0 as u64, fd, Duration::of(5), None)
    })
    .run();
    let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
    assert!(v.ok(), "{:?}", v.violations);
    assert!(
        max_round(&report.trace, n) > 1,
        "universal slander must cost at least one round"
    );
}

#[test]
fn crash_just_after_deciding_still_spreads_the_decision() {
    // p0 decides first (it is the coordinator) and its DECIDE broadcast is
    // in flight when it crashes; reliable channels deliver it anyway.
    let n = 4;
    let report = run(n, 2, &[(0, 60)]);
    let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
    assert!(v.ok(), "{:?}", v.violations);
}

#[test]
fn heavy_jitter_does_not_break_safety() {
    let n = 5;
    let res = Resilience::new(n, 2);
    for seed in 0..10 {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .delay_range(Duration::of(1), Duration::of(120))
            .gst(VirtualTime::at(5_000), Duration::of(15));
        let report = Simulation::build(cfg, |id| {
            CrashConsensus::new(
                res,
                id,
                100 + id.0 as u64,
                TimeoutDetector::new(n, Duration::of(50)), // aggressive: many mistakes
                Duration::of(20),
                Some(Duration::of(30)),
            )
        })
        .run();
        let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
        assert!(v.ok(), "seed={seed}: {:?}", v.violations);
    }
}

#[test]
fn adversarial_schedule_stress_agreement_never_breaks() {
    // Fidelity probe (see DESIGN.md §6, "fidelity note"): Fig. 2's
    // safety rests on FIFO + relay-before-NEXT + unconditional
    // first-CURRENT adoption, not on timestamp locking. Under maximally
    // trigger-happy detectors and jittery delays — the conditions that
    // make change_mind and wrongful suspicions collide — agreement must
    // still hold. (A 30k-seed release-mode sweep found zero violations;
    // this keeps a 300-seed canary in the suite.)
    let n = 5;
    let res = Resilience::new(n, 2);
    for seed in 0..300u64 {
        let cfg = SimConfig::new(n)
            .seed(seed)
            .delay_range(Duration::of(1), Duration::of(40))
            .gst(VirtualTime::at(2_000), Duration::of(12));
        let report = Simulation::build(cfg, |id| {
            CrashConsensus::new(
                res,
                id,
                100 + id.0 as u64,
                TimeoutDetector::new(n, Duration::of(12)),
                Duration::of(6),
                Some(Duration::of(25)),
            )
        })
        .run();
        let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
        assert!(v.agreement && v.validity, "seed {seed}: {:?}", v.violations);
    }
}

#[test]
fn fifo_relay_adoption_blocks_the_textbook_attack() {
    // The hand-built schedule from DESIGN.md §6 that *looks* like it
    // should break Agreement:
    //
    // * p0 coordinates round 1 and decides v = 100 (fast relays from
    //   p2, p3), but its DECIDE broadcast is delayed by 400 ticks;
    // * p1 and p4 wrongly suspect p0 forever and vote NEXT immediately;
    // * p2 and p3 see only 2 CURRENTs each (cross relays delayed 30), so
    //   change_mind fires and a NEXT majority forms;
    // * round 2's coordinator p1 never saw round 1's CURRENT in time —
    //   seemingly free to propose its own w = 101.
    //
    // The attack fails for exactly the reason identified in DESIGN.md:
    // p1's third NEXT necessarily comes from a change_mind voter (p2/p3), whose FIFO
    // channel delivers its CURRENT(1, 100) relay *first*, and line 9
    // adopts it even in state q2. So p1 proposes 100, and everyone —
    // including the long-decided p0 — agrees on 100.
    let n = 5;
    let res = Resilience::new(n, 2);
    let slow_pairs = [(2u32, 3u32), (3, 2), (2, 4), (3, 4), (2, 1), (3, 1)];
    let cfg = SimConfig::new(n)
        .seed(0)
        .max_time(VirtualTime::at(5_000))
        .delay_script(move |src, dst, now| {
            // p0's CURRENT and DECIDE to the slanderers, and all its
            // post-t0 sends (the DECIDE broadcast): very late.
            if src.0 == 0 && (dst.0 == 1 || dst.0 == 4 || now > VirtualTime::ZERO) {
                400
            } else if slow_pairs.contains(&(src.0, dst.0)) {
                30 // cross relays among p1..p4: late enough for change_mind
            } else {
                1
            }
        });
    let report = Simulation::build(cfg, |id| {
        let mut fd = OracleDetector::new(n);
        if id.0 == 1 || id.0 == 4 {
            fd = fd.wrongly_suspect_until(ProcessId(0), VirtualTime::at(100_000));
        }
        CrashConsensus::new(res, id, 100 + id.0 as u64, fd, Duration::of(5), None)
    })
    .run();

    let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
    assert!(v.ok(), "{:?}", v.violations);
    // The schedule really did force extra rounds…
    assert!(
        max_round(&report.trace, n) >= 2,
        "schedule failed to push past round 1"
    );
    // …and the adoption mechanism made round 2 re-propose the decided
    // value: everyone agrees on p0's 100, not p1's 101.
    assert_eq!(report.unanimous(), Some(100));
}

#[test]
fn deterministic_replay() {
    let a = run(6, 42, &[(2, 100)]);
    let b = run(6, 42, &[(2, 100)]);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.metrics, b.metrics);
}
