//! Property-based testing: randomized schedules, crash placements and
//! attack choices must never produce a safety violation.
//!
//! These tests treat the whole system as the unit under test: for any
//! random seed (network schedule), any legal crash set, and any attack
//! from the library, the validators must report Agreement and the
//! respective Validity property intact. Termination is also asserted —
//! the simulator's GST default makes every run eventually synchronous.

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::core::crash::CrashConsensus;
use ft_modular::core::spec::Resilience;
use ft_modular::core::validator::{check_crash_consensus, check_vector_consensus};
use ft_modular::faults::attacks::{DecideForger, RoundJumper, VectorCorruptor, VoteDuplicator};
use ft_modular::faults::{ByzantineWrapper, Tamper};
use ft_modular::fd::TimeoutDetector;
use ft_modular::sim::runner::BoxedActor;
use ft_modular::sim::{Duration, SimConfig, Simulation, VirtualTime};
use proptest::prelude::*;

fn proposals(n: usize) -> Vec<Value> {
    (0..n as u64).map(|i| 100 + i).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Crash-model protocol: random seed, size, delay spread, crash set
    /// within the bound.
    #[test]
    fn crash_protocol_safe_under_random_conditions(
        seed in any::<u64>(),
        n in 3usize..8,
        max_delay in 5u64..80,
        crash_bits in any::<u8>(),
        crash_time in 0u64..300,
    ) {
        let fmax = (n - 1) / 2;
        let crashed: Vec<usize> = (0..n)
            .filter(|i| crash_bits & (1 << i) != 0)
            .take(fmax)
            .collect();
        let mut cfg = SimConfig::new(n)
            .seed(seed)
            .delay_range(Duration::of(1), Duration::of(max_delay))
            .gst(VirtualTime::at(3_000), Duration::of(max_delay.min(15)));
        for &c in &crashed {
            cfg = cfg.crash(c, VirtualTime::at(crash_time));
        }
        let res = Resilience::new(n, fmax);
        let report = Simulation::build(cfg, move |id| {
            CrashConsensus::new(
                res,
                id,
                100 + id.0 as u64,
                TimeoutDetector::new(n, Duration::of(120)),
                Duration::of(20),
                Some(Duration::of(35)),
            )
        })
        .run();
        let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
        prop_assert!(v.ok(), "seed={seed} n={n} crashed={crashed:?}: {:?}", v.violations);
    }

    /// Transformed protocol, all honest: random seed, size/budget, delays.
    #[test]
    fn byzantine_protocol_safe_under_random_conditions(
        seed in any::<u64>(),
        nf in prop_oneof![Just((3usize, 1usize)), Just((4, 1)), Just((5, 2))],
        max_delay in 5u64..50,
        crash_time in 0u64..200,
        crash_someone in any::<bool>(),
    ) {
        let (n, f) = nf;
        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        let mut cfg = SimConfig::new(n)
            .seed(seed)
            .delay_range(Duration::of(1), Duration::of(max_delay))
            .gst(VirtualTime::at(3_000), Duration::of(max_delay.min(15)));
        if crash_someone {
            cfg = cfg.crash(n - 1, VirtualTime::at(crash_time));
        }
        let props = proposals(n);
        let p2 = props.clone();
        let report = Simulation::build_boxed(cfg, move |id| {
            Box::new(ByzantineConsensus::new(&setup, id, p2[id.index()]))
        })
        .run();
        let v = check_vector_consensus(&report, &props, &vec![false; n], f);
        prop_assert!(v.ok(), "seed={seed} n={n} f={f}: {:?}", v.violations);
    }

    /// Transformed protocol under a random attack at a random position:
    /// safety and liveness must hold regardless.
    #[test]
    fn byzantine_protocol_safe_under_random_attacks(
        seed in any::<u64>(),
        attacker in 0u32..4,
        attack_kind in 0u8..4,
        fire_at in 1u64..120,
    ) {
        let n = 4;
        let setup = ProtocolConfig::new(n, 1).seed(seed).setup();
        let props = proposals(n);
        let p2 = props.clone();
        let report = Simulation::build_boxed(SimConfig::new(n).seed(seed), move |id| {
            let honest = ByzantineConsensus::new(&setup, id, p2[id.index()]);
            if id.0 == attacker {
                let tamper: Box<dyn Tamper> = match attack_kind {
                    0 => Box::new(VectorCorruptor { entry: (attacker as usize + 1) % n, poison: 666 }),
                    1 => Box::new(RoundJumper { jump: 3 }),
                    2 => Box::new(VoteDuplicator),
                    _ => Box::new(DecideForger::new(VirtualTime::at(fire_at), n, 999)),
                };
                Box::new(ByzantineWrapper::new(
                    honest,
                    tamper,
                    setup.keys[attacker as usize].clone(),
                    Duration::of(15),
                )) as BoxedActor<_, ValueVector>
            } else {
                Box::new(honest)
            }
        })
        .run();
        let mut faulty = vec![false; n];
        faulty[attacker as usize] = true;
        let v = check_vector_consensus(&report, &props, &faulty, 1);
        prop_assert!(
            v.ok(),
            "seed={seed} attacker={attacker} kind={attack_kind}: {:?}",
            v.violations
        );
        // No honest process is ever convicted, whatever the schedule.
        for d in ft_modular::core::validator::detections(&report.trace) {
            prop_assert_eq!(&d.culprit, &format!("p{attacker}"), "framed an honest process");
        }
    }

    /// Determinism as a property: two runs with identical inputs are
    /// bit-identical, whatever those inputs are.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>(), n in 3usize..6) {
        let mk = || {
            let setup = ProtocolConfig::new(n, (n - 1) / 2).seed(seed).setup();
            let props = proposals(n);
            Simulation::build_boxed(SimConfig::new(n).seed(seed), move |id| {
                Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
            })
            .run()
        };
        let (a, b) = (mk(), mk());
        prop_assert_eq!(a.decisions, b.decisions);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.metrics.messages_sent, b.metrics.messages_sent);
        prop_assert_eq!(a.metrics.bytes_sent, b.metrics.bytes_sent);
    }
}
