//! Property-based testing: randomized schedules, crash placements and
//! attack choices must never produce a safety violation.
//!
//! These tests treat the whole system as the unit under test: for any
//! random seed (network schedule), any legal crash set, and any attack
//! from the library, the validators must report Agreement and the
//! respective Validity property intact. Termination is also asserted —
//! the simulator's GST default makes every run eventually synchronous.
//!
//! Cases are drawn from the in-tree seeded PRNG (not an external fuzzing
//! framework), so every case is identified by its iteration number and
//! replays identically everywhere.

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::core::crash::CrashConsensus;
use ft_modular::core::spec::Resilience;
use ft_modular::core::validator::{check_crash_consensus, check_vector_consensus};
use ft_modular::crypto::prng::{Rng64, SplitMix64};
use ft_modular::faults::attacks::{DecideForger, RoundJumper, VectorCorruptor, VoteDuplicator};
use ft_modular::faults::{ByzantineWrapper, Tamper};
use ft_modular::fd::TimeoutDetector;
use ft_modular::sim::runner::BoxedActor;
use ft_modular::sim::{Duration, SimConfig, Simulation, VirtualTime};

fn proposals(n: usize) -> Vec<Value> {
    (0..n as u64).map(|i| 100 + i).collect()
}

/// Crash-model protocol: random seed, size, delay spread, crash set
/// within the bound.
#[test]
fn crash_protocol_safe_under_random_conditions() {
    let mut gen = SplitMix64::from_seed(0x91091);
    for case in 0..20 {
        let seed = gen.next_u64();
        let n = gen.gen_range_u64(3, 7) as usize;
        let max_delay = gen.gen_range_u64(5, 79);
        let crash_bits = gen.next_u64() as u8;
        let crash_time = gen.gen_range_u64(0, 299);

        let fmax = ftm_core::quorum::max_faults(n);
        let crashed: Vec<usize> = (0..n)
            .filter(|i| crash_bits & (1 << i) != 0)
            .take(fmax)
            .collect();
        let mut cfg = SimConfig::new(n)
            .seed(seed)
            .delay_range(Duration::of(1), Duration::of(max_delay))
            .gst(VirtualTime::at(3_000), Duration::of(max_delay.min(15)));
        for &c in &crashed {
            cfg = cfg.crash(c, VirtualTime::at(crash_time));
        }
        let res = Resilience::new(n, fmax);
        let report = Simulation::build(cfg, move |id| {
            CrashConsensus::new(
                res,
                id,
                100 + id.0 as u64,
                TimeoutDetector::new(n, Duration::of(120)),
                Duration::of(20),
                Some(Duration::of(35)),
            )
        })
        .run();
        let v = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
        assert!(
            v.ok(),
            "case {case}: seed={seed} n={n} crashed={crashed:?}: {:?}",
            v.violations
        );
    }
}

/// Transformed protocol, all honest: random seed, size/budget, delays.
#[test]
fn byzantine_protocol_safe_under_random_conditions() {
    let mut gen = SplitMix64::from_seed(0x91092);
    for case in 0..20 {
        let seed = gen.next_u64();
        let (n, f) = [(3usize, 1usize), (4, 1), (5, 2)][gen.gen_range_u64(0, 2) as usize];
        let max_delay = gen.gen_range_u64(5, 49);
        let crash_time = gen.gen_range_u64(0, 199);
        let crash_someone = gen.next_u64() & 1 == 1;

        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        let mut cfg = SimConfig::new(n)
            .seed(seed)
            .delay_range(Duration::of(1), Duration::of(max_delay))
            .gst(VirtualTime::at(3_000), Duration::of(max_delay.min(15)));
        if crash_someone {
            cfg = cfg.crash(n - 1, VirtualTime::at(crash_time));
        }
        let props = proposals(n);
        let p2 = props.clone();
        let report = Simulation::build_boxed(cfg, move |id| {
            Box::new(ByzantineConsensus::new(&setup, id, p2[id.index()]))
        })
        .run();
        let v = check_vector_consensus(&report, &props, &vec![false; n], f);
        assert!(
            v.ok(),
            "case {case}: seed={seed} n={n} f={f}: {:?}",
            v.violations
        );
    }
}

/// Transformed protocol under a random attack at a random position:
/// safety and liveness must hold regardless.
#[test]
fn byzantine_protocol_safe_under_random_attacks() {
    let mut gen = SplitMix64::from_seed(0x91093);
    for case in 0..20 {
        let seed = gen.next_u64();
        let attacker = gen.gen_range_u64(0, 3) as u32;
        let attack_kind = gen.gen_range_u64(0, 3) as u8;
        let fire_at = gen.gen_range_u64(1, 119);

        let n = 4;
        let setup = ProtocolConfig::new(n, 1).seed(seed).setup();
        let props = proposals(n);
        let p2 = props.clone();
        let report = Simulation::build_boxed(SimConfig::new(n).seed(seed), move |id| {
            let honest = ByzantineConsensus::new(&setup, id, p2[id.index()]);
            if id.0 == attacker {
                let tamper: Box<dyn Tamper> = match attack_kind {
                    0 => Box::new(VectorCorruptor {
                        entry: (attacker as usize + 1) % n,
                        poison: 666,
                    }),
                    1 => Box::new(RoundJumper { jump: 3 }),
                    2 => Box::new(VoteDuplicator),
                    _ => Box::new(DecideForger::new(VirtualTime::at(fire_at), n, 999)),
                };
                Box::new(ByzantineWrapper::new(
                    honest,
                    tamper,
                    setup.keys[attacker as usize].clone(),
                    Duration::of(15),
                )) as BoxedActor<_, ValueVector>
            } else {
                Box::new(honest)
            }
        })
        .run();
        let mut faulty = vec![false; n];
        faulty[attacker as usize] = true;
        let v = check_vector_consensus(&report, &props, &faulty, 1);
        assert!(
            v.ok(),
            "case {case}: seed={seed} attacker={attacker} kind={attack_kind}: {:?}",
            v.violations
        );
        // No honest process is ever convicted, whatever the schedule.
        for d in ft_modular::core::validator::detections(&report.trace) {
            assert_eq!(
                d.culprit,
                format!("p{attacker}"),
                "case {case}: framed an honest process"
            );
        }
    }
}

/// Determinism as a property: two runs with identical inputs are
/// bit-identical, whatever those inputs are.
#[test]
fn runs_are_reproducible() {
    let mut gen = SplitMix64::from_seed(0x91094);
    for case in 0..10 {
        let seed = gen.next_u64();
        let n = gen.gen_range_u64(3, 5) as usize;
        let mk = || {
            let setup = ProtocolConfig::new(n, ftm_core::quorum::max_faults(n))
                .seed(seed)
                .setup();
            let props = proposals(n);
            Simulation::build_boxed(SimConfig::new(n).seed(seed), move |id| {
                Box::new(ByzantineConsensus::new(&setup, id, props[id.index()]))
            })
            .run()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.decisions, b.decisions, "case {case}");
        assert_eq!(a.end_time, b.end_time, "case {case}");
        assert_eq!(
            a.metrics.messages_sent, b.metrics.messages_sent,
            "case {case}"
        );
        assert_eq!(a.metrics.bytes_sent, b.metrics.bytes_sent, "case {case}");
        assert_eq!(a.trace.fingerprint(), b.trace.fingerprint(), "case {case}");
    }
}
