//! The sweep harness's core guarantee: the report is a pure function of
//! `(scenario matrix, base seed)`. Thread count is a wall-clock knob, not
//! a semantic one — 1 worker and 8 workers must render byte-identical
//! JSON — and distinct base seeds must actually explore distinct
//! executions.

use ft_modular::faults::{sweep_matrix, FaultBehavior, ScenarioMatrix};

fn matrix() -> ScenarioMatrix {
    ScenarioMatrix::new(
        vec![(4, 1), (5, 2), (7, 3)],
        vec![
            FaultBehavior::Honest,
            FaultBehavior::Crash,
            FaultBehavior::Mute,
            FaultBehavior::VectorCorrupt,
            FaultBehavior::ForgeDecide,
            FaultBehavior::StripCertificates,
        ],
    )
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let m = matrix();
    let single = sweep_matrix(&m, 0xD00D, 1).to_json().render();
    let eight = sweep_matrix(&m, 0xD00D, 8).to_json().render();
    assert_eq!(single, eight, "thread count leaked into the report");
}

#[test]
fn sweep_is_bit_identical_at_large_system_sizes() {
    // The grown default grid tops out at (31, 10); determinism must hold
    // there too, for both transformed protocols.
    let systems: Vec<(usize, usize)> = ScenarioMatrix::default_systems()
        .into_iter()
        .filter(|&(n, _)| n >= 13)
        .collect();
    assert_eq!(systems, [(13, 4), (21, 6), (31, 10)]);
    let m = ScenarioMatrix::new(
        systems,
        vec![FaultBehavior::Honest, FaultBehavior::VectorCorrupt],
    )
    .cross_protocols();
    let single = sweep_matrix(&m, 0xB16, 1).to_json().render();
    let eight = sweep_matrix(&m, 0xB16, 8).to_json().render();
    assert_eq!(single, eight, "thread count leaked into the large-n report");
}

#[test]
fn distinct_base_seeds_give_distinct_traces() {
    let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
    let a = sweep_matrix(&m, 1, 2);
    let b = sweep_matrix(&m, 2, 2);
    assert_ne!(
        a.records[0].get("trace-fingerprint"),
        b.records[0].get("trace-fingerprint"),
        "different base seeds produced the same execution"
    );
    // But each base seed reproduces itself exactly.
    let a2 = sweep_matrix(&m, 1, 8);
    assert_eq!(a.to_json().render(), a2.to_json().render());
}

#[test]
fn scenario_indices_decorrelate_seeds_within_a_sweep() {
    // Two copies of the same cell in one sweep get distinct derived seeds,
    // hence distinct traces — repeats are real samples, not clones.
    let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
    let rep = ft_modular::faults::sweep_matrix_repeated(&m, 2, 9, 2);
    assert_ne!(rep.records[0].seed, rep.records[1].seed);
    assert_ne!(
        rep.records[0].get("trace-fingerprint"),
        rep.records[1].get("trace-fingerprint"),
    );
}

#[test]
fn coalition_and_network_sweep_is_bit_identical_across_thread_counts() {
    // The new sweep axes — multi-member coalitions and network profiles —
    // must obey the same purity contract as the classic grid: 1, 2 and 8
    // workers render byte-identical JSON.
    use ft_modular::faults::{sweep_scenarios, NetworkProfile, Scenario};

    let mut scenarios = Vec::new();
    for network in NetworkProfile::all() {
        scenarios.push(Scenario::new(4, 1, FaultBehavior::VectorCorrupt).network(network));
        scenarios.push(
            Scenario::coalition_of(5, 2, &[FaultBehavior::VectorCorrupt, FaultBehavior::Mute])
                .network(network),
        );
    }
    // One budget-exceeded row rides along (calm only: past the budget a
    // parked run burns simulated time to the limit, which is pointless
    // here — E11 documents those rows).
    scenarios.push(Scenario::coalition_of(
        5,
        2,
        &[
            FaultBehavior::VectorCorrupt,
            FaultBehavior::Mute,
            FaultBehavior::DuplicateVotes,
        ],
    ));

    let one = sweep_scenarios(&scenarios, 2, 0xC0DE, 1).to_json().render();
    let two = sweep_scenarios(&scenarios, 2, 0xC0DE, 2).to_json().render();
    let eight = sweep_scenarios(&scenarios, 2, 0xC0DE, 8).to_json().render();
    assert_eq!(one, two, "thread count leaked into the coalition sweep");
    assert_eq!(one, eight, "thread count leaked into the coalition sweep");
}

#[test]
fn no_gst_cell_terminates_via_the_round_cap() {
    // A profile with no GST makes termination unprovable — the simulator
    // must not depend on it. With delays far beyond the muteness
    // allowance, honest processes perpetually mis-suspect each other and
    // churn rounds without deciding; the profile's round cap must stop
    // the run (StopReason::RoundLimit), not the 2M-tick time limit.
    use ft_modular::faults::{AttackRun, NetworkProfile};
    use ft_modular::sim::runner::StopReason;
    use ft_modular::sim::{Duration, VirtualTime};

    let stress = NetworkProfile {
        label: "stress",
        min_delay: Duration::of(300),
        max_delay: Duration::of(400),
        gst: None,
        post_gst_max_delay: Duration::of(400),
        max_rounds: Some(2),
    };
    let run = AttackRun::new(4, 1, 0xCAFE, 3).network(stress);
    let report = run.run(|_| None);
    assert_eq!(
        report.stop,
        StopReason::RoundLimit,
        "expected the round cap to fire (end={:?})",
        report.end_time
    );
    assert!(
        report.end_time < VirtualTime::at(100_000),
        "round cap fired absurdly late: {:?}",
        report.end_time
    );

    // And the cap is itself deterministic.
    let again = run.run(|_| None);
    assert_eq!(report.trace.fingerprint(), again.trace.fingerprint());
}

#[test]
fn certificate_heavy_sweep_is_bit_identical_across_1_2_and_8_threads() {
    // Regression guard for the BTree migration in ftm-certify: the
    // behaviors below drive the certificate analyzer's grouping and
    // sender-set paths hardest (stripped evidence, forged decides,
    // duplicate votes), so any hash-order dependence left in the
    // report-feeding path would surface here as a byte diff between
    // worker counts.
    let m = ScenarioMatrix::new(
        vec![(4, 1), (7, 3)],
        vec![
            FaultBehavior::StripCertificates,
            FaultBehavior::ForgeDecide,
            FaultBehavior::DuplicateVotes,
            FaultBehavior::EquivocateInit,
        ],
    )
    .cross_protocols();
    let one = sweep_matrix(&m, 0xCE47, 1).to_json().render();
    let two = sweep_matrix(&m, 0xCE47, 2).to_json().render();
    let eight = sweep_matrix(&m, 0xCE47, 8).to_json().render();
    assert_eq!(one, two, "thread count leaked into the certificate sweep");
    assert_eq!(one, eight, "thread count leaked into the certificate sweep");
}
