//! The sweep harness's core guarantee: the report is a pure function of
//! `(scenario matrix, base seed)`. Thread count is a wall-clock knob, not
//! a semantic one — 1 worker and 8 workers must render byte-identical
//! JSON — and distinct base seeds must actually explore distinct
//! executions.

use ft_modular::faults::{sweep_matrix, FaultBehavior, ScenarioMatrix};

fn matrix() -> ScenarioMatrix {
    ScenarioMatrix::new(
        vec![(4, 1), (5, 2), (7, 3)],
        vec![
            FaultBehavior::Honest,
            FaultBehavior::Crash,
            FaultBehavior::Mute,
            FaultBehavior::VectorCorrupt,
            FaultBehavior::ForgeDecide,
            FaultBehavior::StripCertificates,
        ],
    )
}

#[test]
fn sweep_is_bit_identical_across_thread_counts() {
    let m = matrix();
    let single = sweep_matrix(&m, 0xD00D, 1).to_json().render();
    let eight = sweep_matrix(&m, 0xD00D, 8).to_json().render();
    assert_eq!(single, eight, "thread count leaked into the report");
}

#[test]
fn sweep_is_bit_identical_at_large_system_sizes() {
    // The grown default grid tops out at (31, 10); determinism must hold
    // there too, for both transformed protocols.
    let systems: Vec<(usize, usize)> = ScenarioMatrix::default_systems()
        .into_iter()
        .filter(|&(n, _)| n >= 13)
        .collect();
    assert_eq!(systems, [(13, 4), (21, 6), (31, 10)]);
    let m = ScenarioMatrix::new(
        systems,
        vec![FaultBehavior::Honest, FaultBehavior::VectorCorrupt],
    )
    .cross_protocols();
    let single = sweep_matrix(&m, 0xB16, 1).to_json().render();
    let eight = sweep_matrix(&m, 0xB16, 8).to_json().render();
    assert_eq!(single, eight, "thread count leaked into the large-n report");
}

#[test]
fn distinct_base_seeds_give_distinct_traces() {
    let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
    let a = sweep_matrix(&m, 1, 2);
    let b = sweep_matrix(&m, 2, 2);
    assert_ne!(
        a.records[0].get("trace-fingerprint"),
        b.records[0].get("trace-fingerprint"),
        "different base seeds produced the same execution"
    );
    // But each base seed reproduces itself exactly.
    let a2 = sweep_matrix(&m, 1, 8);
    assert_eq!(a.to_json().render(), a2.to_json().render());
}

#[test]
fn scenario_indices_decorrelate_seeds_within_a_sweep() {
    // Two copies of the same cell in one sweep get distinct derived seeds,
    // hence distinct traces — repeats are real samples, not clones.
    let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
    let rep = ft_modular::faults::sweep_matrix_repeated(&m, 2, 9, 2);
    assert_ne!(rep.records[0].seed, rep.records[1].seed);
    assert_ne!(
        rep.records[0].get("trace-fingerprint"),
        rep.records[1].get("trace-fingerprint"),
    );
}
