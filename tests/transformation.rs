//! The transformation's before/after contrast (experiment E2) and the
//! module ablation (experiment E8).
//!
//! E2: the same Byzantine behaviors that the transformed protocol survives
//! are fatal to the crash-model protocol — that is the paper's motivation.
//!
//! E8: disabling one module of the Fig. 1 stack at a time re-opens a
//! specific attack — each module is load-bearing.

use ft_modular::certify::{Value, ValueVector};
use ft_modular::core::byzantine::ByzantineConsensus;
use ft_modular::core::config::ProtocolConfig;
use ft_modular::core::crash::{CrashConsensus, CrashMsg};
use ft_modular::core::spec::Resilience;
use ft_modular::core::validator::{check_crash_consensus, check_vector_consensus};
use ft_modular::detect::observer::Checks;
use ft_modular::faults::attacks::VectorCorruptor;
use ft_modular::faults::crash_attacks::{CrashAttack, CrashSaboteur};
use ft_modular::faults::ByzantineWrapper;
use ft_modular::fd::TimeoutDetector;
use ft_modular::sim::runner::BoxedActor;
use ft_modular::sim::{Duration, SimConfig, Simulation, VirtualTime};

const N: usize = 4;

fn crash_actor(id: ft_modular::sim::ProcessId) -> CrashConsensus<TimeoutDetector> {
    CrashConsensus::new(
        Resilience::new(N, 1),
        id,
        100 + id.0 as u64,
        TimeoutDetector::new(N, Duration::of(150)),
        Duration::of(25),
        Some(Duration::of(40)),
    )
}

#[test]
fn e2_crash_protocol_falls_to_estimate_corruption_transformed_survives() {
    let mut crash_violations = 0;
    let mut byz_violations = 0;
    let proposals: Vec<Value> = (0..N as u64).map(|i| 100 + i).collect();
    let faulty = [true, false, false, false]; // p0 is the attacker

    for seed in 0..10u64 {
        // Crash-model protocol under a corrupting coordinator.
        let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
            if id.0 == 0 {
                Box::new(CrashSaboteur::new(
                    crash_actor(id),
                    CrashAttack::CorruptEstimate { poison: 31337 },
                )) as BoxedActor<CrashMsg, Value>
            } else {
                Box::new(crash_actor(id))
            }
        })
        .run();
        if !check_crash_consensus(&report, &proposals, &faulty).ok() {
            crash_violations += 1;
        }

        // Transformed protocol under the equivalent attack.
        let setup = ProtocolConfig::new(N, 1).seed(seed).setup();
        let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
            let honest = ByzantineConsensus::new(&setup, id, proposals[id.index()]);
            if id.0 == 0 {
                Box::new(ByzantineWrapper::new(
                    honest,
                    Box::new(VectorCorruptor {
                        entry: 2,
                        poison: 31337,
                    }),
                    setup.keys[0].clone(),
                    Duration::of(30),
                )) as BoxedActor<_, ValueVector>
            } else {
                Box::new(honest)
            }
        })
        .run();
        if !check_vector_consensus(&report, &proposals, &faulty, 1).ok() {
            byz_violations += 1;
        }
    }
    assert!(
        crash_violations >= 8,
        "the crash protocol should fall nearly always; fell {crash_violations}/10"
    );
    assert_eq!(
        byz_violations, 0,
        "the transformed protocol must survive every run"
    );
}

#[test]
fn e2_crash_protocol_falls_to_forged_decide_transformed_survives() {
    let proposals: Vec<Value> = (0..N as u64).map(|i| 100 + i).collect();
    let faulty = [false, false, false, true];
    let mut crash_violations = 0;

    for seed in 0..10u64 {
        let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
            if id.0 == 3 {
                Box::new(CrashSaboteur::new(
                    crash_actor(id),
                    CrashAttack::ForgeDecide {
                        at: VirtualTime::at(1),
                        poison: 999,
                    },
                )) as BoxedActor<CrashMsg, Value>
            } else {
                Box::new(crash_actor(id))
            }
        })
        .run();
        if !check_crash_consensus(&report, &proposals, &faulty).ok() {
            crash_violations += 1;
        }
    }
    assert_eq!(
        crash_violations, 10,
        "an unauthenticated forged DECIDE must poison every crash-model run"
    );
    // The transformed side of this contrast is covered by
    // fault_matrix::forged_decide_is_survived_and_detected.
}

/// Runs the transformed protocol with a vector-corrupting coordinator and
/// the given check configuration; returns whether the run stayed correct.
fn byz_corruption_survives(checks: Checks, seed: u64) -> bool {
    let proposals: Vec<Value> = (0..N as u64).map(|i| 100 + i).collect();
    let setup = ProtocolConfig::new(N, 1).seed(seed).checks(checks).setup();
    let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
        let honest = ByzantineConsensus::new(&setup, id, proposals[id.index()]);
        if id.0 == 0 {
            Box::new(ByzantineWrapper::new(
                honest,
                Box::new(VectorCorruptor {
                    entry: 2,
                    poison: 666,
                }),
                setup.keys[0].clone(),
                Duration::of(30),
            )) as BoxedActor<_, ValueVector>
        } else {
            Box::new(honest)
        }
    })
    .run();
    check_vector_consensus(&report, &proposals, &[true, false, false, false], 1).ok()
}

#[test]
fn e8_disabling_certificates_reopens_vector_corruption() {
    let mut broken = 0;
    for seed in 0..10u64 {
        assert!(
            byz_corruption_survives(Checks::default(), seed),
            "full stack must survive seed {seed}"
        );
        if !byz_corruption_survives(
            Checks {
                certificates: false,
                ..Checks::default()
            },
            seed,
        ) {
            broken += 1;
        }
    }
    assert!(
        broken >= 8,
        "without certificate checks the corruption must usually win; won {broken}/10"
    );
}

#[test]
fn e8_disabling_signatures_admits_impersonation() {
    use ft_modular::faults::attacks::IdentityThief;
    // With signatures off, the thief's messages claiming to be p1 are
    // admitted and processed as p1's — the observer applies them to p1's
    // automaton, convicting the *innocent* p1 of p3's double-talk.
    let proposals: Vec<Value> = (0..N as u64).map(|i| 100 + i).collect();
    let mut framed = 0;
    for seed in 0..10u64 {
        let setup = ProtocolConfig::new(N, 1)
            .seed(seed)
            .checks(Checks {
                signatures: false,
                ..Checks::default()
            })
            .setup();
        let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
            let honest = ByzantineConsensus::new(&setup, id, proposals[id.index()]);
            if id.0 == 3 {
                Box::new(ByzantineWrapper::new(
                    honest,
                    Box::new(IdentityThief {
                        victim: ft_modular::sim::ProcessId(1),
                    }),
                    setup.keys[3].clone(),
                    Duration::of(30),
                )) as BoxedActor<_, ValueVector>
            } else {
                Box::new(honest)
            }
        })
        .run();
        let det = ft_modular::core::validator::detections(&report.trace);
        if det.iter().any(|d| d.culprit == "p1") {
            framed += 1;
        }
    }
    assert!(
        framed >= 8,
        "without the signature module an innocent process gets framed; framed {framed}/10"
    );
}
