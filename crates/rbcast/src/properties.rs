//! The reliable broadcast specification as run-report checkers.
//!
//! * **Validity** — if the broadcaster is correct and broadcasts `v`,
//!   every correct process eventually delivers `v`.
//! * **Agreement** — no two correct processes deliver different values.
//! * **Integrity** — every correct process delivers at most once (the
//!   simulator's decision slot enforces this structurally; contradictions
//!   are surfaced by [`ftm_sim::RunReport::contradictions`]).
//! * **Totality** — if any correct process delivers, every correct
//!   process delivers.

use ftm_sim::RunReport;

/// Verdict on one broadcast run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbVerdict {
    /// Validity (only checked when the broadcaster is correct).
    pub validity: bool,
    /// Agreement among correct deliverers.
    pub agreement: bool,
    /// At-most-once delivery at every correct process.
    pub integrity: bool,
    /// All-or-nothing delivery among correct processes.
    pub totality: bool,
}

impl RbVerdict {
    /// All checked properties hold.
    pub fn ok(&self) -> bool {
        self.validity && self.agreement && self.integrity && self.totality
    }
}

/// Checks the specification on a finished run.
///
/// `broadcaster` is the originating process; `broadcast_value` its input
/// (pass `None` when the broadcaster is faulty — Validity is then vacuous);
/// `faulty[i]` marks adversary-controlled processes.
pub fn check_reliable_broadcast(
    report: &RunReport<u64>,
    broadcaster: usize,
    broadcast_value: Option<u64>,
    faulty: &[bool],
) -> RbVerdict {
    let n = report.decisions.len();
    let correct: Vec<usize> = (0..n)
        .filter(|&i| !faulty.get(i).copied().unwrap_or(false) && !report.crashed[i])
        .collect();

    let deliveries: Vec<u64> = correct
        .iter()
        .filter_map(|&i| report.decisions[i])
        .collect();

    let agreement = deliveries.windows(2).all(|w| w[0] == w[1]);
    let totality = deliveries.is_empty() || deliveries.len() == correct.len();
    let integrity = report
        .contradictions
        .iter()
        .all(|p| faulty.get(p.index()).copied().unwrap_or(false));
    let validity = match broadcast_value {
        Some(v)
            if !faulty.get(broadcaster).copied().unwrap_or(false)
                && !report.crashed[broadcaster] =>
        {
            correct.iter().all(|&i| report.decisions[i] == Some(v))
        }
        _ => true, // vacuous for a faulty/crashed broadcaster
    };

    RbVerdict {
        validity,
        agreement,
        integrity,
        totality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bracha::BrachaActor;
    use ftm_sim::{SimConfig, Simulation};

    #[test]
    fn honest_bracha_satisfies_the_full_spec() {
        for seed in 0..10 {
            let report = Simulation::build(SimConfig::new(4).seed(seed), |id| {
                if id.0 == 0 {
                    BrachaActor::broadcaster(4, 1, 9)
                } else {
                    BrachaActor::relay(4, 1)
                }
            })
            .run();
            let v = check_reliable_broadcast(&report, 0, Some(9), &[false; 4]);
            assert!(v.ok(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn verdict_flags_partial_delivery() {
        use ftm_sim::metrics::Metrics;
        use ftm_sim::runner::StopReason;
        use ftm_sim::trace::Trace;
        use ftm_sim::VirtualTime;
        let report = RunReport {
            decisions: vec![Some(1), None, Some(1)],
            crashed: vec![false; 3],
            halted: vec![true; 3],
            contradictions: vec![],
            end_time: VirtualTime::at(5),
            stop: StopReason::Quiescent,
            trace: Trace::new(),
            metrics: Metrics::new(3),
        };
        let v = check_reliable_broadcast(&report, 0, None, &[false; 3]);
        assert!(!v.totality);
        assert!(v.agreement);
    }

    #[test]
    fn verdict_flags_disagreement() {
        use ftm_sim::metrics::Metrics;
        use ftm_sim::runner::StopReason;
        use ftm_sim::trace::Trace;
        use ftm_sim::VirtualTime;
        let report = RunReport {
            decisions: vec![Some(1), Some(2), Some(1)],
            crashed: vec![false; 3],
            halted: vec![true; 3],
            contradictions: vec![],
            end_time: VirtualTime::at(5),
            stop: StopReason::Quiescent,
            trace: Trace::new(),
            metrics: Metrics::new(3),
        };
        let v = check_reliable_broadcast(&report, 0, None, &[true, false, false]);
        assert!(!v.agreement);
    }
}
