//! Bracha's reliable broadcast (arbitrary-fault model, `n > 3F`).
//!
//! The double-echo construction over authenticated point-to-point
//! channels:
//!
//! 1. the broadcaster sends `INITIAL(v)` to everyone;
//! 2. on `INITIAL(v)`: send `ECHO(v)` to everyone (once);
//! 3. on `⌈(n+F+1)/2⌉` ECHOes for `v`, or `F+1` READYs for `v`: send
//!    `READY(v)` to everyone (once);
//! 4. on `2F+1` READYs for `v`: deliver `v`.
//!
//! The echo quorum `⌈(n+F+1)/2⌉` makes two quorums for different values
//! intersect in a correct process, so an **equivocating broadcaster**
//! (different INITIALs to different processes) can never drive two correct
//! processes to deliver different values; the `F+1`-READY amplification
//! gives Totality (if any correct process delivers, all do).

use std::collections::{HashMap, HashSet};

use ftm_sim::{Actor, Context, Payload, ProcessId};

/// Wire messages of one broadcast instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BrachaMsg {
    /// Step 1: the broadcaster's value.
    Initial(u64),
    /// Step 2: first-round endorsement.
    Echo(u64),
    /// Step 3: delivery announcement.
    Ready(u64),
}

impl Payload for BrachaMsg {
    fn size_bytes(&self) -> usize {
        1 + 8
    }

    fn label(&self) -> String {
        match self {
            BrachaMsg::Initial(v) => format!("INITIAL({v})"),
            BrachaMsg::Echo(v) => format!("ECHO({v})"),
            BrachaMsg::Ready(v) => format!("READY({v})"),
        }
    }
}

/// Commands the state machine asks the host to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrachaOutput {
    /// Broadcast this message to everyone (including self).
    Send(BrachaMsg),
    /// Deliver this value (exactly once per instance).
    Deliver(u64),
}

/// The protocol-agnostic state machine for one broadcast instance.
///
/// # Example
///
/// ```
/// use ftm_rbcast::bracha::{BrachaMsg, BrachaOutput, BrachaState};
/// use ftm_sim::ProcessId;
///
/// // n = 4, F = 1: echo quorum 3, ready quorum 3, amplification 2.
/// let mut st = BrachaState::new(4, 1);
/// let out = st.on_message(ProcessId(0), &BrachaMsg::Initial(9));
/// assert_eq!(out, vec![BrachaOutput::Send(BrachaMsg::Echo(9))]);
/// ```
#[derive(Debug, Clone)]
pub struct BrachaState {
    n: usize,
    f: usize,
    echoes: HashMap<u64, HashSet<ProcessId>>,
    readies: HashMap<u64, HashSet<ProcessId>>,
    sent_echo: bool,
    sent_ready: bool,
    delivered: bool,
}

impl BrachaState {
    /// Creates the state machine for an `(n, F)` system.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3F` (below that the echo quorums of two values
    /// can be disjoint and Agreement is forfeit).
    pub fn new(n: usize, f: usize) -> Self {
        assert!(
            n >= ftm_quorum::bracha_min_n(f),
            "Bracha broadcast requires n > 3F (n={n}, F={f})"
        );
        BrachaState {
            n,
            f,
            echoes: HashMap::new(),
            readies: HashMap::new(),
            sent_echo: false,
            sent_ready: false,
            delivered: false,
        }
    }

    /// The echo quorum `⌈(n+F+1)/2⌉`.
    pub fn echo_quorum(&self) -> usize {
        ftm_quorum::bracha_echo_quorum(self.n, self.f)
    }

    /// The delivery quorum `2F + 1`.
    pub fn ready_quorum(&self) -> usize {
        ftm_quorum::bracha_ready_quorum(self.f)
    }

    /// Whether this instance has delivered.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Feeds one receipt; returns the commands to execute, in order.
    pub fn on_message(&mut self, from: ProcessId, msg: &BrachaMsg) -> Vec<BrachaOutput> {
        let mut out = Vec::new();
        match msg {
            BrachaMsg::Initial(v) => {
                if !self.sent_echo {
                    self.sent_echo = true;
                    out.push(BrachaOutput::Send(BrachaMsg::Echo(*v)));
                }
            }
            BrachaMsg::Echo(v) => {
                self.echoes.entry(*v).or_default().insert(from);
                if !self.sent_ready && self.echoes[v].len() >= self.echo_quorum() {
                    self.sent_ready = true;
                    out.push(BrachaOutput::Send(BrachaMsg::Ready(*v)));
                }
            }
            BrachaMsg::Ready(v) => {
                self.readies.entry(*v).or_default().insert(from);
                let count = self.readies[v].len();
                if !self.sent_ready && count > self.f {
                    // Amplification: F+1 READYs prove a correct process
                    // sent READY, which is safe to join.
                    self.sent_ready = true;
                    out.push(BrachaOutput::Send(BrachaMsg::Ready(*v)));
                }
                if !self.delivered && count >= self.ready_quorum() {
                    self.delivered = true;
                    out.push(BrachaOutput::Deliver(*v));
                }
            }
        }
        out
    }
}

/// A self-contained simulator actor for one Bracha instance. Process 0 is
/// the broadcaster (honest actors only — Byzantine broadcasters are
/// modeled in tests by custom actors).
#[derive(Debug)]
pub struct BrachaActor {
    state: BrachaState,
    /// `Some(v)` on the broadcaster.
    pub broadcast: Option<u64>,
}

impl BrachaActor {
    /// A relay-only participant of an `(n, F)` system.
    pub fn relay(n: usize, f: usize) -> Self {
        BrachaActor {
            state: BrachaState::new(n, f),
            broadcast: None,
        }
    }

    /// The broadcaster of `v`.
    pub fn broadcaster(n: usize, f: usize, v: u64) -> Self {
        BrachaActor {
            state: BrachaState::new(n, f),
            broadcast: Some(v),
        }
    }
}

impl Actor for BrachaActor {
    type Msg = BrachaMsg;
    type Decision = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, BrachaMsg, u64>) {
        if let Some(v) = self.broadcast {
            ctx.broadcast(BrachaMsg::Initial(v));
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &BrachaMsg,
        ctx: &mut Context<'_, BrachaMsg, u64>,
    ) {
        for cmd in self.state.on_message(from, msg) {
            match cmd {
                BrachaOutput::Send(m) => ctx.broadcast(m),
                BrachaOutput::Deliver(v) => ctx.decide(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_sim::runner::BoxedActor;
    use ftm_sim::{SimConfig, Simulation, VirtualTime};

    const N: usize = 4;
    const F: usize = 1;

    #[test]
    fn quorums_match_the_classic_thresholds() {
        let st = BrachaState::new(4, 1);
        assert_eq!(st.echo_quorum(), 3);
        assert_eq!(st.ready_quorum(), 3);
        let st = BrachaState::new(7, 2);
        assert_eq!(st.echo_quorum(), 5);
        assert_eq!(st.ready_quorum(), 5);
    }

    #[test]
    #[should_panic(expected = "n > 3F")]
    fn bound_is_enforced() {
        let _ = BrachaState::new(6, 2);
    }

    #[test]
    fn honest_broadcast_delivers_everywhere() {
        for seed in 0..10 {
            let report = Simulation::build(SimConfig::new(N).seed(seed), |id| {
                if id.0 == 0 {
                    BrachaActor::broadcaster(N, F, 42)
                } else {
                    BrachaActor::relay(N, F)
                }
            })
            .run();
            assert!(report.all_decided(), "seed {seed}");
            assert_eq!(report.unanimous(), Some(42), "seed {seed}");
        }
    }

    #[test]
    fn tolerates_a_crashed_relayer() {
        let report = Simulation::build(
            SimConfig::new(N).seed(3).crash(2, VirtualTime::at(2)),
            |id| {
                if id.0 == 0 {
                    BrachaActor::broadcaster(N, F, 42)
                } else {
                    BrachaActor::relay(N, F)
                }
            },
        )
        .run();
        // n−1 = 3 live processes ≥ every quorum: delivery proceeds.
        for p in [0usize, 1, 3] {
            assert_eq!(report.decisions[p], Some(42), "p{p}");
        }
    }

    /// A two-faced broadcaster: INITIAL(a) to even processes, INITIAL(b)
    /// to odd ones, then behaves as an honest relayer for echoes/readies.
    #[derive(Debug)]
    struct Equivocator {
        state: BrachaState,
    }

    impl Actor for Equivocator {
        type Msg = BrachaMsg;
        type Decision = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, BrachaMsg, u64>) {
            for p in ctx.all_processes() {
                let v = if p.index() % 2 == 0 { 100 } else { 200 };
                ctx.send(p, BrachaMsg::Initial(v));
            }
        }

        fn on_message(
            &mut self,
            from: ProcessId,
            msg: &BrachaMsg,
            ctx: &mut Context<'_, BrachaMsg, u64>,
        ) {
            for cmd in self.state.on_message(from, msg) {
                match cmd {
                    BrachaOutput::Send(m) => ctx.broadcast(m),
                    BrachaOutput::Deliver(v) => ctx.decide(v),
                }
            }
        }
    }

    #[test]
    fn equivocating_broadcaster_cannot_split_deliveries() {
        // Agreement must hold across all schedules: either some common
        // value is delivered by the correct processes, or none delivers.
        for seed in 0..25 {
            let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
                if id.0 == 0 {
                    Box::new(Equivocator {
                        state: BrachaState::new(N, F),
                    }) as BoxedActor<BrachaMsg, u64>
                } else {
                    Box::new(BrachaActor::relay(N, F))
                }
            })
            .run();
            let delivered: Vec<u64> = (1..N).filter_map(|p| report.decisions[p]).collect();
            assert!(
                delivered.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: correct processes delivered {delivered:?}"
            );
        }
    }

    #[test]
    fn totality_among_correct_processes() {
        // If any correct process delivers, all correct processes deliver
        // (the F+1-READY amplification): check across seeds with the
        // equivocator, where delivery is not guaranteed but must be
        // all-or-nothing.
        for seed in 0..25 {
            let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
                if id.0 == 0 {
                    Box::new(Equivocator {
                        state: BrachaState::new(N, F),
                    }) as BoxedActor<BrachaMsg, u64>
                } else {
                    Box::new(BrachaActor::relay(N, F))
                }
            })
            .run();
            let delivered = (1..N).filter(|&p| report.decisions[p].is_some()).count();
            assert!(
                delivered == 0 || delivered == N - 1,
                "seed {seed}: partial delivery ({delivered}/{})",
                N - 1
            );
        }
    }

    #[test]
    fn state_machine_delivers_once() {
        let mut st = BrachaState::new(N, F);
        for p in 0..3u32 {
            let _ = st.on_message(ProcessId(p), &BrachaMsg::Ready(5));
        }
        assert!(st.is_delivered());
        // Further readies do not re-deliver.
        let out = st.on_message(ProcessId(3), &BrachaMsg::Ready(5));
        assert!(out.is_empty());
    }

    #[test]
    fn echo_quorum_triggers_ready_once() {
        let mut st = BrachaState::new(N, F);
        let _ = st.on_message(ProcessId(0), &BrachaMsg::Initial(7)); // echo sent
        let mut readies = 0;
        for p in 0..4u32 {
            for cmd in st.on_message(ProcessId(p), &BrachaMsg::Echo(7)) {
                if matches!(cmd, BrachaOutput::Send(BrachaMsg::Ready(7))) {
                    readies += 1;
                }
            }
        }
        assert_eq!(readies, 1);
    }
}
