//! Eager-relay reliable broadcast (crash model).
//!
//! The simplest member of the family, and precisely what Fig. 2/3 line 2
//! does with DECIDE messages: *on first receipt of `m`, send `m` to
//! everyone, then deliver `m`*. If any correct process delivers, every
//! correct process eventually delivers — a crashed relayer cannot
//! un-send the copies already handed to reliable channels.

use std::collections::HashSet;

use ftm_sim::{Actor, Context, Payload, ProcessId};

/// The broadcast payload: `(origin, tag)` identifies one broadcast
/// instance; `body` is the content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EagerMsg {
    /// The process that originated the broadcast.
    pub origin: ProcessId,
    /// Origin-local sequence tag distinguishing its broadcasts.
    pub tag: u64,
    /// The content.
    pub body: u64,
}

impl Payload for EagerMsg {
    fn size_bytes(&self) -> usize {
        4 + 8 + 8
    }

    fn label(&self) -> String {
        format!("RB({},#{},{})", self.origin, self.tag, self.body)
    }
}

/// The protocol-agnostic component: tracks which `(origin, tag)` instances
/// were already relayed/delivered.
///
/// # Example
///
/// ```
/// use ftm_rbcast::eager::{EagerMsg, EagerState};
/// use ftm_sim::ProcessId;
///
/// let mut st = EagerState::new();
/// let m = EagerMsg { origin: ProcessId(0), tag: 1, body: 42 };
/// // First receipt: relay and deliver.
/// assert_eq!(st.on_receive(&m), Some(42));
/// // Duplicate: ignore.
/// assert_eq!(st.on_receive(&m), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EagerState {
    seen: HashSet<(ProcessId, u64)>,
}

impl EagerState {
    /// Fresh state: nothing seen.
    pub fn new() -> Self {
        EagerState::default()
    }

    /// Processes one receipt. Returns `Some(body)` when the message is new
    /// (the caller must relay it to everyone and then deliver), `None` on
    /// a duplicate.
    pub fn on_receive(&mut self, m: &EagerMsg) -> Option<u64> {
        if self.seen.insert((m.origin, m.tag)) {
            Some(m.body)
        } else {
            None
        }
    }

    /// Number of distinct instances seen.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

/// A self-contained simulator actor: process 0 broadcasts `body` once;
/// everyone delivers via eager relay and decides the delivered value.
#[derive(Debug)]
pub struct EagerActor {
    state: EagerState,
    /// `Some(body)` on the designated broadcaster.
    pub broadcast: Option<u64>,
}

impl EagerActor {
    /// Creates a relay-only participant.
    pub fn relay() -> Self {
        EagerActor {
            state: EagerState::new(),
            broadcast: None,
        }
    }

    /// Creates the broadcaster of `body`.
    pub fn broadcaster(body: u64) -> Self {
        EagerActor {
            state: EagerState::new(),
            broadcast: Some(body),
        }
    }
}

impl Actor for EagerActor {
    type Msg = EagerMsg;
    type Decision = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, EagerMsg, u64>) {
        if let Some(body) = self.broadcast {
            ctx.broadcast(EagerMsg {
                origin: ctx.me(),
                tag: 0,
                body,
            });
        }
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        msg: &EagerMsg,
        ctx: &mut Context<'_, EagerMsg, u64>,
    ) {
        if let Some(body) = self.state.on_receive(msg) {
            ctx.broadcast(msg.clone()); // relay before delivering
            ctx.decide(body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_sim::{SimConfig, Simulation, VirtualTime};

    fn run(n: usize, seed: u64, crashes: &[(usize, u64)]) -> ftm_sim::RunReport<u64> {
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        Simulation::build(cfg, |id| {
            if id.0 == 0 {
                EagerActor::broadcaster(77)
            } else {
                EagerActor::relay()
            }
        })
        .run()
    }

    #[test]
    fn everyone_delivers_the_broadcast() {
        let report = run(5, 1, &[]);
        assert!(report.all_decided());
        assert_eq!(report.unanimous(), Some(77));
    }

    #[test]
    fn broadcaster_crash_after_send_still_delivers_everywhere() {
        // The broadcaster's sends are in flight when it crashes; relays
        // finish the job (Totality).
        let report = run(5, 2, &[(0, 1)]);
        for p in 1..5 {
            assert_eq!(report.decisions[p], Some(77), "p{p} missed the broadcast");
        }
    }

    #[test]
    fn chained_relayer_crashes_are_survived() {
        let report = run(6, 3, &[(1, 4), (2, 8)]);
        for p in 3..6 {
            assert_eq!(report.decisions[p], Some(77));
        }
    }

    #[test]
    fn duplicates_are_delivered_once() {
        let mut st = EagerState::new();
        let m = EagerMsg {
            origin: ProcessId(3),
            tag: 9,
            body: 5,
        };
        assert_eq!(st.on_receive(&m), Some(5));
        for _ in 0..10 {
            assert_eq!(st.on_receive(&m), None);
        }
        assert_eq!(st.seen_count(), 1);
    }

    #[test]
    fn distinct_instances_are_independent() {
        let mut st = EagerState::new();
        let a = EagerMsg {
            origin: ProcessId(0),
            tag: 0,
            body: 1,
        };
        let b = EagerMsg {
            origin: ProcessId(0),
            tag: 1,
            body: 2,
        };
        let c = EagerMsg {
            origin: ProcessId(1),
            tag: 0,
            body: 3,
        };
        assert!(st.on_receive(&a).is_some());
        assert!(st.on_receive(&b).is_some());
        assert!(st.on_receive(&c).is_some());
        assert_eq!(st.seen_count(), 3);
    }
}
