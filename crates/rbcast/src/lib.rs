//! Reliable broadcast substrates for both failure models.
//!
//! The paper's protocols lean on reliable dissemination in two places:
//! the `DECIDE` relay rule (Fig. 2/3 line 2 — "if a process decides, all
//! correct processes receive a DECIDE") is exactly an *eager-relay
//! reliable broadcast* for the crash model, and any production deployment
//! of the transformed protocol would want its arbitrary-fault counterpart.
//! This crate provides both as reusable components plus simulator actors:
//!
//! * [`eager`] — eager-relay reliable broadcast (crash model): on first
//!   receipt, relay to everyone, then deliver. Tolerates any number of
//!   crashes: if any correct process delivers, its relay wave reaches all
//!   correct processes.
//! * [`bracha`] — Bracha's authenticated double-echo broadcast
//!   (arbitrary-fault model, `n > 3F`): `INITIAL → ECHO → READY → deliver`
//!   with quorum thresholds that make even an *equivocating* broadcaster
//!   unable to get two correct processes to deliver different messages.
//!   Channels are authenticated point-to-point (the simulator's channels
//!   are), so no signatures are needed — the classic construction.
//! * [`properties`] — trace/report-level checkers for the reliable
//!   broadcast specification: Validity, Agreement (no two correct
//!   processes deliver differently), Integrity (at most one delivery),
//!   Totality (all-or-nothing among correct processes).

pub mod bracha;
pub mod eager;
pub mod properties;

pub use bracha::{BrachaActor, BrachaMsg, BrachaState};
pub use eager::{EagerActor, EagerMsg, EagerState};
