//! The runtime-agnostic actor boundary.
//!
//! Protocol code in this workspace is written against three things: the
//! [`Actor`] trait (callbacks for start, delivery, timers), the [`Context`]
//! that stages its effects, and [`VirtualTime`]. Nothing in that surface
//! knows *what* delivers the messages or advances the clock — that is the
//! job of a [`Runtime`], the seam this crate defines.
//!
//! Two runtimes implement it:
//!
//! * `ftm-sim` — the deterministic discrete-event simulator. Virtual time,
//!   seeded delays, byte-identical reports: the verification twin.
//! * `ftm-net` — a threaded TCP transport. Wall-clock milliseconds as
//!   ticks, real sockets, the same staged-effects discipline (one actor
//!   never sees concurrent callbacks).
//!
//! Because both drive the *same* actor types through the *same*
//! [`Context`], a protocol validated by exhaustive simulation sweeps is the
//! byte-for-byte artifact that listens on a socket in production — the
//! modularity argument of the source paper, applied to the runtime itself.
//!
//! This crate is dependency-free by design: it must be importable from the
//! simulator, the transport, protocol crates and fault injectors without
//! creating cycles.

pub mod driver;
pub mod process;
pub mod time;

pub use driver::{step, Runtime, SendBoxedActor};
pub use process::{Actor, Context, Effects, LayerSplit, Payload, ProcessId, StagedSend, TimerTag};
pub use time::{Duration, VirtualTime};
