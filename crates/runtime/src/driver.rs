//! The runtime seam: [`Runtime`] is what a host must provide to run
//! [`Actor`]s, and [`step`] is the one callback discipline both hosts
//! share.
//!
//! A runtime owns four capabilities the actor surface abstracts over:
//!
//! 1. **delivery** — turning a staged [`StagedSend`] into future
//!    `on_message` callbacks ([`Runtime::dispatch`]);
//! 2. **timers** — turning a staged `(delay, tag)` into a future
//!    `on_timer` callback ([`Runtime::schedule`]);
//! 3. **a clock** — the [`VirtualTime`] stamped on each callback's
//!    [`Context`] ([`Runtime::now`]); ticks are dimensionless in the
//!    simulator and milliseconds on the real transport;
//! 4. **seeded randomness** — the `u64` stream behind
//!    [`Context::random_u64`] ([`Runtime::rng_draw`]).
//!
//! The effect-application order inside [`Runtime::apply_effects`] — sends,
//! then timers, then notes, then the decision, then the halt — is part of
//! the boundary's contract: the simulator's byte-identical sweep reports
//! depend on it, and the transport keeps the same order so a protocol
//! observes one discipline everywhere.

use std::fmt;

use crate::process::{Actor, Context, Effects, Payload, ProcessId, StagedSend, TimerTag};
use crate::time::{Duration, VirtualTime};

/// A boxed actor that can cross thread boundaries (the transport runtime
/// hosts each replica's actor on its own event-loop thread).
pub type SendBoxedActor<M, D> = Box<dyn Actor<Msg = M, Decision = D> + Send>;

/// A host that can run [`Actor`]s: delivery, timers, a clock, seeded
/// randomness, and sinks for the observable outcomes (notes, decisions,
/// halts).
///
/// Implementations decide *what the capabilities mean* — the simulator
/// queues deliveries behind seeded virtual-time delays, the TCP transport
/// writes length-prefixed frames to peer sockets — but the actor-visible
/// contract is identical, which is what lets one protocol artifact run
/// unmodified on both.
pub trait Runtime<M: Payload, D: Clone + fmt::Debug + PartialEq> {
    /// The current time at the hosted process.
    fn now(&self) -> VirtualTime;

    /// Total number of processes `n` in the system.
    fn process_count(&self) -> usize;

    /// One draw from the runtime's seeded pseudo-random stream.
    fn rng_draw(&mut self) -> u64;

    /// Hands one staged send (unicast or whole-group broadcast) to the
    /// transport on behalf of `from`.
    fn dispatch(&mut self, from: ProcessId, send: StagedSend<M>);

    /// Schedules `on_timer(tag)` at `at`, `delay` from now.
    fn schedule(&mut self, at: ProcessId, delay: Duration, tag: TimerTag);

    /// Records a trace annotation emitted by `at`.
    fn emit_note(&mut self, at: ProcessId, text: String);

    /// Records the decision of `at` (first decision wins; a later
    /// different value is a contradiction the host may flag).
    fn record_decision(&mut self, at: ProcessId, value: D);

    /// Records that `at` halted: the host must deliver no further
    /// callbacks to it.
    fn record_halt(&mut self, at: ProcessId);

    /// Applies one callback's staged effects in the canonical order:
    /// sends, timers, notes, decision, halt.
    ///
    /// Hosts must not override this — the order is the cross-runtime
    /// contract (and, in the simulator, part of the byte-identity of
    /// sweep reports).
    fn apply_effects(&mut self, at: ProcessId, fx: Effects<M, D>) {
        for send in fx.sends {
            self.dispatch(at, send);
        }
        for (delay, tag) in fx.timers {
            self.schedule(at, delay, tag);
        }
        for note in fx.notes {
            self.emit_note(at, note);
        }
        if let Some(value) = fx.decision {
            self.record_decision(at, value);
        }
        if fx.halted {
            self.record_halt(at);
        }
    }
}

/// Runs one actor callback under `rt`'s clock and randomness, then applies
/// the staged effects.
///
/// This is the single choke point both runtimes call for every `on_start`,
/// `on_message` and `on_timer`: the callback sees a [`Context`] stamped
/// with [`Runtime::now`] and backed by [`Runtime::rng_draw`], and its
/// effects are applied by [`Runtime::apply_effects`] after it returns —
/// never concurrently with another callback of the same actor.
pub fn step<M, D, R, F>(rt: &mut R, me: ProcessId, call: F)
where
    M: Payload,
    D: Clone + fmt::Debug + PartialEq,
    R: Runtime<M, D>,
    F: FnOnce(&mut Context<'_, M, D>),
{
    let now = rt.now();
    let n = rt.process_count();
    let fx = {
        let mut draw = || rt.rng_draw();
        let mut ctx: Context<'_, M, D> = Context::new(now, me, n, &mut draw);
        call(&mut ctx);
        ctx.into_effects()
    };
    rt.apply_effects(me, fx);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A runtime that records every hook invocation in order.
    struct Recorder {
        calls: Vec<String>,
        draws: u64,
    }

    impl Runtime<u64, u64> for Recorder {
        fn now(&self) -> VirtualTime {
            VirtualTime::at(7)
        }
        fn process_count(&self) -> usize {
            3
        }
        fn rng_draw(&mut self) -> u64 {
            self.draws += 1;
            self.draws
        }
        fn dispatch(&mut self, from: ProcessId, send: StagedSend<u64>) {
            self.calls.push(format!("send {from} {send:?}"));
        }
        fn schedule(&mut self, at: ProcessId, delay: Duration, tag: TimerTag) {
            self.calls.push(format!("timer {at} {delay:?} {tag}"));
        }
        fn emit_note(&mut self, at: ProcessId, text: String) {
            self.calls.push(format!("note {at} {text}"));
        }
        fn record_decision(&mut self, at: ProcessId, value: u64) {
            self.calls.push(format!("decide {at} {value}"));
        }
        fn record_halt(&mut self, at: ProcessId) {
            self.calls.push(format!("halt {at}"));
        }
    }

    #[test]
    fn effects_apply_in_canonical_order() {
        let mut rt = Recorder {
            calls: Vec::new(),
            draws: 0,
        };
        step(&mut rt, ProcessId(1), |ctx| {
            // Stage in scrambled order: application order must not follow
            // staging order across kinds.
            ctx.halt();
            ctx.decide(9);
            ctx.note("n1");
            ctx.set_timer(Duration::of(5), 2);
            ctx.send(ProcessId(0), 11);
            ctx.broadcast(22);
        });
        assert_eq!(
            rt.calls,
            vec![
                "send p1 To(ProcessId(0), 11)",
                "send p1 ToAll(22)",
                "timer p1 Δ5 2",
                "note p1 n1",
                "decide p1 9",
                "halt p1",
            ]
        );
    }

    #[test]
    fn context_is_stamped_with_runtime_clock_and_rng() {
        let mut rt = Recorder {
            calls: Vec::new(),
            draws: 0,
        };
        step(&mut rt, ProcessId(2), |ctx| {
            assert_eq!(ctx.now(), VirtualTime::at(7));
            assert_eq!(ctx.me(), ProcessId(2));
            assert_eq!(ctx.process_count(), 3);
            assert_eq!(ctx.random_u64(), 1);
            assert_eq!(ctx.random_u64(), 2);
        });
        assert_eq!(rt.draws, 2);
        assert!(rt.calls.is_empty());
    }

    #[test]
    fn quiet_callbacks_apply_nothing() {
        let mut rt = Recorder {
            calls: Vec::new(),
            draws: 0,
        };
        step(&mut rt, ProcessId(0), |_ctx| {});
        assert!(rt.calls.is_empty());
    }
}
