//! Virtual time: the simulator's logical clock.
//!
//! Time is a dimensionless `u64` tick count. Nothing in the reproduction
//! depends on real-world units; what matters is the *ordering* of events and
//! the ratios between delays (message latency vs. failure-detector timeout).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time.
///
/// # Example
///
/// ```
/// use ftm_runtime::time::{Duration, VirtualTime};
/// let t = VirtualTime::ZERO + Duration::of(5);
/// assert_eq!(t.ticks(), 5);
/// assert_eq!(t - VirtualTime::ZERO, Duration::of(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl VirtualTime {
    /// The origin of time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The largest representable instant (used as "never").
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates an instant at `ticks`.
    pub const fn at(ticks: u64) -> Self {
        VirtualTime(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: VirtualTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span of `ticks`.
    pub const fn of(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating multiplication by a scalar.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Integer division by a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[allow(clippy::should_implement_trait)] // scalar division, not Div<Duration>
    pub fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl Add<Duration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, d: Duration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Duration> for VirtualTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = Duration;
    fn sub(self, other: VirtualTime) -> Duration {
        self.since(other)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0.saturating_add(d.0))
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = VirtualTime::at(10) + Duration::of(5);
        assert_eq!(t, VirtualTime::at(15));
        assert_eq!(t - VirtualTime::at(10), Duration::of(5));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(VirtualTime::at(3).since(VirtualTime::at(9)), Duration::ZERO);
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(VirtualTime::MAX + Duration::of(1), VirtualTime::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(VirtualTime::at(1) < VirtualTime::at(2));
        assert!(Duration::of(3) > Duration::ZERO);
    }

    #[test]
    fn scalar_helpers() {
        assert_eq!(Duration::of(6).saturating_mul(2), Duration::of(12));
        assert_eq!(Duration::of(7).div(2), Duration::of(3));
    }
}
