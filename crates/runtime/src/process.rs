//! Process identities, the [`Actor`] protocol trait, and the effect
//! [`Context`] handed to every callback.

use std::fmt;

use crate::time::{Duration, VirtualTime};

/// Identity of a simulated process (`p_1 … p_n` in the paper, 0-based here).
///
/// # Example
///
/// ```
/// use ftm_runtime::ProcessId;
/// let p = ProcessId(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The process's position in `0..n`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// An application-chosen label distinguishing a process's timers.
pub type TimerTag = u64;

/// Per-module-layer decomposition of one message's wire bytes.
///
/// The transformation stack wraps protocol messages in signatures and
/// certificates; sweep reports attribute each message's bytes to the layer
/// that added them. Plain payloads are all protocol; `ftm-certify`'s
/// envelope overrides [`Payload::layer_split`] to separate the three parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerSplit {
    /// Bytes added by the signature layer (the RSA signature itself).
    pub signature_bytes: usize,
    /// Bytes added by the certification layer (the carried certificate).
    pub certificate_bytes: usize,
    /// Bytes of the protocol-level message core.
    pub protocol_bytes: usize,
}

impl LayerSplit {
    /// A split attributing everything to the protocol layer (the default
    /// for unwrapped payloads).
    pub fn protocol_only(bytes: usize) -> Self {
        LayerSplit {
            protocol_bytes: bytes,
            ..LayerSplit::default()
        }
    }

    /// Total bytes across all layers.
    pub fn total(&self) -> usize {
        self.signature_bytes + self.certificate_bytes + self.protocol_bytes
    }
}

/// Message payloads carried by the simulated network.
///
/// `size_bytes` feeds the byte-accounting metrics (experiment E6 reports
/// bytes/round for the crash vs. transformed protocols). The blanket rule is
/// implemented for common test payloads; protocol crates implement it for
/// their wire messages.
pub trait Payload: Clone + fmt::Debug {
    /// Approximate on-the-wire size of this message in bytes.
    fn size_bytes(&self) -> usize;

    /// Attribution of [`size_bytes`](Payload::size_bytes) to the module
    /// layers that produced them. The default charges everything to the
    /// protocol layer; wrapped message types (signed envelopes) override
    /// this so sweeps can report the per-layer price of the transformation.
    ///
    /// Implementations must keep `layer_split().total() == size_bytes()`.
    fn layer_split(&self) -> LayerSplit {
        LayerSplit::protocol_only(self.size_bytes())
    }

    /// Short human-readable label used in run traces (defaults to the
    /// `Debug` rendering, truncated). Protocol messages override this with
    /// something like `CURRENT(r=3)`.
    fn label(&self) -> String {
        let mut s = format!("{self:?}");
        if s.len() > 48 {
            s.truncate(45);
            s.push_str("...");
        }
        s
    }
}

impl Payload for &'static str {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

impl Payload for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl Payload for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

/// A protocol running at one process.
///
/// Callbacks are invoked by a [`Runtime`](crate::Runtime) driver (the
/// simulator's runner or the TCP node loop); all effects
/// (sending, timers, deciding, halting) go through the [`Context`]. An actor
/// must not assume anything about global time or other processes beyond what
/// arrives in messages — exactly the asynchronous model of the paper.
pub trait Actor {
    /// Wire message type exchanged by this protocol.
    type Msg: Payload;
    /// Value this protocol decides (recorded in the run report).
    type Decision: Clone + fmt::Debug + PartialEq;

    /// Invoked once at simulation start (time zero), before any delivery.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Decision>);

    /// Invoked for each delivered message.
    ///
    /// The message is borrowed: a broadcast payload is shared (one
    /// allocation for all `n` receivers), so an actor that needs to keep
    /// the message — or a part of it — clones exactly what it stores.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Decision>,
    );

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    ///
    /// The default implementation ignores timers.
    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, Self::Msg, Self::Decision>) {
        let _ = (tag, ctx);
    }
}

impl<A: Actor + ?Sized> Actor for Box<A> {
    type Msg = A::Msg;
    type Decision = A::Decision;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Decision>) {
        (**self).on_start(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Decision>,
    ) {
        (**self).on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, Self::Msg, Self::Decision>) {
        (**self).on_timer(tag, ctx);
    }
}

/// One staged outgoing message: a unicast or a whole-group broadcast.
///
/// [`Context::broadcast`] stages a single [`StagedSend::ToAll`] entry
/// instead of `n` per-target clones; the runner expands it at effect
/// application, sharing one reference-counted payload across all `n`
/// deliveries. With every process broadcasting every round, that removes
/// the ~n² payload clones per round the flat representation paid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StagedSend<M> {
    /// To one process.
    To(ProcessId, M),
    /// To every process including the sender — the paper's `send … to Π`.
    ToAll(M),
}

/// Effects an actor may stage during one callback.
///
/// The runner applies staged effects after the callback returns; fault
/// injection wrappers may inspect and rewrite staged sends in between (that
/// is how Byzantine message corruption is modeled without making the network
/// dishonest).
pub struct Context<'a, M, D> {
    now: VirtualTime,
    me: ProcessId,
    n: usize,
    rng_draw: &'a mut dyn FnMut() -> u64,
    staged_sends: Vec<StagedSend<M>>,
    staged_timers: Vec<(Duration, TimerTag)>,
    staged_notes: Vec<String>,
    decision: Option<D>,
    halted: bool,
}

impl<M: fmt::Debug, D: fmt::Debug> fmt::Debug for Context<'_, M, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("me", &self.me)
            .field("n", &self.n)
            .field("staged_sends", &self.staged_sends)
            .field("staged_timers", &self.staged_timers)
            .field("decision", &self.decision)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

/// Effects staged by one callback, as consumed by the runner.
#[derive(Debug)]
pub struct Effects<M, D> {
    /// Messages to hand to the network, in staging order (broadcasts as
    /// single [`StagedSend::ToAll`] entries).
    pub sends: Vec<StagedSend<M>>,
    /// Timers to schedule, as `(delay, tag)` pairs.
    pub timers: Vec<(Duration, TimerTag)>,
    /// Trace annotations emitted by the actor.
    pub notes: Vec<String>,
    /// Decision recorded during the callback, if any.
    pub decision: Option<D>,
    /// Whether the actor halted.
    pub halted: bool,
}

impl<'a, M: Payload, D: Clone + fmt::Debug + PartialEq> Context<'a, M, D> {
    /// Creates a context for one callback. Used by the runner and by tests
    /// that drive actors directly.
    pub fn new(
        now: VirtualTime,
        me: ProcessId,
        n: usize,
        rng_draw: &'a mut dyn FnMut() -> u64,
    ) -> Self {
        Context {
            now,
            me,
            n,
            rng_draw,
            staged_sends: Vec::new(),
            staged_timers: Vec::new(),
            staged_notes: Vec::new(),
            decision: None,
            halted: false,
        }
    }

    /// Current virtual time at this process.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// This process's identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Total number of processes `n`.
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Iterates over all process identities `p_0 … p_{n-1}`.
    pub fn all_processes(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.n as u32).map(ProcessId)
    }

    /// Stages a message to `to` (self-sends are delivered like any other).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.staged_sends.push(StagedSend::To(to, msg));
    }

    /// Stages `msg` to every process **including the sender** — the paper's
    /// `send … to Π`. One staged entry, one payload: the runner shares it
    /// across all `n` deliveries.
    pub fn broadcast(&mut self, msg: M) {
        self.staged_sends.push(StagedSend::ToAll(msg));
    }

    /// Schedules `on_timer(tag)` to fire `delay` from now.
    pub fn set_timer(&mut self, delay: Duration, tag: TimerTag) {
        self.staged_timers.push((delay, tag));
    }

    /// Records the decision value. The first decision wins; the runner
    /// flags any later, *different* decision as a local contradiction.
    pub fn decide(&mut self, value: D) {
        if self.decision.is_none() {
            self.decision = Some(value);
        }
    }

    /// Stops this process: no further callbacks will run.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Draws a deterministic pseudo-random `u64` from the run's seed stream.
    ///
    /// Provided for protocols that need local randomness (none of the
    /// paper's protocols do; fault injectors use it to vary attacks).
    pub fn random_u64(&mut self) -> u64 {
        (self.rng_draw)()
    }

    /// Takes the staged sends, flattened to per-target `(to, msg)` pairs
    /// (each broadcast expands to `n` clones, targets `p_0 … p_{n-1}` at
    /// its staged position).
    ///
    /// Intended for fault-injection wrappers (`ftm-faults`), which corrupt,
    /// drop or duplicate a wrapped actor's output *before* it reaches the
    /// honest network and need per-copy access; pair with
    /// [`restore_staged_sends`](Context::restore_staged_sends). Honest runs
    /// never call this, so their broadcasts stay shared all the way to
    /// delivery.
    pub fn take_staged_sends(&mut self) -> Vec<(ProcessId, M)> {
        let staged = std::mem::take(&mut self.staged_sends);
        let mut flat = Vec::with_capacity(staged.len());
        for s in staged {
            match s {
                StagedSend::To(to, msg) => flat.push((to, msg)),
                StagedSend::ToAll(msg) => {
                    for p in 0..self.n as u32 {
                        flat.push((ProcessId(p), msg.clone()));
                    }
                }
            }
        }
        flat
    }

    /// Puts back a (possibly rewritten) flat send list obtained from
    /// [`take_staged_sends`](Context::take_staged_sends), replacing
    /// whatever is currently staged.
    pub fn restore_staged_sends(&mut self, flat: Vec<(ProcessId, M)>) {
        self.staged_sends = flat
            .into_iter()
            .map(|(to, msg)| StagedSend::To(to, msg))
            .collect();
    }

    /// Emits a free-form trace annotation (`key=value` style by convention).
    ///
    /// Notes land in the run's trace (simulator) or note log (transport);
    /// experiment E4 measures
    /// detection latency from notes like `detected=p3 class=duplication`.
    pub fn note(&mut self, text: impl Into<String>) {
        self.staged_notes.push(text.into());
    }

    /// Consumes the context, returning its staged effects.
    pub fn into_effects(self) -> Effects<M, D> {
        Effects {
            sends: self.staged_sends,
            timers: self.staged_timers,
            notes: self.staged_notes,
            decision: self.decision,
            halted: self.halted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(draw: &'a mut dyn FnMut() -> u64) -> Context<'a, &'static str, u64> {
        Context::new(VirtualTime::at(5), ProcessId(1), 3, draw)
    }

    #[test]
    fn broadcast_stages_one_shared_entry() {
        let mut draw = || 0u64;
        let mut c = ctx(&mut draw);
        c.broadcast("m");
        assert_eq!(c.into_effects().sends, vec![StagedSend::ToAll("m")]);
    }

    #[test]
    fn taking_staged_sends_expands_broadcasts_in_order() {
        let mut draw = || 0u64;
        let mut c = ctx(&mut draw);
        c.send(ProcessId(2), "pre");
        c.broadcast("m");
        c.send(ProcessId(0), "post");
        let flat = c.take_staged_sends();
        let targets: Vec<(u32, &str)> = flat.iter().map(|(p, m)| (p.0, *m)).collect();
        assert_eq!(
            targets,
            vec![(2, "pre"), (0, "m"), (1, "m"), (2, "m"), (0, "post")]
        );
        c.restore_staged_sends(flat);
        assert_eq!(c.into_effects().sends.len(), 5);
    }

    #[test]
    fn first_decision_wins() {
        let mut draw = || 0u64;
        let mut c = ctx(&mut draw);
        c.decide(10);
        c.decide(99);
        assert_eq!(c.into_effects().decision, Some(10));
    }

    #[test]
    fn staged_sends_are_rewritable() {
        let mut draw = || 0u64;
        let mut c = ctx(&mut draw);
        c.send(ProcessId(0), "honest");
        let mut flat = c.take_staged_sends();
        flat[0].1 = "corrupted";
        c.restore_staged_sends(flat);
        assert_eq!(
            c.into_effects().sends[0],
            StagedSend::To(ProcessId(0), "corrupted")
        );
    }

    #[test]
    fn timers_notes_and_halt_are_staged() {
        let mut draw = || 7u64;
        let mut c = ctx(&mut draw);
        c.set_timer(Duration::of(3), 42);
        assert_eq!(c.random_u64(), 7);
        c.note("suspect=p2");
        c.halt();
        let fx = c.into_effects();
        assert_eq!(fx.timers, vec![(Duration::of(3), 42)]);
        assert_eq!(fx.notes, vec!["suspect=p2".to_string()]);
        assert!(fx.halted);
    }

    #[test]
    fn default_label_truncates_long_debug() {
        #[derive(Clone, Debug)]
        struct Big([u8; 40]);
        impl Payload for Big {
            fn size_bytes(&self) -> usize {
                self.0.len()
            }
        }
        let label = Big([1; 40]).label();
        assert!(label.len() <= 48);
        assert!(label.ends_with("..."));
    }

    #[test]
    fn process_id_display_and_index() {
        assert_eq!(ProcessId(4).to_string(), "p4");
        assert_eq!(ProcessId::from(3u32).index(), 3);
    }

    #[test]
    fn default_layer_split_is_all_protocol() {
        let split = 7u64.layer_split();
        assert_eq!(split, LayerSplit::protocol_only(8));
        assert_eq!(split.total(), 7u64.size_bytes());
        assert_eq!(split.signature_bytes, 0);
        assert_eq!(split.certificate_bytes, 0);
    }
}
