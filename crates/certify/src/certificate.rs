//! Certificates: sets of signed message cores.
//!
//! A certificate is the redundant information appended to a message that
//! lets the receiver audit the sender's claimed history (paper §3). The
//! protocol maintains three certificate variables per process —
//! `est_cert` (INIT items witnessing the estimate vector), `next_cert`
//! (NEXT items witnessing round progression) and `current_cert` (CURRENT
//! items witnessing a pending decision) — all of which are just
//! [`Certificate`] values with different well-formedness rules (enforced by
//! [`crate::analyzer::CertChecker`]).

use std::collections::BTreeSet;
use std::fmt;

use ftm_crypto::sha256::Digest;
use ftm_sim::ProcessId;

use crate::message::{MessageKind, Round, Value, ValueVector};
use crate::signed::SignedCore;

/// An insertion-ordered, deduplicated set of signed cores.
///
/// # Example
///
/// ```
/// use ftm_certify::{Certificate, Core, MessageCore, SignedCore};
/// use ftm_crypto::keydir::KeyDirectory;
/// use ftm_sim::ProcessId;
///
/// let mut rng = ftm_crypto::rng_from_seed(1);
/// let (_dir, keys) = KeyDirectory::generate(&mut rng, 2, 128);
/// let mut cert = Certificate::new();
/// let item = SignedCore::sign(MessageCore::new(ProcessId(0), Core::Init { value: 3 }), &keys[0]);
/// cert.insert(item.clone());
/// cert.insert(item); // duplicate: ignored
/// assert_eq!(cert.len(), 1);
/// ```
#[derive(Clone, Default, PartialEq)]
pub struct Certificate {
    items: Vec<SignedCore>,
    seen: BTreeSet<Digest>,
}

impl Certificate {
    /// The empty certificate (e.g. attached to INIT messages).
    pub fn new() -> Self {
        Certificate::default()
    }

    /// Builds a certificate from items (deduplicating).
    pub fn from_items<I: IntoIterator<Item = SignedCore>>(items: I) -> Self {
        let mut c = Certificate::new();
        for item in items {
            c.insert(item);
        }
        c
    }

    /// Inserts one signed core; returns `true` if it was new.
    pub fn insert(&mut self, item: SignedCore) -> bool {
        if self.seen.insert(item.digest()) {
            self.items.push(item);
            true
        } else {
            false
        }
    }

    /// Set-union with another certificate (used when a send is justified by
    /// several certificate variables, e.g. `est_cert ∪ next_cert`).
    pub fn union(&self, other: &Certificate) -> Certificate {
        let mut out = self.clone();
        for item in &other.items {
            out.insert(item.clone());
        }
        out
    }

    /// Number of distinct signed cores.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the certificate holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates all items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SignedCore> {
        self.items.iter()
    }

    /// Iterates items of a given kind and round.
    pub fn iter_kind_round(
        &self,
        kind: MessageKind,
        round: Round,
    ) -> impl Iterator<Item = &SignedCore> {
        self.items
            .iter()
            .filter(move |i| i.kind() == kind && i.round() == round)
    }

    /// Distinct senders of items of a given kind and round.
    pub fn senders_of(&self, kind: MessageKind, round: Round) -> BTreeSet<ProcessId> {
        self.iter_kind_round(kind, round)
            .map(super::signed::SignedCore::sender)
            .collect()
    }

    /// Count of distinct senders of `(kind, round)` items — the
    /// cardinality used in the paper's majority tests (`|current_cert|`,
    /// `|next_cert|`).
    pub fn count(&self, kind: MessageKind, round: Round) -> usize {
        self.senders_of(kind, round).len()
    }

    /// All INIT items as `(sender, value)` pairs, first occurrence per
    /// sender (the est-portion of a certificate).
    pub fn init_entries(&self) -> Vec<(ProcessId, Value)> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for item in &self.items {
            if let crate::message::Core::Init { value } = &item.core().core {
                if seen.insert(item.sender()) {
                    out.push((item.sender(), *value));
                }
            }
        }
        out
    }

    /// The INIT-only sub-certificate (`est_cert` extracted from a received
    /// certificate — what a process adopts along with an estimate vector).
    pub fn init_portion(&self) -> Certificate {
        Certificate::from_items(
            self.items
                .iter()
                .filter(|i| i.kind() == MessageKind::Init)
                .cloned(),
        )
    }

    /// Finds an item of `kind` from `sender` for `round` carrying exactly
    /// `vector` — the generic "the named process itself signed this
    /// statement" lookup behind relayed-CURRENT (HR) and ACK-echo /
    /// timestamp-backing (CT) validation.
    pub fn find_vouching(
        &self,
        kind: MessageKind,
        sender: ProcessId,
        round: Round,
        vector: &ValueVector,
    ) -> Option<&SignedCore> {
        self.iter_kind_round(kind, round)
            .find(|i| i.sender() == sender && i.core().core.vector() == Some(vector))
    }

    /// Finds a CURRENT item from `sender` for `round` carrying exactly
    /// `vector` (used to validate relayed CURRENT messages).
    pub fn find_current(
        &self,
        sender: ProcessId,
        round: Round,
        vector: &ValueVector,
    ) -> Option<&SignedCore> {
        self.find_vouching(MessageKind::Current, sender, round, vector)
    }

    /// Distinct senders that contributed an ACK or NACK item for `round`
    /// — the CT round-progression vote set (the CT analogue of
    /// [`Certificate::rec_from`]).
    pub fn ct_votes(&self, round: Round) -> BTreeSet<ProcessId> {
        let mut s = self.senders_of(MessageKind::Ack, round);
        s.extend(self.senders_of(MessageKind::Nack, round));
        s
    }

    /// Distinct senders that contributed a CURRENT or NEXT item for
    /// `round` — the paper's `REC_FROM_i` expressed over certificates.
    pub fn rec_from(&self, round: Round) -> BTreeSet<ProcessId> {
        let mut s = self.senders_of(MessageKind::Current, round);
        s.extend(self.senders_of(MessageKind::Next, round));
        s
    }

    /// Approximate wire size: sum of item sizes.
    pub fn size_bytes(&self) -> usize {
        self.items
            .iter()
            .map(super::signed::SignedCore::size_bytes)
            .sum()
    }
}

impl fmt::Debug for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(&self.items).finish()
    }
}

impl FromIterator<SignedCore> for Certificate {
    fn from_iter<I: IntoIterator<Item = SignedCore>>(iter: I) -> Self {
        Certificate::from_items(iter)
    }
}

impl Extend<SignedCore> for Certificate {
    fn extend<I: IntoIterator<Item = SignedCore>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Core, MessageCore};
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;

    fn keys() -> Vec<KeyPair> {
        let mut rng = ftm_crypto::rng_from_seed(31);
        KeyDirectory::generate(&mut rng, 4, 128).1
    }

    fn signed(sender: u32, core: Core, keys: &[KeyPair]) -> SignedCore {
        SignedCore::sign(
            MessageCore::new(ProcessId(sender), core),
            &keys[sender as usize],
        )
    }

    #[test]
    fn dedup_on_insert_and_union() {
        let ks = keys();
        let a = signed(0, Core::Next { round: 1 }, &ks);
        let b = signed(1, Core::Next { round: 1 }, &ks);
        let mut c1 = Certificate::from_items([a.clone(), b.clone()]);
        assert!(!c1.insert(a.clone()));
        let c2 = Certificate::from_items([a, b]);
        assert_eq!(c1.union(&c2).len(), 2);
    }

    #[test]
    fn count_is_by_distinct_sender() {
        let ks = keys();
        // p0 signs two different NEXT statements for the same round — the
        // count must still be 1 (it is one voter).
        let cert = Certificate::from_items([
            signed(0, Core::Next { round: 2 }, &ks),
            signed(1, Core::Next { round: 2 }, &ks),
            signed(0, Core::Next { round: 2 }, &ks), // exact dup, removed
            signed(1, Core::Next { round: 3 }, &ks), // other round
        ]);
        assert_eq!(cert.count(MessageKind::Next, 2), 2);
        assert_eq!(cert.count(MessageKind::Next, 3), 1);
        assert_eq!(cert.count(MessageKind::Current, 2), 0);
    }

    #[test]
    fn init_entries_first_occurrence_per_sender() {
        let ks = keys();
        let cert = Certificate::from_items([
            signed(0, Core::Init { value: 5 }, &ks),
            signed(0, Core::Init { value: 6 }, &ks), // equivocation: second kept out
            signed(2, Core::Init { value: 7 }, &ks),
        ]);
        assert_eq!(
            cert.init_entries(),
            vec![(ProcessId(0), 5), (ProcessId(2), 7)]
        );
        assert_eq!(cert.init_portion().len(), 3); // portion keeps raw items
    }

    #[test]
    fn find_current_matches_vector_exactly() {
        let ks = keys();
        let v1 = ValueVector::from_entries(vec![Some(1), None]);
        let v2 = ValueVector::from_entries(vec![Some(2), None]);
        let cert = Certificate::from_items([signed(
            1,
            Core::Current {
                round: 3,
                vector: v1.clone(),
            },
            &ks,
        )]);
        assert!(cert.find_current(ProcessId(1), 3, &v1).is_some());
        assert!(cert.find_current(ProcessId(1), 3, &v2).is_none());
        assert!(cert.find_current(ProcessId(0), 3, &v1).is_none());
    }

    #[test]
    fn rec_from_unions_current_and_next_senders() {
        let ks = keys();
        let v = ValueVector::empty(2);
        let cert = Certificate::from_items([
            signed(
                0,
                Core::Current {
                    round: 1,
                    vector: v,
                },
                &ks,
            ),
            signed(1, Core::Next { round: 1 }, &ks),
            signed(2, Core::Next { round: 2 }, &ks),
        ]);
        let rf = cert.rec_from(1);
        assert_eq!(rf.len(), 2);
        assert!(rf.contains(&ProcessId(0)) && rf.contains(&ProcessId(1)));
    }

    #[test]
    fn collect_and_extend() {
        let ks = keys();
        let mut cert: Certificate = [signed(0, Core::Next { round: 1 }, &ks)]
            .into_iter()
            .collect();
        cert.extend([signed(1, Core::Next { round: 1 }, &ks)]);
        assert_eq!(cert.len(), 2);
        assert!(cert.size_bytes() > 0);
    }
}
