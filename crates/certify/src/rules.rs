//! Introspection over the certification rules the analyzer implements.
//!
//! The paper's §5 discipline is that every *conditional send* of the
//! protocol has a certification rule letting receivers re-derive the
//! enabling condition from the attached certificate. [`CertChecker`]
//! implements those rules as code; this module names them as *data*, so
//! static tooling (`ftm-verify`) can cross-check the rule set against the
//! protocol description in `ftm_core::spec` — if a send condition is added
//! without a rule (or a rule goes dead), the coverage diff fails instead
//! of a simulation sweep having to stumble over the hole.
//!
//! The list is maintained *here*, next to the analyzer, and deliberately
//! not generated from the spec: the whole point is that two independently
//! maintained artifacts must agree. The rule ids double as the
//! *obligation table* of the crash→Byzantine transformation
//! (`ftm_core::spec::transform`): the mechanical rewrite routes each crash
//! send through the rule named here, and `ftm-verify` checks both the
//! local bijection (coverage) and the global evidence chains the rules
//! induce (certificate lineage).

use crate::analyzer::CertChecker;
use crate::message::{MessageKind, ProtocolId};

/// One certification rule of the analyzer, as checkable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable identifier, matched against
    /// `ftm_core::spec::ConditionalSend::route`.
    pub id: &'static str,
    /// The message kind whose certificates the rule audits.
    pub kind: MessageKind,
    /// What the rule re-derives from the certificate.
    pub checks: &'static str,
}

/// Every certification rule [`CertChecker`] implements for the
/// Hurfin–Raynal instance, in the order the analyzer's dispatch tries
/// them. Shorthand for
/// [`certification_rules_for`]`(ProtocolId::HurfinRaynal)`.
///
/// # Example
///
/// ```
/// use ftm_certify::rules::certification_rules;
/// use ftm_certify::MessageKind;
/// let next_rules: Vec<_> = certification_rules()
///     .iter()
///     .filter(|r| r.kind == MessageKind::Next)
///     .collect();
/// assert_eq!(next_rules.len(), 3); // suspicion, change-mind, end-of-round
/// ```
pub fn certification_rules() -> &'static [RuleInfo] {
    certification_rules_for(ProtocolId::HurfinRaynal)
}

/// The certification-rule table of the given transformed protocol.
///
/// Each table is maintained by hand next to the analyzer code that
/// enforces it; `ftm-verify` diffs it against the matching
/// `ProtocolSpec`'s conditional-send table per protocol.
pub fn certification_rules_for(protocol: ProtocolId) -> &'static [RuleInfo] {
    match protocol {
        ProtocolId::HurfinRaynal => HR_RULES,
        ProtocolId::ChandraToueg => CT_RULES,
    }
}

const HR_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "init-empty",
        kind: MessageKind::Init,
        checks: "INIT carries an empty certificate (initial values are \
                     vouched by vector certification, not certificates)",
    },
    RuleInfo {
        id: "current-coordinator",
        kind: MessageKind::Current,
        checks: "INIT-portion witnesses the vector (≥ n−F signed INITs) \
                     and NEXT-portion witnesses the round (≥ n−F signed \
                     NEXT(r−1), or nothing for r = 1)",
    },
    RuleInfo {
        id: "current-relay",
        kind: MessageKind::Current,
        checks: "certificate contains the round coordinator's own signed \
                     CURRENT(r, vect) plus the INIT backing of vect",
    },
    RuleInfo {
        id: "next-suspicion",
        kind: MessageKind::Next,
        checks: "no CURRENT adopted (suspicion is local and unverifiable; \
                     structure only: absence of a CURRENT quorum claim)",
    },
    RuleInfo {
        id: "next-change-mind",
        kind: MessageKind::Next,
        checks: "≥ 1 CURRENT seen and a quorum of round-r votes, but \
                     neither a CURRENT quorum nor a NEXT quorum",
    },
    RuleInfo {
        id: "next-end-of-round",
        kind: MessageKind::Next,
        checks: "a full quorum of signed NEXT(r)",
    },
    RuleInfo {
        id: "decide-current-quorum",
        kind: MessageKind::Decide,
        checks: "≥ n−F distinct signed CURRENT(r, vect) matching the \
                     decided vector",
    },
];

const CT_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "init-empty",
        kind: MessageKind::Init,
        checks: "INIT carries an empty certificate (initial values are \
                 vouched by vector certification, not certificates)",
    },
    RuleInfo {
        id: "estimate-roundstart",
        kind: MessageKind::Estimate,
        checks: "INIT-portion witnesses the vector; a claimed adoption \
                 timestamp ts > 0 is backed by coordinator(ts)'s signed \
                 PROPOSE(ts, vect); round entry r > 1 is backed by ≥ n−F \
                 signed ACK/NACK(r−1)",
    },
    RuleInfo {
        id: "propose-coordinator",
        kind: MessageKind::Propose,
        checks: "sender is coordinator(r); ≥ n−F signed ESTIMATE(r) and \
                 the proposed vector equals the vector of a maximum-ts \
                 estimate in the certificate, with its INIT backing",
    },
    RuleInfo {
        id: "ack-echo",
        kind: MessageKind::Ack,
        checks: "certificate contains the round coordinator's own signed \
                 PROPOSE(r, vect) carrying exactly the echoed vector",
    },
    RuleInfo {
        id: "nack-suspicion",
        kind: MessageKind::Nack,
        checks: "coordinator suspicion is local and unverifiable; \
                 structure only: no quorum claim is made",
    },
    RuleInfo {
        id: "decide-ack-quorum",
        kind: MessageKind::Decide,
        checks: "≥ n−F distinct signed ACK(r, vect) matching the decided \
                 vector",
    },
];

/// The checkpoint-compaction rule, shared by both protocols: the message
/// kind that seals a decided log slot is audited identically under HR and
/// CT, differing only in which decide-vote kind backs the quorum (CURRENT
/// vs ACK — see [`crate::checkpoint::decide_vote_kind`]).
pub const CHECKPOINT_RULE: RuleInfo = RuleInfo {
    id: "checkpoint-quorum",
    kind: MessageKind::Checkpoint,
    checks: "≥ n−F distinct signed decide-votes (CURRENT under HR, ACK \
             under CT) over one round and one vector, whose vector hashes \
             to the claimed checkpoint digest",
};

/// The rule table of `protocol` extended with the checkpoint-compaction
/// rule — the table enforced over replicated-log runs with certificate
/// compaction enabled. The base tables stay untouched so the transform's
/// coverage bijection over single-shot consensus is unaffected.
pub fn certification_rules_with_checkpoint(protocol: ProtocolId) -> Vec<RuleInfo> {
    let mut rules = certification_rules_for(protocol).to_vec();
    rules.push(CHECKPOINT_RULE);
    rules
}

/// The rules auditing messages of `kind` (HR table).
pub fn rules_for_kind(kind: MessageKind) -> Vec<&'static RuleInfo> {
    certification_rules()
        .iter()
        .filter(|r| r.kind == kind)
        .collect()
}

impl CertChecker {
    /// The rule table this analyzer enforces (see
    /// [`certification_rules_for`]): the table of the protocol the checker
    /// was constructed for.
    pub fn rules(&self) -> &'static [RuleInfo] {
        certification_rules_for(self.protocol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique() {
        for protocol in ProtocolId::all() {
            let rules = certification_rules_for(protocol);
            let ids: std::collections::BTreeSet<&str> = rules.iter().map(|r| r.id).collect();
            assert_eq!(ids.len(), rules.len(), "{protocol}");
        }
    }

    #[test]
    fn ct_table_covers_its_wire_kinds() {
        let rules = certification_rules_for(ProtocolId::ChandraToueg);
        for kind in [
            MessageKind::Init,
            MessageKind::Estimate,
            MessageKind::Propose,
            MessageKind::Ack,
            MessageKind::Nack,
            MessageKind::Decide,
        ] {
            assert!(
                rules.iter().any(|r| r.kind == kind),
                "{kind} has no CT certification rule"
            );
        }
        assert_eq!(rules.len(), 6);
    }

    #[test]
    fn every_wire_kind_has_at_least_one_rule() {
        for kind in [
            MessageKind::Init,
            MessageKind::Current,
            MessageKind::Next,
            MessageKind::Decide,
        ] {
            assert!(
                !rules_for_kind(kind).is_empty(),
                "{kind} has no certification rule"
            );
        }
    }

    #[test]
    fn checkpoint_table_extends_without_disturbing_the_base() {
        for protocol in ProtocolId::all() {
            let base = certification_rules_for(protocol);
            let extended = certification_rules_with_checkpoint(protocol);
            assert_eq!(extended.len(), base.len() + 1, "{protocol}");
            assert_eq!(&extended[..base.len()], base, "{protocol}");
            assert_eq!(extended.last(), Some(&CHECKPOINT_RULE), "{protocol}");
            let ids: std::collections::BTreeSet<&str> = extended.iter().map(|r| r.id).collect();
            assert_eq!(ids.len(), extended.len(), "{protocol}");
        }
    }

    #[test]
    fn next_rules_mirror_the_three_triggers() {
        // One rule per `NextTrigger` variant: the analyzer's classification
        // and the rule table must not drift apart.
        assert_eq!(rules_for_kind(MessageKind::Next).len(), 3);
    }
}
