//! Batched envelope verification: amortizing signatures across a round.
//!
//! A round of the transformed protocol is a burst of envelopes whose
//! certificates overlap heavily — the same signed decide-vote appears in
//! every peer's quorum certificate, so a naive per-envelope sweep verifies
//! each RSA signature `O(n)` times. This module verifies a batch the way a
//! deployment's receive path would want to: collect the *distinct* signed
//! cores across the whole batch (envelope heads and certificate items),
//! verify each distinct core exactly once — fanned across the sweep
//! harness's work-stealing workers ([`ftm_sim::harness::parallel_map`]) —
//! and then assemble per-envelope verdicts from the shared
//! [`KeyDirectory`] verdict memo, which the priming pass has filled.
//!
//! # Determinism contract
//!
//! The returned verdicts are a pure function of `(dir, envelopes)`: each
//! verdict depends only on key material and signed bytes, never on which
//! worker verified what, so output is byte-identical across thread counts
//! (the same contract [`ftm_sim::harness::sweep`] keeps for reports).

use std::collections::BTreeSet;

use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::sha256::Digest;
use ftm_sim::harness::parallel_map;

use crate::error::CertifyError;
use crate::signed::{Envelope, SignedCore};

/// Verifies every signature in `envelopes` (heads and certificate items),
/// returning one verdict per envelope in input order.
///
/// An envelope's verdict is `Ok` only when its head signature *and* every
/// certificate item's signature verify; the first failing statement's
/// error is reported (head first, then certificate items in certificate
/// order — deterministic, since certificates iterate in canonical order).
///
/// Distinct `(signer, digest, signature)` triples are verified exactly
/// once for the whole batch, in parallel across `threads` work-stealing
/// workers; everything else is answered from the directory's verdict
/// memo. Thread count never changes a verdict.
pub fn verify_envelopes_batched(
    dir: &KeyDirectory,
    envelopes: &[Envelope],
    threads: usize,
) -> Vec<Result<(), CertifyError>> {
    // Collect the distinct signed statements across the batch. Dedup by
    // (signer, digest, signature-bytes): `SignedCore` equality is by
    // statement digest alone, but two different signatures over one
    // statement are different verification jobs.
    let mut seen: BTreeSet<(u32, Digest, Vec<u8>)> = BTreeSet::new();
    let mut distinct: Vec<&SignedCore> = Vec::new();
    for env in envelopes {
        for sc in std::iter::once(&env.signed).chain(env.cert.iter()) {
            if seen.insert((sc.sender().0, sc.digest(), sc.signature_bytes())) {
                distinct.push(sc);
            }
        }
    }

    // Priming pass: verify each distinct core once, in parallel. The
    // verdicts land in the directory's shared memo; the results here are
    // only used to keep the pass observable in tests.
    let _ = parallel_map(&distinct, threads, |_, sc| sc.verify(dir).is_ok());

    // Assembly pass: per-envelope verdicts, all answered from the memo.
    envelopes
        .iter()
        .map(|env| {
            env.signed.verify(dir)?;
            for item in env.cert.iter() {
                item.verify(dir)?;
            }
            Ok(())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::Certificate;
    use crate::message::{Core, MessageCore, ValueVector};
    use ftm_crypto::rsa::KeyPair;
    use ftm_sim::ProcessId;

    fn setup(n: usize) -> (KeyDirectory, Vec<KeyPair>) {
        let mut rng = ftm_crypto::rng_from_seed(31);
        KeyDirectory::generate(&mut rng, n, 128)
    }

    /// A round's worth of CURRENT envelopes whose certificates all carry
    /// the same signed INIT statements — the overlap the batch exploits.
    fn round_burst(keys: &[KeyPair]) -> Vec<Envelope> {
        let inits: Vec<SignedCore> = keys
            .iter()
            .enumerate()
            .map(|(i, kp)| {
                SignedCore::sign(
                    MessageCore::new(ProcessId(i as u32), Core::Init { value: i as u64 }),
                    kp,
                )
            })
            .collect();
        keys.iter()
            .enumerate()
            .map(|(i, kp)| {
                Envelope::make(
                    ProcessId(i as u32),
                    Core::Current {
                        round: 1,
                        vector: ValueVector::from_entries(vec![Some(1); keys.len()]),
                    },
                    Certificate::from_items(inits.clone()),
                    kp,
                )
            })
            .collect()
    }

    #[test]
    fn batch_verdicts_match_sequential_and_are_thread_independent() {
        let (dir, keys) = setup(4);
        let envs = round_burst(&keys);
        let sequential: Vec<bool> = envs
            .iter()
            .map(|e| e.signed.verify(&dir).is_ok() && e.cert.iter().all(|i| i.verify(&dir).is_ok()))
            .collect();
        for threads in [1, 2, 8] {
            // A fresh directory per thread count so each batch starts cold.
            let fresh = KeyDirectory::new((0..4).map(|i| keys[i].public().clone()).collect());
            let verdicts: Vec<bool> = verify_envelopes_batched(&fresh, &envs, threads)
                .iter()
                .map(Result::is_ok)
                .collect();
            assert_eq!(verdicts, sequential, "threads={threads}");
            assert!(verdicts.iter().all(|&ok| ok));
        }
    }

    #[test]
    fn batch_verifies_each_distinct_signature_exactly_once() {
        let (dir, keys) = setup(4);
        let envs = round_burst(&keys);
        // 4 envelope heads + 4 distinct INIT statements, though the INITs
        // appear 16 times across the four certificates.
        let verdicts = verify_envelopes_batched(&dir, &envs, 2);
        assert!(verdicts.iter().all(Result::is_ok));
        assert_eq!(
            dir.cache_misses(),
            8,
            "one RSA computation per distinct core"
        );
        // 4×(1 head + 4 items) = 20 assembly lookups, all memo hits.
        assert_eq!(dir.cache_hits(), 20);
    }

    #[test]
    fn a_forged_item_fails_only_the_envelopes_that_carry_it() {
        let (dir, keys) = setup(3);
        // p2's INIT is forged (signed by p0's key).
        let forged = SignedCore::sign(
            MessageCore::new(ProcessId(2), Core::Init { value: 7 }),
            &keys[0],
        );
        let clean = Envelope::make(
            ProcessId(0),
            Core::Init { value: 0 },
            Certificate::new(),
            &keys[0],
        );
        let tainted = Envelope::make(
            ProcessId(1),
            Core::Current {
                round: 1,
                vector: ValueVector::empty(3),
            },
            Certificate::from_items([forged]),
            &keys[1],
        );
        let verdicts = verify_envelopes_batched(&dir, &[clean, tainted], 2);
        assert!(verdicts[0].is_ok());
        let err = verdicts[1].as_ref().unwrap_err();
        assert_eq!(err.culprit, ProcessId(2), "blames the claimed signer");
    }

    #[test]
    fn empty_batch_is_fine() {
        let (dir, _) = setup(2);
        assert!(verify_envelopes_batched(&dir, &[], 4).is_empty());
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (0, 0));
    }
}
