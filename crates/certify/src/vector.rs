//! Vector certification: certifying the uncertifiable initial values.
//!
//! Initial values have no history, so no certificate can witness them
//! (paper §5.1). The fix is the preliminary exchange that turns consensus
//! into **Vector Consensus**: every process signs and broadcasts
//! `INIT(v_i)`, waits for exactly `n − F` INITs, and builds
//!
//! * an estimate vector `est_vect` with the received values (null
//!   elsewhere), and
//! * a certificate `est_cert` containing those `n − F` signed INITs —
//!   which *is* the witness for every non-null entry.
//!
//! Propositions 1–2 of the paper (every correct process builds such a
//! certified vector; no process can exhibit two different vectors certified
//! by the same INIT set) are exercised by this module's tests and the E5
//! experiment.

use ftm_sim::ProcessId;

use crate::certificate::Certificate;
use crate::error::{CertifyError, FaultClass};
use crate::message::{Core, MessageKind, ValueVector};
use crate::signed::Envelope;

/// Accumulates INIT messages into a certified initial vector.
///
/// # Example
///
/// ```
/// use ftm_certify::vector::VectorBuilder;
/// use ftm_certify::{Certificate, Core, Envelope};
/// use ftm_crypto::keydir::KeyDirectory;
/// use ftm_sim::ProcessId;
///
/// let mut rng = ftm_crypto::rng_from_seed(3);
/// let (_dir, keys) = KeyDirectory::generate(&mut rng, 3, 128);
/// let mut b = VectorBuilder::new(3, 1);
/// for s in 0..2u32 {
///     let env = Envelope::make(ProcessId(s), Core::Init { value: s as u64 },
///                              Certificate::new(), &keys[s as usize]);
///     b.absorb(&env);
/// }
/// assert!(b.complete()); // n − F = 2 INITs collected
/// let (vect, cert) = b.finish();
/// assert_eq!(vect.get(0), Some(0));
/// assert_eq!(vect.get(2), None);
/// assert_eq!(cert.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VectorBuilder {
    n: usize,
    f: usize,
    vector: ValueVector,
    cert: Certificate,
}

impl VectorBuilder {
    /// Creates a builder for `n` processes tolerating `f` faults.
    ///
    /// # Panics
    ///
    /// Panics if `f >= n`.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(f < n, "F must be smaller than n");
        VectorBuilder {
            n,
            f,
            vector: ValueVector::empty(n),
            cert: Certificate::new(),
        }
    }

    /// Absorbs a (previously validated) INIT envelope. The first INIT per
    /// sender wins; anything beyond the `n − F` target or from an already
    /// seen sender is ignored. Returns `true` when the envelope was used.
    pub fn absorb(&mut self, env: &Envelope) -> bool {
        if self.complete() {
            return false;
        }
        let Core::Init { value } = env.core() else {
            return false;
        };
        let k = env.sender().index();
        if k >= self.n || self.vector.get(k).is_some() {
            return false;
        }
        self.vector.set(k, *value);
        self.cert.insert(env.signed.clone());
        true
    }

    /// Whether exactly `n − F` INITs were collected (the exit condition of
    /// the preliminary phase, Fig. 3 line 6).
    pub fn complete(&self) -> bool {
        self.cert.count_init_senders() >= ftm_quorum::quorum_size(self.n, self.f)
    }

    /// Number of INITs still needed.
    pub fn missing(&self) -> usize {
        ftm_quorum::quorum_size(self.n, self.f).saturating_sub(self.cert.count_init_senders())
    }

    /// Consumes the builder, returning `(est_vect, est_cert)`.
    ///
    /// # Panics
    ///
    /// Panics unless [`VectorBuilder::complete`] — finishing early would
    /// hand the protocol an uncertified vector.
    pub fn finish(self) -> (ValueVector, Certificate) {
        assert!(self.complete(), "vector certification incomplete");
        (self.vector, self.cert)
    }
}

impl Certificate {
    /// Distinct senders of INIT items (helper for the builder's exit
    /// condition and the analyzer's witness rule).
    pub fn count_init_senders(&self) -> usize {
        self.senders_of(MessageKind::Init, 0).len()
    }
}

/// Checks the Vector Validity property on a decided vector: at least
/// `psi = n − 2F` entries must carry the initial values of *correct*
/// processes (`correct_values[k] = Some(v)` is ground truth known to the
/// experiment harness, `None` marks faulty processes).
///
/// # Errors
///
/// Returns a [`CertifyError`] naming the first offending entry, or a
/// generic one when the ψ bound is missed.
pub fn check_vector_validity(
    decided: &ValueVector,
    correct_values: &[Option<u64>],
    f: usize,
) -> Result<(), CertifyError> {
    let n = correct_values.len();
    // Entries attributed to correct processes must be their true values.
    for (k, v) in decided.iter_set() {
        if let Some(Some(true_v)) = correct_values.get(k).map(|cv| cv.map(|tv| tv == v)) {
            if !true_v {
                return Err(CertifyError::new(
                    ProcessId(k as u32),
                    FaultClass::BadCertificate,
                    "decided vector falsifies a correct process's value",
                ));
            }
        }
    }
    let from_correct = decided
        .iter_set()
        .filter(|(k, _)| {
            correct_values
                .get(*k)
                .is_some_and(std::option::Option::is_some)
        })
        .count();
    let psi = ftm_quorum::vector_validity_floor(n, f);
    if from_correct < psi {
        return Err(CertifyError::new(
            ProcessId(0),
            FaultClass::BadCertificate,
            "decided vector has fewer than n−2F entries from correct processes",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;

    fn keys(n: usize) -> Vec<KeyPair> {
        let mut rng = ftm_crypto::rng_from_seed(51);
        KeyDirectory::generate(&mut rng, n, 128).1
    }

    fn init_env(sender: u32, value: u64, keys: &[KeyPair]) -> Envelope {
        Envelope::make(
            ProcessId(sender),
            Core::Init { value },
            Certificate::new(),
            &keys[sender as usize],
        )
    }

    #[test]
    fn builder_collects_exactly_quorum() {
        let ks = keys(4);
        let mut b = VectorBuilder::new(4, 1);
        assert_eq!(b.missing(), 3);
        assert!(b.absorb(&init_env(0, 10, &ks)));
        assert!(b.absorb(&init_env(1, 11, &ks)));
        assert!(!b.complete());
        assert!(b.absorb(&init_env(2, 12, &ks)));
        assert!(b.complete());
        // A fourth INIT is ignored: the phase waits for exactly n − F.
        assert!(!b.absorb(&init_env(3, 13, &ks)));
        let (vect, cert) = b.finish();
        assert_eq!(vect.non_null_count(), 3);
        assert_eq!(vect.get(3), None);
        assert_eq!(cert.len(), 3);
    }

    #[test]
    fn duplicate_sender_ignored() {
        let ks = keys(3);
        let mut b = VectorBuilder::new(3, 1);
        assert!(b.absorb(&init_env(0, 1, &ks)));
        // Equivocation attempt: second value from the same sender.
        assert!(!b.absorb(&init_env(0, 2, &ks)));
        let mut b2 = b.clone();
        assert!(b2.absorb(&init_env(1, 3, &ks)));
        let (vect, _) = b2.finish();
        assert_eq!(vect.get(0), Some(1));
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn finishing_early_panics() {
        let _ = VectorBuilder::new(3, 1).finish();
    }

    #[test]
    fn proposition1_shape_vector_matches_cert() {
        // The built vector's non-null entries are exactly the INIT senders
        // and the certificate witnesses each of them.
        let ks = keys(5);
        let mut b = VectorBuilder::new(5, 2);
        for s in [4u32, 2, 0] {
            b.absorb(&init_env(s, 100 + s as u64, &ks));
        }
        let (vect, cert) = b.finish();
        let mut rng = ftm_crypto::rng_from_seed(51);
        let (dir, _) = KeyDirectory::generate(&mut rng, 5, 128);
        let checker = crate::analyzer::CertChecker::new(5, 2, dir);
        assert!(checker
            .init_portion_well_formed(&cert, &vect, ProcessId(0))
            .is_ok());
    }

    #[test]
    fn vector_validity_accepts_honest_vector() {
        let decided = ValueVector::from_entries(vec![Some(1), Some(2), None, Some(4)]);
        let truth = [Some(1), Some(2), Some(3), None]; // p3 faulty
        assert!(check_vector_validity(&decided, &truth, 1).is_ok());
    }

    #[test]
    fn vector_validity_rejects_falsified_entry() {
        let decided = ValueVector::from_entries(vec![Some(9), Some(2), None, None]);
        let truth = [Some(1), Some(2), Some(3), None];
        let err = check_vector_validity(&decided, &truth, 1).unwrap_err();
        assert!(err.reason.contains("falsifies"));
    }

    #[test]
    fn vector_validity_enforces_psi_bound() {
        // n = 4, F = 1 → ψ = 2; only one correct entry present.
        let decided = ValueVector::from_entries(vec![Some(1), None, None, Some(99)]);
        let truth = [Some(1), Some(2), Some(3), None];
        let err = check_vector_validity(&decided, &truth, 1).unwrap_err();
        assert!(err.reason.contains("n−2F"));
    }
}
