//! Signed messages, certificates and the certificate analyzer.
//!
//! This crate implements the paper's two message-plumbing modules:
//!
//! * the **signature module** — every wire message is a signed
//!   [`Envelope`]; receivers authenticate the claimed sender against the
//!   shared [`ftm_crypto::keydir::KeyDirectory`];
//! * the **reliable certification module** — a [`Certificate`] is a set of
//!   *signed message cores* appended to an outgoing message, letting the
//!   receiver audit the sender's history: the value it carries, the
//!   receipts that justify it, and the condition that enabled the send.
//!
//! # Why certificates cannot be corrupted
//!
//! The paper *assumes* an uncorruptible certification module and explains
//! how to enforce it: certificates are composed of signed messages, so a
//! process that tampers with a certificate item invalidates a signature and
//! is detected; the *cardinality* requirements (at least `n − F` signed
//! items) make majority tests meaningful. This crate enforces the
//! assumption constructively — [`analyzer::CertChecker`] re-verifies every
//! signature inside every certificate.
//!
//! # Signing discipline: cores, not envelopes
//!
//! Signatures cover the canonical encoding of a [`MessageCore`]
//! (sender, kind, round, payload) and **not** the attached certificate.
//! Certificates are therefore flat sets of signed cores — the paper's "set
//! of signed messages" — and never nest, which keeps their size linear in
//! `n` per round instead of compounding across rounds. What a certificate
//! proves is *who signed which statement*; the analyzer's well-formedness
//! rules (paper §5.1) turn those statements into evidence for values,
//! round numbers and send conditions.

pub mod analyzer;
pub mod batch;
pub mod certificate;
pub mod checkpoint;
pub mod error;
pub mod message;
pub mod rules;
pub mod signed;
pub mod vector;

pub use analyzer::CertChecker;
pub use batch::verify_envelopes_batched;
pub use certificate::Certificate;
pub use checkpoint::{checkpoint_digest, checkpoint_vector, decide_vote_kind, make_checkpoint};
pub use error::{CertifyError, FaultClass};
pub use message::{Core, MessageCore, MessageKind, ProtocolId, Round, Value, ValueVector};
pub use signed::{Envelope, SignedCore};
