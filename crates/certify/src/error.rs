//! Error and fault-classification types for message validation.

use std::error::Error;
use std::fmt;

use ftm_sim::ProcessId;

/// The failure classes a received message can reveal (paper §3).
///
/// The paper's taxonomy: **out-of-order** messages (wrong time — transient
/// omission, duplication, or a message the program text can never produce)
/// and **wrong expected** messages (right time, wrong message or content —
/// substituted messages, syntactically or semantically incorrect content).
/// Signature failures identify the sender unforgeably, so they are their
/// own class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The signature does not verify for the claimed sender.
    BadSignature,
    /// Wrong time: the receipt event is not enabled in the sender's state
    /// machine (duplicate, replay, stale or premature message).
    OutOfOrder,
    /// Right time, but the content is syntactically malformed (e.g. a
    /// vector of the wrong width).
    WrongSyntax,
    /// Right time, but the certificate is not well-formed with respect to
    /// the carried value or the send condition (substituted message,
    /// corrupted variable, misevaluated condition).
    BadCertificate,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::BadSignature => "bad-signature",
            FaultClass::OutOfOrder => "out-of-order",
            FaultClass::WrongSyntax => "wrong-syntax",
            FaultClass::BadCertificate => "bad-certificate",
        };
        f.write_str(s)
    }
}

/// A validation failure: which process exhibited which fault class, and a
/// human-readable reason for the experiment logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyError {
    /// The process the evidence incriminates.
    pub culprit: ProcessId,
    /// The paper's failure class.
    pub class: FaultClass,
    /// What exactly failed (static description, keeps errors cheap).
    pub reason: &'static str,
}

impl CertifyError {
    /// Convenience constructor.
    pub fn new(culprit: ProcessId, class: FaultClass, reason: &'static str) -> Self {
        CertifyError {
            culprit,
            class,
            reason,
        }
    }
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} by {}: {}", self.class, self.culprit, self.reason)
    }
}

impl Error for CertifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_culprit_and_class() {
        let e = CertifyError::new(
            ProcessId(3),
            FaultClass::BadCertificate,
            "too few INIT items",
        );
        let s = e.to_string();
        assert!(s.contains("p3"));
        assert!(s.contains("bad-certificate"));
        assert!(s.contains("too few INIT items"));
    }

    #[test]
    fn classes_are_distinct() {
        use FaultClass::*;
        let all = [BadSignature, OutOfOrder, WrongSyntax, BadCertificate];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CertifyError>();
    }
}
