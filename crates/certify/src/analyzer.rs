//! The certificate analyzer: well-formedness rules from paper §5.1.
//!
//! For every message kind the paper defines when its certificate is
//! *well-formed* with respect to the value it carries and the condition
//! that enabled its send. [`CertChecker`] implements those rules:
//!
//! * `INIT(v)` — empty certificate (initial values cannot be certified;
//!   they are handled by vector certification instead).
//! * `CURRENT(r, vect)` from the round-`r` coordinator — the INIT-portion
//!   must witness `vect` (≥ `n−F` signed INITs consistent with it) and the
//!   NEXT-portion must witness `r` (≥ `n−F` signed `NEXT(r−1)`, or nothing
//!   for `r = 1`).
//! * `CURRENT(r, vect)` from a relayer — the certificate must contain the
//!   coordinator's own signed `CURRENT(r, vect)` plus the INIT backing of
//!   `vect`.
//! * `NEXT(r)` — must match one of the three send conditions (coordinator
//!   suspicion from `q0`, `change_mind` from `q1`, end-of-round), each with
//!   its own cardinality pattern; suspicion itself is unverifiable, so that
//!   branch only constrains structure.
//! * `DECIDE(r, vect)` — ≥ `n−F` signed `CURRENT(r, vect)` from distinct
//!   senders (we follow §5.1 here; Fig. 3 line 21 writes `est_cert_i`,
//!   which would be forgeable — see DESIGN.md).
//!
//! Every rule first re-verifies the signature of every certificate item:
//! this is what makes the certification module *reliable* — no process can
//! fabricate or tamper with certificate contents without being detected.

use ftm_crypto::keydir::KeyDirectory;
use ftm_sim::ProcessId;

use crate::certificate::Certificate;
use crate::error::{CertifyError, FaultClass};
use crate::message::{Core, MessageKind, ProtocolId, Round, ValueVector};
use crate::signed::Envelope;

/// Which of the three legal conditions triggered a `NEXT` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextTrigger {
    /// `q0 → q2`: the sender suspected the round coordinator.
    Suspicion,
    /// `q1 → q2`: the sender received a quorum of votes but neither a
    /// CURRENT nor a NEXT quorum — it changes its mind to unblock the round.
    ChangeMind,
    /// End of the round loop: a NEXT quorum was already observed.
    EndOfRound,
}

/// Validates certificates against the transformed protocol's rules.
///
/// # Example
///
/// ```
/// use ftm_certify::analyzer::CertChecker;
/// use ftm_crypto::keydir::KeyDirectory;
///
/// let mut rng = ftm_crypto::rng_from_seed(2);
/// let (dir, _keys) = KeyDirectory::generate(&mut rng, 4, 128);
/// let checker = CertChecker::new(4, 1, dir);
/// assert_eq!(checker.quorum(), 3); // n − F
/// ```
#[derive(Debug, Clone)]
pub struct CertChecker {
    n: usize,
    f: usize,
    dir: KeyDirectory,
    protocol: ProtocolId,
}

impl CertChecker {
    /// Creates a checker for `n` processes tolerating `f` faults,
    /// enforcing the Hurfin–Raynal rule table (see
    /// [`CertChecker::new_for`] for other protocols).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n` and `f ≤ ⌊(n−1)/2⌋` (the paper's resilience
    /// bound; beyond it quorums of size `n−F` stop intersecting in a
    /// correct process).
    pub fn new(n: usize, f: usize, dir: KeyDirectory) -> Self {
        CertChecker::new_for(ProtocolId::HurfinRaynal, n, f, dir)
    }

    /// Creates a checker enforcing the rule table of `protocol`.
    ///
    /// # Panics
    ///
    /// Same bounds as [`CertChecker::new`].
    pub fn new_for(protocol: ProtocolId, n: usize, f: usize, dir: KeyDirectory) -> Self {
        assert!(n >= 1, "need at least one process");
        assert!(
            f <= ftm_quorum::max_faults(n),
            "F = {f} exceeds the resilience bound ⌊(n−1)/2⌋ = {}",
            ftm_quorum::max_faults(n)
        );
        CertChecker {
            n,
            f,
            dir,
            protocol,
        }
    }

    /// The protocol whose rule table this checker enforces.
    pub fn protocol(&self) -> ProtocolId {
        self.protocol
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault tolerance parameter `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Quorum size `n − F` used by every cardinality test.
    pub fn quorum(&self) -> usize {
        ftm_quorum::quorum_size(self.n, self.f)
    }

    /// The key directory signatures are verified against.
    pub fn dir(&self) -> &KeyDirectory {
        &self.dir
    }

    /// The round-`r` coordinator under the rotating-coordinator paradigm
    /// (`c = ((r − 1) mod n)` 0-based; the paper's `(r mod n) + 1` 1-based).
    ///
    /// # Panics
    ///
    /// Panics for round 0 (the vector-certification phase has none).
    pub fn coordinator(&self, round: Round) -> ProcessId {
        assert!(round >= 1, "round 0 has no coordinator");
        // `% n` bounds the index by a process count, so the conversion
        // cannot fail in practice; fail closed to an id no peer holds
        // rather than truncating (D7: no `as` narrowing in thresholds).
        ProcessId(u32::try_from((round - 1) % self.n as u64).unwrap_or(u32::MAX))
    }

    /// Full validation entry point: signature syntax and certificate rules
    /// for any envelope.
    ///
    /// # Errors
    ///
    /// The first rule violation found, classified per [`FaultClass`]. The
    /// culprit is always the envelope's claimed sender (inner signatures
    /// identify tampering *by the sender*, since honest processes never
    /// forward unverifiable items).
    pub fn check_envelope(&self, env: &Envelope) -> Result<(), CertifyError> {
        env.signed.verify(&self.dir)?;
        self.check_syntax(env)?;
        self.check_cert_signatures(env)?;
        match env.core() {
            Core::Init { .. } => self.check_init(env),
            Core::Current { .. } => self.check_current(env),
            Core::Next { .. } => self.check_next(env).map(|_| ()),
            Core::Decide { .. } => self.check_decide(env),
            Core::Estimate { .. } => self.check_estimate(env),
            Core::Propose { .. } => self.check_propose(env),
            Core::Ack { .. } => self.check_ack(env),
            Core::Nack { .. } => self.check_nack(env),
            Core::Checkpoint { .. } => self.check_checkpoint(env),
        }
    }

    /// Syntactic validity: vector widths match `n`, rounds are ≥ 1 where a
    /// coordinator exists.
    pub fn check_syntax(&self, env: &Envelope) -> Result<(), CertifyError> {
        let culprit = env.sender();
        let bad = |reason| Err(CertifyError::new(culprit, FaultClass::WrongSyntax, reason));
        if env.sender().index() >= self.n {
            return bad("sender id out of range");
        }
        match env.core() {
            // A checkpoint's digest is fixed-width by construction and its
            // slot is unconstrained here; the quorum rule does the auditing.
            Core::Init { .. } | Core::Checkpoint { .. } => Ok(()),
            Core::Current { round, vector }
            | Core::Decide { round, vector }
            | Core::Estimate { round, vector, .. }
            | Core::Propose { round, vector }
            | Core::Ack { round, vector } => {
                if *round < 1 {
                    return bad("round 0 carries no votes");
                }
                if vector.len() != self.n {
                    return bad("estimate vector has wrong width");
                }
                if let Core::Estimate { ts, .. } = env.core() {
                    if *ts >= *round {
                        return bad("estimate timestamp is not from an earlier round");
                    }
                }
                Ok(())
            }
            Core::Next { round } | Core::Nack { round } => {
                if *round < 1 {
                    return bad("round 0 carries no votes");
                }
                Ok(())
            }
        }
    }

    /// Re-verifies the signature of every certificate item.
    pub fn check_cert_signatures(&self, env: &Envelope) -> Result<(), CertifyError> {
        for item in env.cert.iter() {
            if item.verify(&self.dir).is_err() {
                return Err(CertifyError::new(
                    env.sender(),
                    FaultClass::BadCertificate,
                    "certificate contains an item with an invalid signature",
                ));
            }
        }
        Ok(())
    }

    /// INIT messages carry no certificate.
    pub fn check_init(&self, env: &Envelope) -> Result<(), CertifyError> {
        if env.cert.is_empty() {
            Ok(())
        } else {
            Err(CertifyError::new(
                env.sender(),
                FaultClass::BadCertificate,
                "INIT must carry an empty certificate",
            ))
        }
    }

    /// "est_cert is well-formed with respect to vect": every non-null entry
    /// of `vect` is witnessed by a signed INIT, and at least `n−F` entries
    /// are witnessed (paper §5.1, initial values).
    pub fn init_portion_well_formed(
        &self,
        cert: &Certificate,
        vector: &ValueVector,
        culprit: ProcessId,
    ) -> Result<(), CertifyError> {
        if vector.non_null_count() < self.quorum() {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "estimate vector has fewer than n−F entries",
            ));
        }
        for (k, v) in vector.iter_set() {
            let witnessed = cert.iter().any(|item| {
                item.sender().index() == k
                    && matches!(&item.core().core, Core::Init { value } if *value == v)
            });
            if !witnessed {
                return Err(CertifyError::new(
                    culprit,
                    FaultClass::BadCertificate,
                    "vector entry not witnessed by a signed INIT",
                ));
            }
        }
        Ok(())
    }

    /// "next_cert is well-formed with respect to round": entering round
    /// `round > 1` requires `n−F` signed `NEXT(round−1)`; round 1 needs
    /// nothing (`next_cert = ∅`).
    pub fn next_portion_well_formed(
        &self,
        cert: &Certificate,
        round: Round,
        culprit: ProcessId,
    ) -> Result<(), CertifyError> {
        if round <= 1 {
            return Ok(());
        }
        if cert.count(MessageKind::Next, round - 1) < self.quorum() {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "round entry lacks n−F signed NEXT votes for the previous round",
            ));
        }
        Ok(())
    }

    /// CT round-entry evidence: entering round `round > 1` requires `n−F`
    /// distinct signed `ACK(round−1)` or `NACK(round−1)` (the CT analogue
    /// of [`CertChecker::next_portion_well_formed`]); round 1 needs
    /// nothing.
    pub fn ct_round_entry_well_formed(
        &self,
        cert: &Certificate,
        round: Round,
        culprit: ProcessId,
    ) -> Result<(), CertifyError> {
        if round <= 1 {
            return Ok(());
        }
        if cert.ct_votes(round - 1).len() < self.quorum() {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "round entry lacks n−F signed ACK/NACK votes for the previous round",
            ));
        }
        Ok(())
    }

    /// CURRENT rules (coordinator vs. relayer), assuming signatures and
    /// syntax were already checked.
    pub fn check_current(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Current { round, vector } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_current on a non-CURRENT message",
            ));
        };
        let culprit = env.sender();
        self.init_portion_well_formed(&env.cert, vector, culprit)?;
        if env.sender() == self.coordinator(*round) {
            // The coordinator must additionally justify being in round r.
            self.next_portion_well_formed(&env.cert, *round, culprit)
        } else {
            // A relayer must show the coordinator's own CURRENT for the
            // same round and the same vector (no substituted message).
            if env
                .cert
                .find_current(self.coordinator(*round), *round, vector)
                .is_none()
            {
                return Err(CertifyError::new(
                    culprit,
                    FaultClass::BadCertificate,
                    "relayed CURRENT lacks the coordinator's signed CURRENT for this vector",
                ));
            }
            Ok(())
        }
    }

    /// NEXT rules: the certificate must match one of the three legal send
    /// conditions; returns which one (receivers use it to know *why* the
    /// sender votes NEXT).
    pub fn check_next(&self, env: &Envelope) -> Result<NextTrigger, CertifyError> {
        let Core::Next { round } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_next on a non-NEXT message",
            ));
        };
        let r = *round;
        let culprit = env.sender();

        // No certificate item may come from the future: that would mean
        // the sender fabricated votes it cannot have received.
        for item in env.cert.iter() {
            if item.round() > r {
                return Err(CertifyError::new(
                    culprit,
                    FaultClass::BadCertificate,
                    "NEXT certificate contains items from a future round",
                ));
            }
        }

        let currents = env.cert.count(MessageKind::Current, r);
        let nexts = env.cert.count(MessageKind::Next, r);
        let rec_from = env.cert.rec_from(r).len();
        let q = self.quorum();

        // (c) End-of-round: a full NEXT quorum observed.
        if nexts >= q {
            return Ok(NextTrigger::EndOfRound);
        }
        // (b) change_mind: in q1 (≥1 CURRENT seen), a quorum of votes
        // arrived but neither a CURRENT quorum nor a NEXT quorum.
        if currents >= 1 && rec_from >= q && currents < q {
            return Ok(NextTrigger::ChangeMind);
        }
        // (a) Suspicion from q0: no CURRENT relayed/adopted yet. The
        // suspicion itself cannot be audited (failure-detector output is
        // local), so the only structural requirement is the absence of a
        // CURRENT quorum claim.
        if currents == 0 {
            return Ok(NextTrigger::Suspicion);
        }
        Err(CertifyError::new(
            culprit,
            FaultClass::BadCertificate,
            "NEXT certificate matches no legal send condition",
        ))
    }

    /// ESTIMATE rules: the INIT-portion witnesses the vector; a claimed
    /// adoption timestamp `ts > 0` must be backed by `coordinator(ts)`'s
    /// own signed `PROPOSE(ts, vect)` (this is what makes CT's
    /// max-timestamp adoption rule auditable); entering round `r > 1`
    /// requires the ACK/NACK round-entry evidence.
    pub fn check_estimate(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Estimate { round, vector, ts } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_estimate on a non-ESTIMATE message",
            ));
        };
        let culprit = env.sender();
        self.init_portion_well_formed(&env.cert, vector, culprit)?;
        if *ts > 0
            && env
                .cert
                .find_vouching(MessageKind::Propose, self.coordinator(*ts), *ts, vector)
                .is_none()
        {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "estimate timestamp lacks the ts-coordinator's signed PROPOSE for this vector",
            ));
        }
        self.ct_round_entry_well_formed(&env.cert, *round, culprit)
    }

    /// PROPOSE rules: only the round coordinator proposes; the certificate
    /// carries `n−F` signed `ESTIMATE(r)` and the proposed vector equals
    /// the vector of a maximum-timestamp estimate among them (CT's
    /// adoption rule), with its INIT backing.
    pub fn check_propose(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Propose { round, vector } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_propose on a non-PROPOSE message",
            ));
        };
        let culprit = env.sender();
        if env.sender() != self.coordinator(*round) {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "PROPOSE from a process that is not the round coordinator",
            ));
        }
        self.init_portion_well_formed(&env.cert, vector, culprit)?;
        if env.cert.count(MessageKind::Estimate, *round) < self.quorum() {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "PROPOSE lacks n−F signed ESTIMATE votes for this round",
            ));
        }
        let max_ts = env
            .cert
            .iter_kind_round(MessageKind::Estimate, *round)
            .filter_map(|i| match &i.core().core {
                Core::Estimate { ts, .. } => Some(*ts),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let adopted = env
            .cert
            .iter_kind_round(MessageKind::Estimate, *round)
            .any(|i| {
                matches!(&i.core().core, Core::Estimate { ts, vector: v, .. }
                    if *ts == max_ts && v == vector)
            });
        if !adopted {
            return Err(CertifyError::new(
                culprit,
                FaultClass::BadCertificate,
                "proposed vector is not a maximum-timestamp estimate from the certificate",
            ));
        }
        Ok(())
    }

    /// ACK rules: the echo must quote the round coordinator's own signed
    /// `PROPOSE(r, vect)` for exactly the acknowledged vector (no
    /// substituted proposal).
    pub fn check_ack(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Ack { round, vector } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_ack on a non-ACK message",
            ));
        };
        if env
            .cert
            .find_vouching(
                MessageKind::Propose,
                self.coordinator(*round),
                *round,
                vector,
            )
            .is_none()
        {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::BadCertificate,
                "ACK lacks the coordinator's signed PROPOSE for this vector",
            ));
        }
        Ok(())
    }

    /// NACK rules: coordinator suspicion is failure-detector output and
    /// cannot be audited; the only structural requirement is that no
    /// certificate item comes from a future round.
    pub fn check_nack(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Nack { round } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_nack on a non-NACK message",
            ));
        };
        for item in env.cert.iter() {
            if item.round() > *round {
                return Err(CertifyError::new(
                    env.sender(),
                    FaultClass::BadCertificate,
                    "NACK certificate contains items from a future round",
                ));
            }
        }
        Ok(())
    }

    /// DECIDE rule: `n−F` distinct signed votes for the decided vector —
    /// `CURRENT(round, vect)` under Hurfin–Raynal (§5.1; see module docs
    /// for the Fig. 3 discrepancy), `ACK(round, vect)` under
    /// Chandra–Toueg.
    pub fn check_decide(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Decide { round, vector } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_decide on a non-DECIDE message",
            ));
        };
        let (vote_kind, reason) = match self.protocol {
            ProtocolId::HurfinRaynal => (
                MessageKind::Current,
                "DECIDE lacks n−F signed CURRENT votes for the decided vector",
            ),
            ProtocolId::ChandraToueg => (
                MessageKind::Ack,
                "DECIDE lacks n−F signed ACK votes for the decided vector",
            ),
        };
        let matching: std::collections::BTreeSet<ProcessId> = env
            .cert
            .iter_kind_round(vote_kind, *round)
            .filter(|i| i.core().core.vector() == Some(vector))
            .map(super::signed::SignedCore::sender)
            .collect();
        if matching.len() < self.quorum() {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::BadCertificate,
                reason,
            ));
        }
        Ok(())
    }

    /// CHECKPOINT rule (`checkpoint-quorum`, shared by both protocols): the
    /// certificate must contain `n−F` distinct signed decide-votes
    /// (`CURRENT` under Hurfin–Raynal, `ACK` under Chandra–Toueg) over a
    /// single round and a single vector whose
    /// [`crate::checkpoint::checkpoint_digest`] equals the digest the
    /// checkpoint claims. A quorum over a *different* vector is a forged
    /// digest; no quorum at all is a sub-quorum checkpoint — both are
    /// `bad-certificate` convictions of the sender.
    pub fn check_checkpoint(&self, env: &Envelope) -> Result<(), CertifyError> {
        let Core::Checkpoint { slot, digest } = env.core() else {
            return Err(CertifyError::new(
                env.sender(),
                FaultClass::WrongSyntax,
                "check_checkpoint on a non-CHECKPOINT message",
            ));
        };
        let vote_kind = crate::checkpoint::decide_vote_kind(self.protocol);
        // Group the decide-votes by (round, vector); distinct senders only.
        let mut groups: std::collections::BTreeMap<
            (Round, &ValueVector),
            std::collections::BTreeSet<ProcessId>,
        > = std::collections::BTreeMap::new();
        for item in env.cert.iter() {
            if item.kind() == vote_kind {
                if let Some(vector) = item.core().core.vector() {
                    groups
                        .entry((item.round(), vector))
                        .or_default()
                        .insert(item.sender());
                }
            }
        }
        let mut quorum_seen = false;
        for ((_round, vector), senders) in &groups {
            if senders.len() < self.quorum() {
                continue;
            }
            quorum_seen = true;
            if crate::checkpoint::checkpoint_digest(self.protocol, *slot, vector) == *digest {
                return Ok(());
            }
        }
        Err(CertifyError::new(
            env.sender(),
            FaultClass::BadCertificate,
            if quorum_seen {
                "checkpoint digest does not match the vector its quorum certifies"
            } else {
                "checkpoint lacks n−F signed decide-votes over a single vector"
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageCore;
    use crate::signed::SignedCore;
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;
    use ftm_crypto::wire::CanonicalEncode;

    const N: usize = 4;
    const F: usize = 1;

    struct Fixture {
        checker: CertChecker,
        keys: Vec<KeyPair>,
    }

    fn fixture() -> Fixture {
        let mut rng = ftm_crypto::rng_from_seed(41);
        let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
        Fixture {
            checker: CertChecker::new(N, F, dir),
            keys,
        }
    }

    fn signed(f: &Fixture, sender: u32, core: Core) -> SignedCore {
        SignedCore::sign(
            MessageCore::new(ProcessId(sender), core),
            &f.keys[sender as usize],
        )
    }

    /// INIT items from p0..p2 (a quorum of 3) with value = 10 + sender.
    fn init_quorum(f: &Fixture) -> Certificate {
        Certificate::from_items((0..3u32).map(|s| {
            signed(
                f,
                s,
                Core::Init {
                    value: 10 + s as u64,
                },
            )
        }))
    }

    /// The vector those INITs witness.
    fn witnessed_vector() -> ValueVector {
        ValueVector::from_entries(vec![Some(10), Some(11), Some(12), None])
    }

    fn next_quorum(f: &Fixture, round: Round) -> Certificate {
        Certificate::from_items((0..3u32).map(|s| signed(f, s, Core::Next { round })))
    }

    #[test]
    fn coordinator_rotates() {
        let f = fixture();
        assert_eq!(f.checker.coordinator(1), ProcessId(0));
        assert_eq!(f.checker.coordinator(4), ProcessId(3));
        assert_eq!(f.checker.coordinator(5), ProcessId(0));
    }

    #[test]
    #[should_panic(expected = "resilience bound")]
    fn excessive_f_rejected() {
        let f = fixture();
        let _ = CertChecker::new(4, 2, f.checker.dir.clone());
    }

    #[test]
    fn valid_init_passes() {
        let f = fixture();
        let env = Envelope::make(
            ProcessId(1),
            Core::Init { value: 11 },
            Certificate::new(),
            &f.keys[1],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
    }

    #[test]
    fn init_with_certificate_is_rejected() {
        let f = fixture();
        let env = Envelope::make(
            ProcessId(1),
            Core::Init { value: 11 },
            next_quorum(&f, 1),
            &f.keys[1],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
    }

    #[test]
    fn forged_outer_signature_is_caught() {
        let f = fixture();
        // p2 signs but claims to be p1.
        let env = Envelope::make(
            ProcessId(1),
            Core::Init { value: 11 },
            Certificate::new(),
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadSignature);
        assert_eq!(err.culprit, ProcessId(1));
    }

    #[test]
    fn coordinator_current_round1_valid() {
        let f = fixture();
        let env = Envelope::make(
            ProcessId(0), // coordinator of round 1
            Core::Current {
                round: 1,
                vector: witnessed_vector(),
            },
            init_quorum(&f),
            &f.keys[0],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
    }

    #[test]
    fn coordinator_current_with_unwitnessed_entry_rejected() {
        let f = fixture();
        let mut vect = witnessed_vector();
        vect.set(3, 999); // no INIT from p3 in the certificate
        let env = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: vect,
            },
            init_quorum(&f),
            &f.keys[0],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
        assert_eq!(err.reason, "vector entry not witnessed by a signed INIT");
    }

    #[test]
    fn coordinator_current_with_corrupted_value_rejected() {
        let f = fixture();
        let mut vect = witnessed_vector();
        vect.set(1, 999); // p1's INIT said 11
        let env = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: vect,
            },
            init_quorum(&f),
            &f.keys[0],
        );
        assert!(f.checker.check_envelope(&env).is_err());
    }

    #[test]
    fn coordinator_round2_needs_next_quorum() {
        let f = fixture();
        let vect = witnessed_vector();
        // Round 2's coordinator is p1. Without NEXT(1) quorum: rejected.
        let env = Envelope::make(
            ProcessId(1),
            Core::Current {
                round: 2,
                vector: vect.clone(),
            },
            init_quorum(&f),
            &f.keys[1],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("round entry"));
        // With the quorum: accepted.
        let env = Envelope::make(
            ProcessId(1),
            Core::Current {
                round: 2,
                vector: vect,
            },
            init_quorum(&f).union(&next_quorum(&f, 1)),
            &f.keys[1],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
    }

    #[test]
    fn relayed_current_requires_coordinator_backing() {
        let f = fixture();
        let vect = witnessed_vector();
        let coord_current = signed(
            &f,
            0,
            Core::Current {
                round: 1,
                vector: vect.clone(),
            },
        );
        // p2 relays with the coordinator's CURRENT + INIT backing: valid.
        let mut cert = init_quorum(&f);
        cert.insert(coord_current);
        let env = Envelope::make(
            ProcessId(2),
            Core::Current {
                round: 1,
                vector: vect.clone(),
            },
            cert,
            &f.keys[2],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        // Without the coordinator's CURRENT: substituted message, rejected.
        let env = Envelope::make(
            ProcessId(2),
            Core::Current {
                round: 1,
                vector: vect,
            },
            init_quorum(&f),
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("coordinator"));
    }

    #[test]
    fn relayed_current_with_substituted_vector_rejected() {
        let f = fixture();
        let vect = witnessed_vector();
        let coord_current = signed(
            &f,
            0,
            Core::Current {
                round: 1,
                vector: vect,
            },
        );
        // p2 relays a DIFFERENT (still witnessed) vector than the
        // coordinator proposed: entry 2 dropped to null.
        let substituted = ValueVector::from_entries(vec![Some(10), Some(11), None, None]);
        let mut cert = init_quorum(&f);
        cert.insert(coord_current);
        let env = Envelope::make(
            ProcessId(2),
            Core::Current {
                round: 1,
                vector: substituted,
            },
            cert,
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        // Vector has only 2 non-null entries < quorum, so either rule may
        // fire; both classify as a bad certificate.
        assert_eq!(err.class, FaultClass::BadCertificate);
    }

    #[test]
    fn next_triggers_classified() {
        let f = fixture();
        let vect = witnessed_vector();
        // (c) End of round.
        let env = Envelope::make(
            ProcessId(3),
            Core::Next { round: 1 },
            next_quorum(&f, 1),
            &f.keys[3],
        );
        assert_eq!(f.checker.check_next(&env).unwrap(), NextTrigger::EndOfRound);
        // (a) Suspicion: empty certificate.
        let env = Envelope::make(
            ProcessId(3),
            Core::Next { round: 1 },
            Certificate::new(),
            &f.keys[3],
        );
        assert_eq!(f.checker.check_next(&env).unwrap(), NextTrigger::Suspicion);
        // (b) change_mind: one CURRENT + two NEXT = 3 voters, no quorum of
        // either kind.
        let mut cert = Certificate::from_items([
            signed(
                &f,
                0,
                Core::Current {
                    round: 1,
                    vector: vect,
                },
            ),
            signed(&f, 1, Core::Next { round: 1 }),
            signed(&f, 2, Core::Next { round: 1 }),
        ]);
        cert = cert.union(&init_quorum(&f));
        let env = Envelope::make(ProcessId(3), Core::Next { round: 1 }, cert, &f.keys[3]);
        assert_eq!(f.checker.check_next(&env).unwrap(), NextTrigger::ChangeMind);
    }

    #[test]
    fn next_with_future_items_rejected() {
        let f = fixture();
        let env = Envelope::make(
            ProcessId(3),
            Core::Next { round: 1 },
            next_quorum(&f, 2), // items from round 2 inside a NEXT(1)
            &f.keys[3],
        );
        let err = f.checker.check_next(&env).unwrap_err();
        assert!(err.reason.contains("future round"));
    }

    #[test]
    fn decide_requires_matching_current_quorum() {
        let f = fixture();
        let vect = witnessed_vector();
        let current_quorum = Certificate::from_items((0..3u32).map(|s| {
            signed(
                &f,
                s,
                Core::Current {
                    round: 1,
                    vector: vect.clone(),
                },
            )
        }));
        let env = Envelope::make(
            ProcessId(0),
            Core::Decide {
                round: 1,
                vector: vect.clone(),
            },
            current_quorum.clone(),
            &f.keys[0],
        );
        assert!(f.checker.check_envelope(&env).is_ok());

        // Forged decide: same quorum but a different decided vector.
        let other = ValueVector::from_entries(vec![Some(10), Some(11), Some(99), None]);
        let env = Envelope::make(
            ProcessId(0),
            Core::Decide {
                round: 1,
                vector: other,
            },
            current_quorum,
            &f.keys[0],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
    }

    #[test]
    fn tampered_cert_item_is_caught() {
        let f = fixture();
        let vect = witnessed_vector();
        let mut cert = init_quorum(&f);
        // Tamper: p0's INIT value rewritten but old signature kept.
        let honest = signed(&f, 0, Core::Init { value: 10 });
        let tampered = SignedCore::from_parts(
            MessageCore::new(ProcessId(0), Core::Init { value: 66 }),
            // Signature over the *honest* core — invalid for the new core.
            {
                let digest =
                    MessageCore::new(ProcessId(0), Core::Init { value: 10 }).canonical_digest();
                let _ = honest;
                f.keys[0].sign_digest(&digest)
            },
        );
        cert.insert(tampered);
        let env = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: vect,
            },
            cert,
            &f.keys[0],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
        assert!(err.reason.contains("invalid signature"));
    }

    fn ct_fixture() -> Fixture {
        let mut rng = ftm_crypto::rng_from_seed(41);
        let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
        Fixture {
            checker: CertChecker::new_for(ProtocolId::ChandraToueg, N, F, dir),
            keys,
        }
    }

    /// ESTIMATE(r=1, ts=0) items from p0..p2 carrying the witnessed vector.
    fn estimate_quorum(f: &Fixture, round: Round) -> Certificate {
        Certificate::from_items((0..3u32).map(|s| {
            signed(
                f,
                s,
                Core::Estimate {
                    round,
                    vector: witnessed_vector(),
                    ts: 0,
                },
            )
        }))
    }

    #[test]
    fn ct_estimate_round1_valid() {
        let f = ct_fixture();
        let env = Envelope::make(
            ProcessId(2),
            Core::Estimate {
                round: 1,
                vector: witnessed_vector(),
                ts: 0,
            },
            init_quorum(&f),
            &f.keys[2],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
    }

    #[test]
    fn ct_estimate_round2_needs_ack_nack_quorum() {
        let f = ct_fixture();
        // Without round-entry evidence: rejected.
        let env = Envelope::make(
            ProcessId(2),
            Core::Estimate {
                round: 2,
                vector: witnessed_vector(),
                ts: 0,
            },
            init_quorum(&f),
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("round entry"));
        // With a mixed ACK/NACK quorum for round 1: accepted.
        let votes = Certificate::from_items([
            signed(
                &f,
                0,
                Core::Ack {
                    round: 1,
                    vector: witnessed_vector(),
                },
            ),
            signed(&f, 1, Core::Nack { round: 1 }),
            signed(&f, 2, Core::Nack { round: 1 }),
        ]);
        let env = Envelope::make(
            ProcessId(2),
            Core::Estimate {
                round: 2,
                vector: witnessed_vector(),
                ts: 0,
            },
            init_quorum(&f).union(&votes),
            &f.keys[2],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
    }

    #[test]
    fn ct_estimate_timestamp_needs_propose_backing() {
        let f = ct_fixture();
        let nack_quorum =
            Certificate::from_items((0..3u32).map(|s| signed(&f, s, Core::Nack { round: 1 })));
        let base = init_quorum(&f).union(&nack_quorum);
        // ts = 1 claimed without coordinator(1)'s PROPOSE: rejected.
        let env = Envelope::make(
            ProcessId(2),
            Core::Estimate {
                round: 2,
                vector: witnessed_vector(),
                ts: 1,
            },
            base.clone(),
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("timestamp"), "{}", err.reason);
        // With p0's (coordinator of round 1) signed PROPOSE: accepted.
        let mut cert = base;
        cert.insert(signed(
            &f,
            0,
            Core::Propose {
                round: 1,
                vector: witnessed_vector(),
            },
        ));
        let env = Envelope::make(
            ProcessId(2),
            Core::Estimate {
                round: 2,
                vector: witnessed_vector(),
                ts: 1,
            },
            cert,
            &f.keys[2],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
    }

    #[test]
    fn ct_estimate_future_timestamp_is_syntax_fault() {
        let f = ct_fixture();
        let env = Envelope::make(
            ProcessId(2),
            Core::Estimate {
                round: 2,
                vector: witnessed_vector(),
                ts: 2,
            },
            init_quorum(&f),
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::WrongSyntax);
    }

    #[test]
    fn ct_propose_requires_coordinator_and_estimate_quorum() {
        let f = ct_fixture();
        let cert = init_quorum(&f).union(&estimate_quorum(&f, 1));
        // p0 is coordinator of round 1: valid.
        let env = Envelope::make(
            ProcessId(0),
            Core::Propose {
                round: 1,
                vector: witnessed_vector(),
            },
            cert.clone(),
            &f.keys[0],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        // p2 is not: rejected.
        let env = Envelope::make(
            ProcessId(2),
            Core::Propose {
                round: 1,
                vector: witnessed_vector(),
            },
            cert,
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("not the round coordinator"));
        // Coordinator without the estimate quorum: rejected.
        let env = Envelope::make(
            ProcessId(0),
            Core::Propose {
                round: 1,
                vector: witnessed_vector(),
            },
            init_quorum(&f),
            &f.keys[0],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("ESTIMATE"));
    }

    #[test]
    fn ct_propose_must_adopt_a_max_timestamp_estimate() {
        let f = ct_fixture();
        let locked = witnessed_vector();
        let other = ValueVector::from_entries(vec![Some(10), Some(11), Some(12), Some(13)]);
        // p1 locked `locked` at ts=1; the others are fresh (ts=0) with a
        // different (also witnessed) vector.
        let mut init_backing = init_quorum(&f);
        init_backing.insert(signed(&f, 3, Core::Init { value: 13 }));
        let ests = Certificate::from_items([
            signed(
                &f,
                1,
                Core::Estimate {
                    round: 2,
                    vector: locked.clone(),
                    ts: 1,
                },
            ),
            signed(
                &f,
                0,
                Core::Estimate {
                    round: 2,
                    vector: other.clone(),
                    ts: 0,
                },
            ),
            signed(
                &f,
                2,
                Core::Estimate {
                    round: 2,
                    vector: other.clone(),
                    ts: 0,
                },
            ),
        ]);
        let cert = init_backing.union(&ests);
        // Round 2's coordinator is p1. Proposing the locked (max-ts)
        // vector: valid.
        let env = Envelope::make(
            ProcessId(1),
            Core::Propose {
                round: 2,
                vector: locked,
            },
            cert.clone(),
            &f.keys[1],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        // Proposing the fresher-but-lower-ts vector: rejected.
        let env = Envelope::make(
            ProcessId(1),
            Core::Propose {
                round: 2,
                vector: other,
            },
            cert,
            &f.keys[1],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("maximum-timestamp"));
    }

    #[test]
    fn ct_ack_requires_coordinator_propose_echo() {
        let f = ct_fixture();
        let vect = witnessed_vector();
        let mut cert = Certificate::new();
        cert.insert(signed(
            &f,
            0,
            Core::Propose {
                round: 1,
                vector: vect.clone(),
            },
        ));
        let env = Envelope::make(
            ProcessId(2),
            Core::Ack {
                round: 1,
                vector: vect.clone(),
            },
            cert,
            &f.keys[2],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        // Without the coordinator's PROPOSE: substituted message.
        let env = Envelope::make(
            ProcessId(2),
            Core::Ack {
                round: 1,
                vector: vect,
            },
            Certificate::new(),
            &f.keys[2],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("PROPOSE"));
    }

    #[test]
    fn ct_nack_rejects_future_items() {
        let f = ct_fixture();
        let env = Envelope::make(
            ProcessId(3),
            Core::Nack { round: 1 },
            Certificate::new(),
            &f.keys[3],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        let future = Certificate::from_items([signed(&f, 0, Core::Nack { round: 2 })]);
        let env = Envelope::make(ProcessId(3), Core::Nack { round: 1 }, future, &f.keys[3]);
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("future round"));
    }

    #[test]
    fn ct_decide_requires_matching_ack_quorum() {
        let f = ct_fixture();
        let vect = witnessed_vector();
        let ack_quorum = Certificate::from_items((0..3u32).map(|s| {
            signed(
                &f,
                s,
                Core::Ack {
                    round: 1,
                    vector: vect.clone(),
                },
            )
        }));
        let env = Envelope::make(
            ProcessId(0),
            Core::Decide {
                round: 1,
                vector: vect.clone(),
            },
            ack_quorum.clone(),
            &f.keys[0],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        // The same certificate under the HR table is a forgery: HR decides
        // on CURRENT votes, which the certificate lacks.
        let hr = fixture();
        let env_hr = Envelope::make(
            ProcessId(0),
            Core::Decide {
                round: 1,
                vector: vect,
            },
            ack_quorum,
            &hr.keys[0],
        );
        let err = hr.checker.check_envelope(&env_hr).unwrap_err();
        assert!(err.reason.contains("CURRENT"));
    }

    #[test]
    fn wrong_width_vector_is_syntax_fault() {
        let f = fixture();
        let env = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: ValueVector::empty(2), // width 2 ≠ n = 4
            },
            init_quorum(&f),
            &f.keys[0],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::WrongSyntax);
    }

    /// A quorum of signed CURRENT(round, vect) — the HR decide-vote
    /// evidence a checkpoint carries.
    fn current_quorum(f: &Fixture, round: Round, vect: &ValueVector) -> Certificate {
        Certificate::from_items((0..3u32).map(|s| {
            signed(
                f,
                s,
                Core::Current {
                    round,
                    vector: vect.clone(),
                },
            )
        }))
    }

    #[test]
    fn valid_checkpoint_passes_under_both_protocols() {
        let vect = witnessed_vector();
        // HR: CURRENT quorum backs the checkpoint.
        let f = fixture();
        let env = crate::checkpoint::make_checkpoint(
            ProtocolId::HurfinRaynal,
            7,
            &vect,
            current_quorum(&f, 2, &vect),
            ProcessId(1),
            &f.keys[1],
        );
        assert!(f.checker.check_envelope(&env).is_ok());
        // CT: ACK quorum backs the checkpoint.
        let ct = ct_fixture();
        let ack_quorum = Certificate::from_items((0..3u32).map(|s| {
            signed(
                &ct,
                s,
                Core::Ack {
                    round: 2,
                    vector: vect.clone(),
                },
            )
        }));
        let env_ct = crate::checkpoint::make_checkpoint(
            ProtocolId::ChandraToueg,
            7,
            &vect,
            ack_quorum,
            ProcessId(1),
            &ct.keys[1],
        );
        assert!(ct.checker.check_envelope(&env_ct).is_ok());
    }

    #[test]
    fn forged_checkpoint_digest_is_convicted() {
        let f = fixture();
        let vect = witnessed_vector();
        // The quorum certifies `vect`, but the digest commits to a
        // different vector: the classic forged-compaction attack.
        let mut other = vect.clone();
        other.set(3, 99);
        let env = crate::checkpoint::make_checkpoint(
            ProtocolId::HurfinRaynal,
            7,
            &other,
            current_quorum(&f, 2, &vect),
            ProcessId(1),
            &f.keys[1],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
        assert_eq!(err.culprit, ProcessId(1));
        assert!(err.reason.contains("does not match"));
    }

    #[test]
    fn sub_quorum_checkpoint_is_convicted() {
        let f = fixture();
        let vect = witnessed_vector();
        // Two votes where n−F = 3 are required.
        let sub = Certificate::from_items((0..2u32).map(|s| {
            signed(
                &f,
                s,
                Core::Current {
                    round: 2,
                    vector: vect.clone(),
                },
            )
        }));
        let env = crate::checkpoint::make_checkpoint(
            ProtocolId::HurfinRaynal,
            7,
            &vect,
            sub,
            ProcessId(1),
            &f.keys[1],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
        assert!(err.reason.contains("lacks n−F"));
    }

    #[test]
    fn checkpoint_quorum_must_be_distinct_senders() {
        let f = fixture();
        let vect = witnessed_vector();
        // Three votes but only two distinct signers: p0 repeated.
        let dup = Certificate::from_items([0u32, 0, 1].into_iter().map(|s| {
            signed(
                &f,
                s,
                Core::Current {
                    round: 2,
                    vector: vect.clone(),
                },
            )
        }));
        let env = crate::checkpoint::make_checkpoint(
            ProtocolId::HurfinRaynal,
            7,
            &vect,
            dup,
            ProcessId(1),
            &f.keys[1],
        );
        assert!(f.checker.check_envelope(&env).is_err());
    }

    #[test]
    fn checkpoint_quorum_must_not_straddle_rounds() {
        let f = fixture();
        let vect = witnessed_vector();
        // Three distinct signers of the same vector, but across two rounds:
        // no single round reaches n−F, so this is still sub-quorum.
        let straddle = Certificate::from_items([(0u32, 1u64), (1, 1), (2, 2)].into_iter().map(
            |(s, round)| {
                signed(
                    &f,
                    s,
                    Core::Current {
                        round,
                        vector: vect.clone(),
                    },
                )
            },
        ));
        let env = crate::checkpoint::make_checkpoint(
            ProtocolId::HurfinRaynal,
            7,
            &vect,
            straddle,
            ProcessId(1),
            &f.keys[1],
        );
        let err = f.checker.check_envelope(&env).unwrap_err();
        assert!(err.reason.contains("lacks n−F"));
    }
}
