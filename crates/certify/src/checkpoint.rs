//! Certificate checkpointing: quorum-backed compaction of decided slots.
//!
//! A multi-slot run (the replicated-log workload) accumulates certificate
//! history per slot — every round of every instance leaves behind signed
//! CURRENT/NEXT (or ESTIMATE/PROPOSE/ACK/NACK) evidence. Retaining all of
//! it makes audit memory grow linearly in the number of slots, which is
//! exactly what the long-horizon soak runs cannot afford.
//!
//! The checkpoint message bounds that cost. Once slot `k` decides locally,
//! the decider already holds the decide-vote quorum — `n − F` signed
//! `CURRENT(r, vect)` votes under Hurfin–Raynal, `ACK(r, vect)` under
//! Chandra–Toueg. A [`Core::Checkpoint`] commits to the decided vector via
//! [`checkpoint_digest`] and carries that quorum as its certificate, so a
//! single envelope replaces the slot's entire per-round certificate
//! prefix:
//!
//! * **soundness** — the digest is recomputable from the quorum's vector,
//!   so a forged digest (or a digest over a different vector than the
//!   quorum certifies) fails [`crate::CertChecker::check_checkpoint`] and
//!   convicts the sender with `bad-certificate`;
//! * **cardinality** — fewer than `n − F` distinct matching votes is a
//!   sub-quorum checkpoint and is rejected the same way;
//! * **boundedness** — retained evidence per slot collapses from
//!   `O(rounds · n)` signed items to one envelope whose certificate holds
//!   exactly one quorum.
//!
//! Checkpoints are formed *locally* from evidence the decider already
//! holds — no extra wire traffic — so enabling compaction never perturbs
//! the simulation schedule: compacted and uncompacted runs of the same
//! seed decide identically (enforced by `tests/fault_matrix.rs`).

use ftm_crypto::rsa::KeyPair;
use ftm_crypto::sha256::{Digest, Sha256};
use ftm_crypto::wire::Encoder;
use ftm_sim::ProcessId;

use crate::certificate::Certificate;
use crate::message::{Core, MessageKind, ProtocolId, ValueVector};
use crate::signed::Envelope;

/// The vote kind whose quorum decides — and therefore backs a checkpoint —
/// under `protocol`.
pub fn decide_vote_kind(protocol: ProtocolId) -> MessageKind {
    match protocol {
        ProtocolId::HurfinRaynal => MessageKind::Current,
        ProtocolId::ChandraToueg => MessageKind::Ack,
    }
}

/// The digest a slot-`slot` checkpoint must carry: a commitment to
/// `(protocol, slot, vector)` over the canonical encoding, so two replicas
/// that decided the same vector compute the same digest and the analyzer
/// can recompute it from the attached quorum.
pub fn checkpoint_digest(protocol: ProtocolId, slot: u64, vector: &ValueVector) -> Digest {
    let mut enc = Encoder::new();
    enc.bytes(b"ftm-checkpoint");
    enc.bytes(protocol.label().as_bytes());
    enc.u64(slot);
    enc.nested(vector);
    Sha256::digest(&enc.into_bytes())
}

/// Builds the checkpoint envelope sealing `slot` with decided `vector`,
/// signed by `me` and certified by `evidence` (the decide-vote quorum `me`
/// collected when the slot decided).
///
/// The caller is responsible for `evidence` actually holding the quorum —
/// [`crate::CertChecker::check_checkpoint`] is the audit on the receiving
/// side, and the compacted-log layer re-checks its own checkpoints before
/// retaining them.
pub fn make_checkpoint(
    protocol: ProtocolId,
    slot: u64,
    vector: &ValueVector,
    evidence: Certificate,
    me: ProcessId,
    key: &KeyPair,
) -> Envelope {
    let digest = checkpoint_digest(protocol, slot, vector);
    Envelope::make(me, Core::Checkpoint { slot, digest }, evidence, key)
}

/// Recovers the decided vector a checkpoint envelope certifies: the
/// unique vector backed by `quorum` distinct signed decide-votes whose
/// [`checkpoint_digest`] matches the envelope's claimed digest.
///
/// This is the read side of [`CertChecker::check_checkpoint`]'s rule — a
/// replica catching up from a peer's checkpoint extracts the slot content
/// from the quorum itself rather than trusting any unsigned field.
/// Returns `None` for non-checkpoint envelopes or when no matching quorum
/// exists; callers must still run the full
/// [`check_envelope`](crate::CertChecker::check_envelope) admission first
/// (this helper does not verify signatures).
///
/// [`CertChecker::check_checkpoint`]: crate::CertChecker::check_checkpoint
pub fn checkpoint_vector(
    protocol: ProtocolId,
    quorum: usize,
    env: &Envelope,
) -> Option<ValueVector> {
    let Core::Checkpoint { slot, digest } = env.core() else {
        return None;
    };
    let vote_kind = decide_vote_kind(protocol);
    let mut groups: std::collections::BTreeMap<
        (crate::message::Round, &ValueVector),
        std::collections::BTreeSet<ProcessId>,
    > = std::collections::BTreeMap::new();
    for item in env.cert.iter() {
        if item.kind() == vote_kind {
            if let Some(vector) = item.core().core.vector() {
                groups
                    .entry((item.round(), vector))
                    .or_default()
                    .insert(item.sender());
            }
        }
    }
    groups
        .into_iter()
        .find(|((_, vector), senders)| {
            senders.len() >= quorum && checkpoint_digest(protocol, *slot, vector) == *digest
        })
        .map(|((_, vector), _)| vector.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_binds_protocol_slot_and_vector() {
        let v = ValueVector::from_entries(vec![Some(1), Some(2), None]);
        let base = checkpoint_digest(ProtocolId::HurfinRaynal, 3, &v);
        assert_eq!(base, checkpoint_digest(ProtocolId::HurfinRaynal, 3, &v));
        assert_ne!(base, checkpoint_digest(ProtocolId::ChandraToueg, 3, &v));
        assert_ne!(base, checkpoint_digest(ProtocolId::HurfinRaynal, 4, &v));
        let mut w = v.clone();
        w.set(2, 9);
        assert_ne!(base, checkpoint_digest(ProtocolId::HurfinRaynal, 3, &w));
    }

    #[test]
    fn vote_kind_follows_the_protocol() {
        assert_eq!(
            decide_vote_kind(ProtocolId::HurfinRaynal),
            MessageKind::Current
        );
        assert_eq!(decide_vote_kind(ProtocolId::ChandraToueg), MessageKind::Ack);
    }

    #[test]
    fn make_checkpoint_signs_the_committed_digest() {
        let mut rng = ftm_crypto::rng_from_seed(7);
        let key = KeyPair::generate(&mut rng, 128);
        let v = ValueVector::from_entries(vec![Some(5), None]);
        let env = make_checkpoint(
            ProtocolId::HurfinRaynal,
            2,
            &v,
            Certificate::default(),
            ProcessId(1),
            &key,
        );
        assert_eq!(env.kind(), MessageKind::Checkpoint);
        let Core::Checkpoint { slot, digest } = env.core() else {
            panic!("not a checkpoint");
        };
        assert_eq!(*slot, 2);
        assert_eq!(*digest, checkpoint_digest(ProtocolId::HurfinRaynal, 2, &v));
    }
}
