//! Wire message cores for the transformed (Byzantine-resilient) protocol.
//!
//! The transformed Hurfin–Raynal protocol (paper Fig. 3) exchanges four
//! message kinds:
//!
//! * `INIT(p_i, v_i)` — the vector-certification phase: each process signs
//!   and broadcasts its proposal;
//! * `CURRENT(p_i, r, est_vect_i)` — a vote to decide on `est_vect_i` in
//!   round `r`;
//! * `NEXT(p_i, r)` — a vote to move past round `r`;
//! * `DECIDE(p_i, r, est_vect)` — the decision announcement.
//!
//! A [`MessageCore`] is the signed unit: sender identity plus [`Core`]
//! content. Certificates attach around it (see [`crate::signed`]).

use std::fmt;

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode, DecodeError, Decoder, Encoder};
use ftm_sim::ProcessId;

/// A consensus proposal value.
///
/// Kept as a bare `u64` so experiments can label proposals with the
/// proposing process; nothing in the protocol inspects the value.
pub type Value = u64;

/// Asynchronous round number; round 0 is the vector-certification phase.
pub type Round = u64;

/// The vector of proposals the transformed protocol agrees on.
///
/// Entry `k` is `Some(v)` when `p_k`'s INIT carrying `v` is witnessed, or
/// `None` (the paper's `null`) otherwise.
///
/// # Example
///
/// ```
/// use ftm_certify::ValueVector;
/// let mut v = ValueVector::empty(4);
/// v.set(1, 99);
/// assert_eq!(v.get(1), Some(99));
/// assert_eq!(v.non_null_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueVector {
    entries: Vec<Option<Value>>,
}

impl ValueVector {
    /// An all-null vector for `n` processes.
    pub fn empty(n: usize) -> Self {
        ValueVector {
            entries: vec![None; n],
        }
    }

    /// Builds a vector from explicit entries.
    pub fn from_entries(entries: Vec<Option<Value>>) -> Self {
        ValueVector { entries }
    }

    /// Number of entries (= `n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the vector has no entries at all (n = 0).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry `k`, or `None` when null or out of range.
    pub fn get(&self, k: usize) -> Option<Value> {
        self.entries.get(k).copied().flatten()
    }

    /// Sets entry `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn set(&mut self, k: usize, v: Value) {
        self.entries[k] = Some(v);
    }

    /// Number of non-null entries.
    pub fn non_null_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Iterates `(index, value)` over non-null entries.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, Value)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|v| (i, v)))
    }
}

impl fmt::Debug for ValueVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match e {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "·")?,
            }
        }
        write!(f, "]")
    }
}

impl CanonicalEncode for ValueVector {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.entries.len() as u32);
        for e in &self.entries {
            match e {
                None => enc.tag(0),
                Some(v) => {
                    enc.tag(1);
                    enc.u64(*v);
                }
            }
        }
    }
}

impl CanonicalDecode for ValueVector {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.u32()? as usize;
        let mut entries = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            entries.push(if dec.bool()? { Some(dec.u64()?) } else { None });
        }
        Ok(ValueVector { entries })
    }
}

/// Identifies which crash protocol a transformed instance derives from.
///
/// Every per-protocol table in the stack (certification rules, observer
/// automaton shape, round-entry evidence) is selected by this id, so a
/// third protocol plugs in by adding a variant and the matching tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ProtocolId {
    /// Hurfin–Raynal (paper Fig. 2/3): CURRENT/NEXT proposal-vote rounds.
    HurfinRaynal,
    /// Chandra–Toueg: ESTIMATE/PROPOSE/ACK/NACK coordinator-echo rounds.
    ChandraToueg,
}

impl ProtocolId {
    /// Every supported protocol, in sweep order.
    pub fn all() -> [ProtocolId; 2] {
        [ProtocolId::HurfinRaynal, ProtocolId::ChandraToueg]
    }

    /// Short stable label used in scenario cell keys and report sections.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolId::HurfinRaynal => "hr",
            ProtocolId::ChandraToueg => "ct",
        }
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Discriminates the wire message kinds.
///
/// `Init`, `Current`, `Next` and `Decide` belong to the transformed
/// Hurfin–Raynal protocol; `Estimate`, `Propose`, `Ack` and `Nack` belong
/// to the transformed Chandra–Toueg protocol (which shares `Init` for
/// vector certification and `Decide` for the announcement).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MessageKind {
    /// Vector-certification proposal.
    Init,
    /// Vote for deciding in the current round (HR).
    Current,
    /// Vote for moving to the next round (HR).
    Next,
    /// Decision announcement.
    Decide,
    /// Round-opening estimate sent to the coordinator (CT).
    Estimate,
    /// Coordinator's proposal for the round (CT).
    Propose,
    /// Positive echo of the coordinator's proposal (CT).
    Ack,
    /// Negative vote after suspecting the coordinator (CT).
    Nack,
    /// Quorum-backed compaction of a decided log slot's certificate
    /// history (shared by both protocols; never part of a round's vote
    /// sequence).
    Checkpoint,
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::Init => "INIT",
            MessageKind::Current => "CURRENT",
            MessageKind::Next => "NEXT",
            MessageKind::Decide => "DECIDE",
            MessageKind::Estimate => "ESTIMATE",
            MessageKind::Propose => "PROPOSE",
            MessageKind::Ack => "ACK",
            MessageKind::Nack => "NACK",
            MessageKind::Checkpoint => "CHECKPOINT",
        };
        f.write_str(s)
    }
}

/// Message content (without sender or signature).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Core {
    /// `INIT(v)` — proposal of `v` in the vector-certification phase.
    Init {
        /// The proposed value.
        value: Value,
    },
    /// `CURRENT(r, vect)` — vote to decide `vect` in round `r`.
    Current {
        /// The round this vote belongs to.
        round: Round,
        /// The estimate vector being proposed.
        vector: ValueVector,
    },
    /// `NEXT(r)` — vote to abandon round `r`.
    Next {
        /// The round being abandoned.
        round: Round,
    },
    /// `DECIDE(r, vect)` — announcement that `vect` was decided in round
    /// `r`. (Fig. 3 omits the round; carrying it lets the analyzer check
    /// the decision certificate without a round search.)
    Decide {
        /// The round the decision was reached in.
        round: Round,
        /// The decided vector.
        vector: ValueVector,
    },
    /// `ESTIMATE(r, vect, ts)` — CT round opening: the sender's estimate
    /// vector plus the round `ts` in which it was adopted (`ts = 0` means
    /// the INIT-witnessed original). A claimed `ts > 0` must be backed by
    /// the `ts`-coordinator's signed PROPOSE carrying exactly `vect`,
    /// which makes the max-timestamp adoption rule auditable.
    Estimate {
        /// The round this estimate opens.
        round: Round,
        /// The estimate vector.
        vector: ValueVector,
        /// The round the vector was adopted in (0 = initial).
        ts: Round,
    },
    /// `PROPOSE(r, vect)` — the round coordinator's proposal, justified by
    /// a quorum of round-`r` estimates.
    Propose {
        /// The round being coordinated.
        round: Round,
        /// The proposed vector.
        vector: ValueVector,
    },
    /// `ACK(r, vect)` — echo of the coordinator's PROPOSE; binds the voter
    /// to the proposed vector so a DECIDE certificate can quote it.
    Ack {
        /// The round being acknowledged.
        round: Round,
        /// The acknowledged vector.
        vector: ValueVector,
    },
    /// `NACK(r)` — vote to abandon round `r` after suspecting its
    /// coordinator (local suspicion, structurally unverifiable).
    Nack {
        /// The round being abandoned.
        round: Round,
    },
    /// `CHECKPOINT(slot, digest)` — compaction marker for a decided log
    /// slot: `digest` commits to `(protocol, slot, decided vector)` (see
    /// [`crate::checkpoint::checkpoint_digest`]) and the attached
    /// certificate must hold the `n − F` decide-vote quorum for exactly
    /// that vector. Once checked, the checkpoint replaces the slot's
    /// accumulated per-round certificates, so retained evidence stays flat
    /// in the number of slots.
    Checkpoint {
        /// The decided log slot this checkpoint seals.
        slot: u64,
        /// Digest committing to the slot's decided vector.
        digest: ftm_crypto::sha256::Digest,
    },
}

impl Core {
    /// The message kind.
    pub fn kind(&self) -> MessageKind {
        match self {
            Core::Init { .. } => MessageKind::Init,
            Core::Current { .. } => MessageKind::Current,
            Core::Next { .. } => MessageKind::Next,
            Core::Decide { .. } => MessageKind::Decide,
            Core::Estimate { .. } => MessageKind::Estimate,
            Core::Propose { .. } => MessageKind::Propose,
            Core::Ack { .. } => MessageKind::Ack,
            Core::Nack { .. } => MessageKind::Nack,
            Core::Checkpoint { .. } => MessageKind::Checkpoint,
        }
    }

    /// The round the message belongs to (INIT and CHECKPOINT belong to
    /// round 0 — both live outside the round structure).
    pub fn round(&self) -> Round {
        match self {
            Core::Init { .. } | Core::Checkpoint { .. } => 0,
            Core::Current { round, .. }
            | Core::Next { round }
            | Core::Decide { round, .. }
            | Core::Estimate { round, .. }
            | Core::Propose { round, .. }
            | Core::Ack { round, .. }
            | Core::Nack { round } => *round,
        }
    }

    /// The vector carried, if the kind carries one.
    pub fn vector(&self) -> Option<&ValueVector> {
        match self {
            Core::Current { vector, .. }
            | Core::Decide { vector, .. }
            | Core::Estimate { vector, .. }
            | Core::Propose { vector, .. }
            | Core::Ack { vector, .. } => Some(vector),
            _ => None,
        }
    }
}

/// The signed unit: who says what.
///
/// Its canonical encoding is the exact byte string a signature covers.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MessageCore {
    /// Claimed sender.
    pub sender: ProcessId,
    /// Content.
    pub core: Core,
}

impl MessageCore {
    /// Convenience constructor.
    pub fn new(sender: ProcessId, core: Core) -> Self {
        MessageCore { sender, core }
    }

    /// Short trace label, e.g. `CURRENT(r=2)`.
    pub fn label(&self) -> String {
        match &self.core {
            Core::Init { value } => format!("INIT(v={value})"),
            Core::Current { round, .. } => format!("CURRENT(r={round})"),
            Core::Next { round } => format!("NEXT(r={round})"),
            Core::Decide { round, .. } => format!("DECIDE(r={round})"),
            Core::Estimate { round, ts, .. } => format!("ESTIMATE(r={round},ts={ts})"),
            Core::Propose { round, .. } => format!("PROPOSE(r={round})"),
            Core::Ack { round, .. } => format!("ACK(r={round})"),
            Core::Nack { round } => format!("NACK(r={round})"),
            Core::Checkpoint { slot, .. } => format!("CHECKPOINT(s={slot})"),
        }
    }
}

impl CanonicalEncode for MessageCore {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.sender.0);
        match &self.core {
            Core::Init { value } => {
                enc.tag(1);
                enc.u64(*value);
            }
            Core::Current { round, vector } => {
                enc.tag(2);
                enc.u64(*round);
                vector.encode(enc);
            }
            Core::Next { round } => {
                enc.tag(3);
                enc.u64(*round);
            }
            Core::Decide { round, vector } => {
                enc.tag(4);
                enc.u64(*round);
                vector.encode(enc);
            }
            Core::Estimate { round, vector, ts } => {
                enc.tag(5);
                enc.u64(*round);
                vector.encode(enc);
                enc.u64(*ts);
            }
            Core::Propose { round, vector } => {
                enc.tag(6);
                enc.u64(*round);
                vector.encode(enc);
            }
            Core::Ack { round, vector } => {
                enc.tag(7);
                enc.u64(*round);
                vector.encode(enc);
            }
            Core::Nack { round } => {
                enc.tag(8);
                enc.u64(*round);
            }
            Core::Checkpoint { slot, digest } => {
                enc.tag(9);
                enc.u64(*slot);
                digest.encode(enc);
            }
        }
    }
}

impl CanonicalDecode for MessageCore {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let sender = ProcessId(dec.u32()?);
        let core = match dec.tag()? {
            1 => Core::Init { value: dec.u64()? },
            2 => Core::Current {
                round: dec.u64()?,
                vector: ValueVector::decode(dec)?,
            },
            3 => Core::Next { round: dec.u64()? },
            4 => Core::Decide {
                round: dec.u64()?,
                vector: ValueVector::decode(dec)?,
            },
            5 => Core::Estimate {
                round: dec.u64()?,
                vector: ValueVector::decode(dec)?,
                ts: dec.u64()?,
            },
            6 => Core::Propose {
                round: dec.u64()?,
                vector: ValueVector::decode(dec)?,
            },
            7 => Core::Ack {
                round: dec.u64()?,
                vector: ValueVector::decode(dec)?,
            },
            8 => Core::Nack { round: dec.u64()? },
            9 => Core::Checkpoint {
                slot: dec.u64()?,
                digest: ftm_crypto::sha256::Digest::decode(dec)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        Ok(MessageCore { sender, core })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_set_get_count() {
        let mut v = ValueVector::empty(3);
        assert_eq!(v.non_null_count(), 0);
        v.set(0, 7);
        v.set(2, 9);
        assert_eq!(v.get(0), Some(7));
        assert_eq!(v.get(1), None);
        assert_eq!(v.get(9), None);
        assert_eq!(v.non_null_count(), 2);
        assert_eq!(v.iter_set().collect::<Vec<_>>(), vec![(0, 7), (2, 9)]);
    }

    #[test]
    fn vector_debug_is_compact() {
        let v = ValueVector::from_entries(vec![Some(1), None, Some(3)]);
        assert_eq!(format!("{v:?}"), "[1 · 3]");
    }

    #[test]
    fn distinct_vectors_encode_distinctly() {
        let a = ValueVector::from_entries(vec![Some(0), None]);
        let b = ValueVector::from_entries(vec![None, Some(0)]);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn core_kind_round_vector_accessors() {
        let v = ValueVector::empty(2);
        let c = Core::Current {
            round: 5,
            vector: v.clone(),
        };
        assert_eq!(c.kind(), MessageKind::Current);
        assert_eq!(c.round(), 5);
        assert_eq!(c.vector(), Some(&v));
        assert_eq!(Core::Init { value: 1 }.round(), 0);
        assert_eq!(Core::Next { round: 2 }.vector(), None);
    }

    #[test]
    fn cores_with_different_senders_encode_distinctly() {
        let a = MessageCore::new(ProcessId(0), Core::Next { round: 1 });
        let b = MessageCore::new(ProcessId(1), Core::Next { round: 1 });
        assert_ne!(a.canonical_digest(), b.canonical_digest());
    }

    #[test]
    fn equal_cores_encode_identically() {
        let mk = || MessageCore::new(ProcessId(3), Core::Init { value: 42 });
        assert_eq!(mk().canonical_bytes(), mk().canonical_bytes());
    }

    #[test]
    fn cores_roundtrip_through_canonical_bytes() {
        let cases = [
            MessageCore::new(ProcessId(0), Core::Init { value: 7 }),
            MessageCore::new(
                ProcessId(3),
                Core::Current {
                    round: 9,
                    vector: ValueVector::from_entries(vec![Some(1), None, Some(3)]),
                },
            ),
            MessageCore::new(ProcessId(1), Core::Next { round: 2 }),
            MessageCore::new(
                ProcessId(2),
                Core::Decide {
                    round: 5,
                    vector: ValueVector::empty(2),
                },
            ),
            MessageCore::new(
                ProcessId(0),
                Core::Estimate {
                    round: 2,
                    vector: ValueVector::from_entries(vec![Some(4), None]),
                    ts: 1,
                },
            ),
            MessageCore::new(
                ProcessId(1),
                Core::Propose {
                    round: 2,
                    vector: ValueVector::empty(3),
                },
            ),
            MessageCore::new(
                ProcessId(2),
                Core::Ack {
                    round: 2,
                    vector: ValueVector::empty(3),
                },
            ),
            MessageCore::new(ProcessId(3), Core::Nack { round: 2 }),
            MessageCore::new(
                ProcessId(1),
                Core::Checkpoint {
                    slot: 17,
                    digest: ftm_crypto::sha256::Sha256::digest(b"slot-17"),
                },
            ),
        ];
        for core in cases {
            let bytes = core.canonical_bytes();
            assert_eq!(MessageCore::from_canonical_bytes(&bytes), Ok(core));
        }
    }

    #[test]
    fn corrupted_tag_is_rejected() {
        let core = MessageCore::new(ProcessId(0), Core::Init { value: 7 });
        let mut bytes = core.canonical_bytes();
        bytes[4] = 99; // the kind tag
        assert_eq!(
            MessageCore::from_canonical_bytes(&bytes),
            Err(DecodeError::BadTag(99))
        );
    }

    #[test]
    fn labels_are_compact() {
        let m = MessageCore::new(ProcessId(0), Core::Next { round: 9 });
        assert_eq!(m.label(), "NEXT(r=9)");
        assert_eq!(MessageKind::Decide.to_string(), "DECIDE");
        let e = MessageCore::new(
            ProcessId(0),
            Core::Estimate {
                round: 3,
                vector: ValueVector::empty(1),
                ts: 1,
            },
        );
        assert_eq!(e.label(), "ESTIMATE(r=3,ts=1)");
        assert_eq!(MessageKind::Nack.to_string(), "NACK");
        let cp = MessageCore::new(
            ProcessId(2),
            Core::Checkpoint {
                slot: 4,
                digest: ftm_crypto::sha256::Sha256::digest(b"x"),
            },
        );
        assert_eq!(cp.label(), "CHECKPOINT(s=4)");
        assert_eq!(MessageKind::Checkpoint.to_string(), "CHECKPOINT");
        assert_eq!(cp.core.kind(), MessageKind::Checkpoint);
        assert_eq!(cp.core.round(), 0);
        assert_eq!(cp.core.vector(), None);
    }

    #[test]
    fn ct_core_accessors() {
        let v = ValueVector::from_entries(vec![Some(1)]);
        let e = Core::Estimate {
            round: 4,
            vector: v.clone(),
            ts: 2,
        };
        assert_eq!(e.kind(), MessageKind::Estimate);
        assert_eq!(e.round(), 4);
        assert_eq!(e.vector(), Some(&v));
        let a = Core::Ack {
            round: 4,
            vector: v.clone(),
        };
        assert_eq!(a.kind(), MessageKind::Ack);
        assert_eq!(a.vector(), Some(&v));
        assert_eq!(Core::Nack { round: 4 }.vector(), None);
        assert_eq!(
            Core::Propose {
                round: 4,
                vector: v
            }
            .round(),
            4
        );
    }

    #[test]
    fn protocol_ids_label_and_enumerate() {
        assert_eq!(ProtocolId::HurfinRaynal.to_string(), "hr");
        assert_eq!(ProtocolId::ChandraToueg.to_string(), "ct");
        assert_eq!(ProtocolId::all().len(), 2);
    }
}
