//! Signed message cores and wire envelopes — the signature module's data.

use std::fmt;
use std::sync::Arc;

use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::rsa::{KeyPair, Signature};
use ftm_crypto::sha256::Digest;
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode, DecodeError, Decoder, Encoder};
use ftm_sim::{LayerSplit, Payload, ProcessId};

use crate::certificate::Certificate;
use crate::error::{CertifyError, FaultClass};
use crate::message::{Core, MessageCore, MessageKind, Round};

/// A message core plus the sender's signature over its canonical bytes.
///
/// Cores are shared (`Arc`) because certificates reference the same signed
/// statements many times across a run.
///
/// # Example
///
/// ```
/// use ftm_certify::{Core, MessageCore, SignedCore};
/// use ftm_crypto::keydir::KeyDirectory;
/// use ftm_sim::ProcessId;
///
/// let mut rng = ftm_crypto::rng_from_seed(5);
/// let (dir, keys) = KeyDirectory::generate(&mut rng, 2, 128);
/// let sc = SignedCore::sign(MessageCore::new(ProcessId(0), Core::Init { value: 9 }), &keys[0]);
/// assert!(sc.verify(&dir).is_ok());
/// ```
#[derive(Clone)]
pub struct SignedCore {
    core: Arc<MessageCore>,
    signature: Signature,
    digest: Digest,
}

impl SignedCore {
    /// Signs `core` with `keys` (which should be the sender's key pair —
    /// fault injectors deliberately violate this).
    pub fn sign(core: MessageCore, keys: &KeyPair) -> Self {
        let digest = core.canonical_digest();
        let signature = keys.sign_digest(&digest);
        SignedCore {
            core: Arc::new(core),
            signature,
            digest,
        }
    }

    /// Assembles a signed core from parts (used by forgery injectors).
    pub fn from_parts(core: MessageCore, signature: Signature) -> Self {
        let digest = core.canonical_digest();
        SignedCore {
            core: Arc::new(core),
            signature,
            digest,
        }
    }

    /// The signed statement.
    pub fn core(&self) -> &MessageCore {
        &self.core
    }

    /// The claimed sender.
    pub fn sender(&self) -> ProcessId {
        self.core.sender
    }

    /// Kind shorthand.
    pub fn kind(&self) -> MessageKind {
        self.core.core.kind()
    }

    /// Round shorthand.
    pub fn round(&self) -> Round {
        self.core.core.round()
    }

    /// Digest of the canonical core bytes (identity for dedup).
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// Raw signature bytes (wire accounting, forensics and fuzz tests).
    pub fn signature_bytes(&self) -> Vec<u8> {
        self.signature.to_bytes()
    }

    /// Verifies the signature against the claimed sender's directory key.
    ///
    /// # Errors
    ///
    /// Returns a [`CertifyError`] with class
    /// [`FaultClass::BadSignature`] naming the claimed sender.
    pub fn verify(&self, dir: &KeyDirectory) -> Result<(), CertifyError> {
        dir.verify_digest(self.core.sender.0, &self.digest, &self.signature)
            .map_err(|_| {
                CertifyError::new(
                    self.core.sender,
                    FaultClass::BadSignature,
                    "core signature does not verify for claimed sender",
                )
            })
    }

    /// On-the-wire size: canonical core bytes plus signature bytes.
    pub fn size_bytes(&self) -> usize {
        self.core.canonical_bytes().len() + self.signature.size_bytes()
    }
}

impl CanonicalEncode for SignedCore {
    fn encode(&self, enc: &mut Encoder) {
        enc.nested(&*self.core);
        enc.bytes(&self.signature.to_bytes());
    }
}

impl CanonicalDecode for SignedCore {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let core = MessageCore::decode(dec)?;
        let sig = Signature::from_bytes(&dec.bytes()?);
        Ok(SignedCore::from_parts(core, sig))
    }
}

impl fmt::Debug for SignedCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signed⟨{} {}⟩", self.core.sender, self.core.label())
    }
}

impl PartialEq for SignedCore {
    fn eq(&self, other: &Self) -> bool {
        // Signed statements are equal when the statement is: RSA signatures
        // here are deterministic, and a second valid signature over the
        // same core carries no extra information.
        self.digest == other.digest
    }
}
impl Eq for SignedCore {}

/// What actually travels on the simulated network: a signed core plus the
/// certificate justifying it.
#[derive(Clone, PartialEq)]
pub struct Envelope {
    /// The signed message.
    pub signed: SignedCore,
    /// Justification: a set of signed cores (possibly empty, e.g. INIT).
    pub cert: Certificate,
}

impl CanonicalEncode for Envelope {
    fn encode(&self, enc: &mut Encoder) {
        enc.nested(&self.signed);
        let items: Vec<&SignedCore> = self.cert.iter().collect();
        enc.u32(items.len() as u32);
        for item in items {
            item.encode(enc);
        }
    }
}

impl CanonicalDecode for Envelope {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let signed = SignedCore::decode(dec)?;
        let len = dec.u32()? as usize;
        let mut cert = Certificate::new();
        for _ in 0..len {
            cert.insert(SignedCore::decode(dec)?);
        }
        Ok(Envelope { signed, cert })
    }
}

impl Envelope {
    /// Serializes the envelope to wire bytes (what a real network
    /// deployment would transmit; the simulator passes typed values but
    /// the codec is part of the public API and fully round-trips).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.canonical_bytes()
    }

    /// Reconstructs an envelope from wire bytes. The structure is
    /// validated here; signatures and certificates are validated by the
    /// receive pipeline as usual.
    ///
    /// # Errors
    ///
    /// Any structural corruption ([`DecodeError`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        Self::from_canonical_bytes(bytes)
    }

    /// Builds and signs an envelope in one step.
    pub fn make(sender: ProcessId, core: Core, cert: Certificate, keys: &KeyPair) -> Self {
        Envelope {
            signed: SignedCore::sign(MessageCore::new(sender, core), keys),
            cert,
        }
    }

    /// Claimed sender shorthand.
    pub fn sender(&self) -> ProcessId {
        self.signed.sender()
    }

    /// Kind shorthand.
    pub fn kind(&self) -> MessageKind {
        self.signed.kind()
    }

    /// Round shorthand.
    pub fn round(&self) -> Round {
        self.signed.round()
    }

    /// Content shorthand.
    pub fn core(&self) -> &Core {
        &self.signed.core().core
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Envelope⟨{} {} +cert:{}⟩",
            self.sender(),
            self.signed.core().label(),
            self.cert.len()
        )
    }
}

impl Payload for Envelope {
    fn size_bytes(&self) -> usize {
        self.signed.size_bytes() + self.cert.size_bytes()
    }

    fn label(&self) -> String {
        format!("{} cert={}", self.signed.core().label(), self.cert.len())
    }

    fn layer_split(&self) -> LayerSplit {
        // The wire envelope decomposes exactly: the protocol core's
        // canonical bytes, the signature layer's bytes over that core, and
        // the certification layer's carried evidence (certificate items,
        // cores *and* their signatures — the evidence only exists because
        // of certification).
        let signature_bytes = self.signed.signature.size_bytes();
        let certificate_bytes = self.cert.size_bytes();
        LayerSplit {
            signature_bytes,
            certificate_bytes,
            protocol_bytes: self.size_bytes() - signature_bytes - certificate_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ValueVector;

    fn setup() -> (KeyDirectory, Vec<KeyPair>) {
        let mut rng = ftm_crypto::rng_from_seed(21);
        KeyDirectory::generate(&mut rng, 3, 128)
    }

    fn init(sender: u32, value: u64, keys: &KeyPair) -> SignedCore {
        SignedCore::sign(
            MessageCore::new(ProcessId(sender), Core::Init { value }),
            keys,
        )
    }

    #[test]
    fn valid_signature_verifies() {
        let (dir, keys) = setup();
        assert!(init(0, 5, &keys[0]).verify(&dir).is_ok());
    }

    #[test]
    fn impersonation_is_caught_and_classified() {
        let (dir, keys) = setup();
        // p1 signs a core claiming to be p0.
        let forged = init(0, 5, &keys[1]);
        let err = forged.verify(&dir).unwrap_err();
        assert_eq!(err.class, FaultClass::BadSignature);
        assert_eq!(err.culprit, ProcessId(0)); // the *claimed* sender
    }

    #[test]
    fn tampered_core_is_caught() {
        let (dir, keys) = setup();
        let honest = init(0, 5, &keys[0]);
        // Re-assemble with a different value but the old signature.
        let tampered = SignedCore::from_parts(
            MessageCore::new(ProcessId(0), Core::Init { value: 6 }),
            honest.signature.clone(),
        );
        assert!(tampered.verify(&dir).is_err());
    }

    #[test]
    fn equality_is_by_statement() {
        let (_, keys) = setup();
        assert_eq!(init(0, 5, &keys[0]), init(0, 5, &keys[0]));
        assert_ne!(init(0, 5, &keys[0]), init(0, 6, &keys[0]));
        assert_ne!(init(0, 5, &keys[0]), init(1, 5, &keys[0]));
    }

    #[test]
    fn repeated_envelope_verification_is_amortized_by_the_directory_cache() {
        let (dir, keys) = setup();
        let sc = init(0, 5, &keys[0]);
        // First verification computes; every later layer re-checking the
        // same signed statement (analyzer, certificates, self-audit) is
        // answered from the directory's verdict memo.
        assert!(sc.verify(&dir).is_ok());
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (0, 1));
        assert!(sc.verify(&dir).is_ok());
        assert!(sc.verify(&dir.clone()).is_ok());
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (2, 1));
        // A forgery over the same core is a different triple — and its
        // rejection is memoized too.
        let forged = init(0, 5, &keys[1]);
        assert!(forged.verify(&dir).is_err());
        assert!(forged.verify(&dir).is_err());
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (3, 2));
    }

    #[test]
    fn envelope_roundtrips_through_wire_bytes() {
        let (dir, keys) = setup();
        let inner = init(0, 5, &keys[0]);
        let env = Envelope::make(
            ProcessId(1),
            Core::Current {
                round: 2,
                vector: ValueVector::from_entries(vec![Some(5), None, Some(7)]),
            },
            crate::certificate::Certificate::from_items([inner]),
            &keys[1],
        );
        let bytes = env.to_bytes();
        let back = Envelope::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, env);
        // The signature survives the trip and still verifies.
        assert!(back.signed.verify(&dir).is_ok());
        assert_eq!(back.cert.len(), 1);
    }

    #[test]
    fn truncated_wire_bytes_are_rejected() {
        let (_, keys) = setup();
        let env = Envelope::make(
            ProcessId(0),
            Core::Init { value: 1 },
            Certificate::new(),
            &keys[0],
        );
        let bytes = env.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Envelope::from_bytes(&bytes[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn layer_split_decomposes_wire_bytes_exactly() {
        let (_, keys) = setup();
        let core = MessageCore::new(ProcessId(1), Core::Init { value: 5 });
        let witness = SignedCore::sign(core, &keys[1]);
        let mut cert = Certificate::new();
        cert.insert(witness);
        let env = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: ValueVector::empty(3),
            },
            cert,
            &keys[0],
        );
        let split = env.layer_split();
        assert_eq!(split.total(), env.size_bytes());
        assert!(split.signature_bytes > 0, "signature layer unaccounted");
        assert!(split.certificate_bytes > 0, "certificate layer unaccounted");
        assert!(split.protocol_bytes > 0, "protocol core unaccounted");

        // A certificate-free INIT still pays the signature layer.
        let bare = Envelope::make(
            ProcessId(0),
            Core::Init { value: 9 },
            Certificate::new(),
            &keys[0],
        );
        let bare_split = bare.layer_split();
        assert_eq!(bare_split.certificate_bytes, 0);
        assert!(bare_split.signature_bytes > 0);
        assert_eq!(bare_split.total(), bare.size_bytes());
    }

    #[test]
    fn envelope_accessors_and_size() {
        let (_, keys) = setup();
        let env = Envelope::make(
            ProcessId(2),
            Core::Current {
                round: 1,
                vector: ValueVector::empty(3),
            },
            Certificate::new(),
            &keys[2],
        );
        assert_eq!(env.sender(), ProcessId(2));
        assert_eq!(env.kind(), MessageKind::Current);
        assert_eq!(env.round(), 1);
        assert!(env.size_bytes() > 0);
        assert!(env.label().contains("CURRENT(r=1)"));
    }
}
