//! Adversarial fuzzing of the certificate analyzer: starting from a valid
//! envelope, any *semantically meaningful* random mutation must either be
//! rejected or leave the message equal to a valid one. This is the
//! executable form of the paper's reliability requirement on the
//! certification module: no process can tamper with a message or its
//! certificate without being detected.
//!
//! Mutations are drawn from the in-tree seeded PRNG, so each failing case
//! is identified by its iteration number and replays identically.

use ftm_certify::analyzer::CertChecker;
use ftm_certify::{Certificate, Core, Envelope, MessageCore, SignedCore, ValueVector};
use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::prng::{Rng64, SplitMix64};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::ProcessId;

const N: usize = 4;
const F: usize = 1;

fn fixture() -> (CertChecker, Vec<KeyPair>) {
    let mut rng = ftm_crypto::rng_from_seed(0xFEED);
    let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
    (CertChecker::new(N, F, dir), keys)
}

fn signed(keys: &[KeyPair], sender: u32, core: Core) -> SignedCore {
    SignedCore::sign(
        MessageCore::new(ProcessId(sender), core),
        &keys[sender as usize],
    )
}

/// A valid coordinator CURRENT(1, vect) with its INIT witness quorum.
fn valid_current(keys: &[KeyPair]) -> (Envelope, ValueVector) {
    let mut vect = ValueVector::empty(N);
    let mut cert = Certificate::new();
    for s in 0..(N - F) as u32 {
        vect.set(s as usize, 100 + s as u64);
        cert.insert(signed(
            keys,
            s,
            Core::Init {
                value: 100 + s as u64,
            },
        ));
    }
    (
        Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: vect.clone(),
            },
            cert,
            &keys[0],
        ),
        vect,
    )
}

/// A valid DECIDE(1, vect) backed by a CURRENT quorum.
fn valid_decide(keys: &[KeyPair], vect: &ValueVector) -> Envelope {
    let cert = Certificate::from_items((0..(N - F) as u32).map(|s| {
        signed(
            keys,
            s,
            Core::Current {
                round: 1,
                vector: vect.clone(),
            },
        )
    }));
    Envelope::make(
        ProcessId(0),
        Core::Decide {
            round: 1,
            vector: vect.clone(),
        },
        cert,
        &keys[0],
    )
}

/// Mutating any vector entry of a signed CURRENT — with a re-sign by
/// the sender, as a Byzantine process would — must be rejected unless
/// the mutation is the identity.
#[test]
fn mutated_current_vectors_are_rejected() {
    let (checker, keys) = fixture();
    let (env, vect) = valid_current(&keys);
    assert!(checker.check_envelope(&env).is_ok());

    let mut rng = SplitMix64::from_seed(0xF0221);
    for case in 0..64 {
        let entry = rng.gen_range_u64(0, N as u64 - 1) as usize;
        let value = rng.gen_range_u64(0, 1999);

        let mut mutated = vect.clone();
        mutated.set(entry, value);
        let forged = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: mutated.clone(),
            },
            env.cert.clone(),
            &keys[0],
        );
        if mutated == vect {
            assert!(checker.check_envelope(&forged).is_ok(), "case {case}");
        } else {
            assert!(checker.check_envelope(&forged).is_err(), "case {case}");
        }
    }
}

/// Claiming any other sender for a valid envelope must be rejected
/// (even with a re-sign by the claimed sender's *actual* key being
/// unavailable, the attacker can only sign as itself).
#[test]
fn reattributed_messages_are_rejected() {
    let (checker, keys) = fixture();
    let (env, vect) = valid_current(&keys);
    for claimed in 1..N as u32 {
        // The attacker (p3) re-signs the coordinator's message claiming
        // `claimed`'s identity with its own key.
        let forged = Envelope::make(
            ProcessId(claimed),
            Core::Current {
                round: 1,
                vector: vect.clone(),
            },
            env.cert.clone(),
            &keys[3],
        );
        assert!(
            checker.check_envelope(&forged).is_err(),
            "claimed={claimed}"
        );
    }
}

/// Changing the round of a valid CURRENT invalidates its round-entry
/// evidence.
#[test]
fn round_shifted_currents_are_rejected() {
    let (checker, keys) = fixture();
    let (env, vect) = valid_current(&keys);
    let mut rng = SplitMix64::from_seed(0xF0223);
    for case in 0..48 {
        let round = rng.gen_range_u64(2, 49);
        let coord = checker.coordinator(round);
        let forged = Envelope::make(
            coord,
            Core::Current {
                round,
                vector: vect.clone(),
            },
            env.cert.clone(),
            &keys[coord.index()],
        );
        assert!(checker.check_envelope(&forged).is_err(), "case {case}");
    }
}

/// Dropping any single item from a DECIDE's quorum certificate drops
/// it below n − F and must be rejected.
#[test]
fn thinned_decide_quorums_are_rejected() {
    let (checker, keys) = fixture();
    let (_, vect) = valid_current(&keys);
    let env = valid_decide(&keys, &vect);
    assert!(checker.check_envelope(&env).is_ok());

    for drop_idx in 0..(N - F) {
        let thinned: Certificate = env
            .cert
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_idx)
            .map(|(_, item)| item.clone())
            .collect();
        let forged = Envelope::make(ProcessId(0), env.core().clone(), thinned, &keys[0]);
        assert!(
            checker.check_envelope(&forged).is_err(),
            "drop_idx={drop_idx}"
        );
    }
}

/// A DECIDE whose vector differs from the quorum's vector in any entry
/// must be rejected.
#[test]
fn decide_vector_must_match_quorum() {
    let (checker, keys) = fixture();
    let (_, vect) = valid_current(&keys);
    let env = valid_decide(&keys, &vect);
    let mut rng = SplitMix64::from_seed(0xF0225);
    for case in 0..64 {
        let entry = rng.gen_range_u64(0, N as u64 - 1) as usize;
        let value = rng.gen_range_u64(0, 1999);
        let mut mutated = vect.clone();
        mutated.set(entry, value);
        let forged = Envelope::make(
            ProcessId(0),
            Core::Decide {
                round: 1,
                vector: mutated.clone(),
            },
            env.cert.clone(),
            &keys[0],
        );
        if mutated == vect {
            assert!(checker.check_envelope(&forged).is_ok(), "case {case}");
        } else {
            assert!(checker.check_envelope(&forged).is_err(), "case {case}");
        }
    }
}

/// Swapping a certificate item's signature for another item's (mix and
/// match of genuine parts) must be rejected.
#[test]
fn franken_certificates_are_rejected() {
    let (checker, keys) = fixture();
    let (env, vect) = valid_current(&keys);
    for a in 0..(N - F) {
        for b in 0..(N - F) {
            if a == b {
                continue;
            }
            let items: Vec<&SignedCore> = env.cert.iter().collect();
            // Rebuild item `a`'s core with item `b`'s signature bytes: both
            // are genuine, but the pair is not.
            let franken = SignedCore::from_parts(
                items[a].core().clone(),
                ftm_crypto::rsa::Signature::from_bytes(&items[b].signature_bytes()),
            );
            let mut cert: Certificate = env
                .cert
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != a)
                .map(|(_, item)| item.clone())
                .collect();
            cert.insert(franken);
            let forged = Envelope::make(
                ProcessId(0),
                Core::Current {
                    round: 1,
                    vector: vect.clone(),
                },
                cert,
                &keys[0],
            );
            assert!(checker.check_envelope(&forged).is_err(), "a={a} b={b}");
        }
    }
}

/// Wire round-trip: any structurally valid envelope survives
/// serialization bit-exactly, signature included.
#[test]
fn envelopes_roundtrip_through_wire_bytes() {
    let (_checker, keys) = fixture();
    let mut rng = SplitMix64::from_seed(0xF0227);
    for case in 0..48 {
        let sender = rng.gen_range_u64(0, N as u64 - 1) as u32;
        let kind = rng.gen_range_u64(0, 3) as u8;
        let round = rng.gen_range_u64(1, 49);
        let entries: Vec<Option<u64>> = (0..rng.gen_range_u64(0, 5))
            .map(|_| {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(rng.next_u64())
                }
            })
            .collect();
        let cert_values: Vec<u64> = (0..rng.gen_range_u64(0, 3))
            .map(|_| rng.next_u64())
            .collect();

        let vector = ValueVector::from_entries(entries);
        let core = match kind {
            0 => Core::Init { value: round },
            1 => Core::Current { round, vector },
            2 => Core::Next { round },
            _ => Core::Decide { round, vector },
        };
        let cert = Certificate::from_items(
            cert_values
                .iter()
                .enumerate()
                .map(|(i, &v)| signed(&keys, (i % N) as u32, Core::Init { value: v })),
        );
        let env = Envelope::make(ProcessId(sender), core, cert, &keys[sender as usize]);
        let back = Envelope::from_bytes(&env.to_bytes()).expect("roundtrip");
        assert_eq!(back, env, "case {case}");
        assert_eq!(back.signed.digest(), env.signed.digest(), "case {case}");
    }
}

/// Bit-flips in wire bytes never produce an envelope that both decodes
/// AND passes the analyzer as someone else's message: either decoding
/// fails, or the signature check pins the blame correctly.
#[test]
fn bitflipped_envelopes_never_forge() {
    let (checker, keys) = fixture();
    let (env, _) = valid_current(&keys);
    let mut rng = SplitMix64::from_seed(0xF0228);
    for case in 0..48 {
        let mut bytes = env.to_bytes();
        let idx = rng.gen_range_u64(0, bytes.len() as u64 - 1) as usize;
        let flip_bit = rng.gen_range_u64(0, 7) as u8;
        bytes[idx] ^= 1 << flip_bit;
        match Envelope::from_bytes(&bytes) {
            Err(_) => {} // structural corruption caught by the codec
            Ok(decoded) => {
                if decoded == env {
                    // The flip landed in a signature's high zero-padding or
                    // similar semantic no-op; acceptance is correct.
                } else {
                    // Semantically different message: the analyzer must
                    // reject it (bad signature or bad certificate).
                    assert!(
                        checker.check_envelope(&decoded).is_err(),
                        "case {case}: flipped bit {flip_bit} of byte {idx} forged"
                    );
                }
            }
        }
    }
}
