//! Adversarial fuzzing of the certificate analyzer: starting from a valid
//! envelope, any *semantically meaningful* random mutation must either be
//! rejected or leave the message equal to a valid one. This is the
//! executable form of the paper's reliability requirement on the
//! certification module: no process can tamper with a message or its
//! certificate without being detected.

use ftm_certify::analyzer::CertChecker;
use ftm_certify::{Certificate, Core, Envelope, MessageCore, SignedCore, ValueVector};
use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::rsa::KeyPair;
use ftm_sim::ProcessId;
use proptest::prelude::*;

const N: usize = 4;
const F: usize = 1;

fn fixture() -> (CertChecker, Vec<KeyPair>) {
    let mut rng = ftm_crypto::rng_from_seed(0xFEED);
    let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
    (CertChecker::new(N, F, dir), keys)
}

fn signed(keys: &[KeyPair], sender: u32, core: Core) -> SignedCore {
    SignedCore::sign(
        MessageCore::new(ProcessId(sender), core),
        &keys[sender as usize],
    )
}

/// A valid coordinator CURRENT(1, vect) with its INIT witness quorum.
fn valid_current(keys: &[KeyPair]) -> (Envelope, ValueVector) {
    let mut vect = ValueVector::empty(N);
    let mut cert = Certificate::new();
    for s in 0..(N - F) as u32 {
        vect.set(s as usize, 100 + s as u64);
        cert.insert(signed(keys, s, Core::Init { value: 100 + s as u64 }));
    }
    (
        Envelope::make(
            ProcessId(0),
            Core::Current { round: 1, vector: vect.clone() },
            cert,
            &keys[0],
        ),
        vect,
    )
}

/// A valid DECIDE(1, vect) backed by a CURRENT quorum.
fn valid_decide(keys: &[KeyPair], vect: &ValueVector) -> Envelope {
    let cert = Certificate::from_items((0..(N - F) as u32).map(|s| {
        signed(
            keys,
            s,
            Core::Current {
                round: 1,
                vector: vect.clone(),
            },
        )
    }));
    Envelope::make(
        ProcessId(0),
        Core::Decide { round: 1, vector: vect.clone() },
        cert,
        &keys[0],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating any vector entry of a signed CURRENT — with a re-sign by
    /// the sender, as a Byzantine process would — must be rejected unless
    /// the mutation is the identity.
    #[test]
    fn mutated_current_vectors_are_rejected(entry in 0usize..N, value in 0u64..2000) {
        let (checker, keys) = fixture();
        let (env, vect) = valid_current(&keys);
        prop_assert!(checker.check_envelope(&env).is_ok());

        let mut mutated = vect.clone();
        mutated.set(entry, value);
        let forged = Envelope::make(
            ProcessId(0),
            Core::Current { round: 1, vector: mutated.clone() },
            env.cert.clone(),
            &keys[0],
        );
        if mutated == vect {
            prop_assert!(checker.check_envelope(&forged).is_ok());
        } else {
            prop_assert!(checker.check_envelope(&forged).is_err());
        }
    }

    /// Claiming any other sender for a valid envelope must be rejected
    /// (even with a re-sign by the claimed sender's *actual* key being
    /// unavailable, the attacker can only sign as itself).
    #[test]
    fn reattributed_messages_are_rejected(claimed in 1u32..N as u32) {
        let (checker, keys) = fixture();
        let (env, vect) = valid_current(&keys);
        // The attacker (p3) re-signs the coordinator's message claiming
        // `claimed`'s identity with its own key.
        let forged = Envelope::make(
            ProcessId(claimed),
            Core::Current { round: 1, vector: vect },
            env.cert.clone(),
            &keys[3],
        );
        prop_assert!(checker.check_envelope(&forged).is_err());
    }

    /// Changing the round of a valid CURRENT invalidates its round-entry
    /// evidence.
    #[test]
    fn round_shifted_currents_are_rejected(round in 2u64..50) {
        let (checker, keys) = fixture();
        let (env, vect) = valid_current(&keys);
        let coord = checker.coordinator(round);
        let forged = Envelope::make(
            coord,
            Core::Current { round, vector: vect },
            env.cert.clone(),
            &keys[coord.index()],
        );
        prop_assert!(checker.check_envelope(&forged).is_err());
    }

    /// Dropping any single item from a DECIDE's quorum certificate drops
    /// it below n − F and must be rejected.
    #[test]
    fn thinned_decide_quorums_are_rejected(drop_idx in 0usize..(N - F)) {
        let (checker, keys) = fixture();
        let (_, vect) = valid_current(&keys);
        let env = valid_decide(&keys, &vect);
        prop_assert!(checker.check_envelope(&env).is_ok());

        let thinned: Certificate = env
            .cert
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_idx)
            .map(|(_, item)| item.clone())
            .collect();
        let forged = Envelope::make(
            ProcessId(0),
            env.core().clone(),
            thinned,
            &keys[0],
        );
        prop_assert!(checker.check_envelope(&forged).is_err());
    }

    /// A DECIDE whose vector differs from the quorum's vector in any entry
    /// must be rejected.
    #[test]
    fn decide_vector_must_match_quorum(entry in 0usize..N, value in 0u64..2000) {
        let (checker, keys) = fixture();
        let (_, vect) = valid_current(&keys);
        let env = valid_decide(&keys, &vect);
        let mut mutated = vect.clone();
        mutated.set(entry, value);
        let forged = Envelope::make(
            ProcessId(0),
            Core::Decide { round: 1, vector: mutated.clone() },
            env.cert.clone(),
            &keys[0],
        );
        if mutated == vect {
            prop_assert!(checker.check_envelope(&forged).is_ok());
        } else {
            prop_assert!(checker.check_envelope(&forged).is_err());
        }
    }

    /// Swapping a certificate item's signature for another item's (mix and
    /// match of genuine parts) must be rejected.
    #[test]
    fn franken_certificates_are_rejected(a in 0usize..(N - F), b in 0usize..(N - F)) {
        prop_assume!(a != b);
        let (checker, keys) = fixture();
        let (env, vect) = valid_current(&keys);
        let items: Vec<&SignedCore> = env.cert.iter().collect();
        // Rebuild item `a`'s core with item `b`'s signature bytes: both are
        // genuine, but the pair is not.
        let franken = SignedCore::from_parts(
            items[a].core().clone(),
            ftm_crypto::rsa::Signature::from_bytes(&items[b].signature_bytes()),
        );
        let mut cert: Certificate = env
            .cert
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != a)
            .map(|(_, item)| item.clone())
            .collect();
        cert.insert(franken);
        let forged = Envelope::make(
            ProcessId(0),
            Core::Current { round: 1, vector: vect },
            cert,
            &keys[0],
        );
        prop_assert!(checker.check_envelope(&forged).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wire round-trip: any structurally valid envelope survives
    /// serialization bit-exactly, signature included.
    #[test]
    fn envelopes_roundtrip_through_wire_bytes(
        sender in 0u32..N as u32,
        kind in 0u8..4,
        round in 1u64..50,
        entries in proptest::collection::vec(proptest::option::of(any::<u64>()), 0..6),
        cert_values in proptest::collection::vec(any::<u64>(), 0..4),
    ) {
        let (_checker, keys) = fixture();
        let vector = ValueVector::from_entries(entries);
        let core = match kind {
            0 => Core::Init { value: round },
            1 => Core::Current { round, vector },
            2 => Core::Next { round },
            _ => Core::Decide { round, vector },
        };
        let cert = Certificate::from_items(
            cert_values
                .iter()
                .enumerate()
                .map(|(i, &v)| signed(&keys, (i % N) as u32, Core::Init { value: v })),
        );
        let env = Envelope::make(ProcessId(sender), core, cert, &keys[sender as usize]);
        let back = Envelope::from_bytes(&env.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&back, &env);
        prop_assert_eq!(back.signed.digest(), env.signed.digest());
    }

    /// Bit-flips in wire bytes never produce an envelope that both decodes
    /// AND passes the analyzer as someone else's message: either decoding
    /// fails, or the signature check pins the blame correctly.
    #[test]
    fn bitflipped_envelopes_never_forge(flip_byte in 0usize..200, flip_bit in 0u8..8) {
        let (checker, keys) = fixture();
        let (env, _) = valid_current(&keys);
        let mut bytes = env.to_bytes();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match Envelope::from_bytes(&bytes) {
            Err(_) => {} // structural corruption caught by the codec
            Ok(decoded) => {
                if decoded == env {
                    // The flip landed in a signature's high zero-padding or
                    // similar semantic no-op; acceptance is correct.
                } else {
                    // Semantically different message: the analyzer must
                    // reject it (bad signature or bad certificate).
                    prop_assert!(checker.check_envelope(&decoded).is_err());
                }
            }
        }
    }
}
