//! Fault injection: every arbitrary behavior from the paper's taxonomy.
//!
//! The paper classifies arbitrary failures (§2–3) into muteness (permanent
//! omission, including crash) and non-muteness failures: corruption of a
//! variable value, transient omissions, duplication of a statement,
//! execution of a spurious statement, misevaluation of an expression,
//! identity falsification and forged signatures. This crate injects each of
//! them into simulated runs:
//!
//! * crashes are native to [`ftm_sim::SimConfig`];
//! * everything else is an **actor wrapper**: a faulty process runs the
//!   honest protocol internally and a [`Tamper`] strategy rewrites, drops,
//!   duplicates or injects messages on the way out — the network stays
//!   honest, matching the paper's reliable-channel model;
//! * wrappers hold the process's own key pair (a faulty process signs
//!   whatever it sends — that is precisely why signatures alone do not
//!   stop Byzantine behavior and certificates are needed).
//!
//! [`attacks`] targets the transformed protocol ([`ftm_certify::Envelope`]
//! messages); [`crash_attacks`] targets the crash-model protocol, whose
//! unsigned messages make the same attacks trivially lethal — experiment
//! E2's point.

pub mod attacks;
pub mod behavior;
pub mod crash_attacks;
pub mod scenario;

pub use behavior::{ByzantineLogWrapper, ByzantineWrapper, Tamper};
pub use scenario::{
    coalition_faulty, log_command, run_scenario, sweep_matrix, sweep_matrix_repeated,
    sweep_scenarios, AttackRun, CoalitionAxis, DetectorKind, FaultBehavior, Scenario,
    ScenarioMatrix, Workload,
};
// Re-exported so scenario builders can name network profiles without
// depending on ftm-sim directly.
pub use ftm_sim::NetworkProfile;
