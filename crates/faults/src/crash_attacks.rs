//! Byzantine strategies against the *crash-model* protocol.
//!
//! The crash protocol trusts every byte it receives — that is its model.
//! These wrappers demonstrate experiment E2: the moment a process behaves
//! arbitrarily instead of merely crashing, the crash protocol's properties
//! collapse. The attacks mirror [`crate::attacks`] but need no signing,
//! because there is nothing to sign.

use ftm_certify::Value;
use ftm_core::crash::CrashMsg;
use ftm_sim::{Actor, Context, Duration, ProcessId, TimerTag, VirtualTime};

/// Timer tag reserved for injection (the inner protocol uses low tags).
pub const INJECT_TIMER: TimerTag = 0xFA18;

/// What a crash-protocol saboteur does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashAttack {
    /// Rewrite the estimate of every outgoing CURRENT/DECIDE to `poison`
    /// (corrupted variable). Undetectable without certificates.
    CorruptEstimate {
        /// The poison value.
        poison: Value,
    },
    /// Broadcast a forged `DECIDE(poison)` at `at` (spurious statement).
    ForgeDecide {
        /// When to fire.
        at: VirtualTime,
        /// The fabricated decision.
        poison: Value,
    },
}

/// The honest crash protocol wrapped by a [`CrashAttack`].
#[derive(Debug)]
pub struct CrashSaboteur<A> {
    inner: A,
    attack: CrashAttack,
    fired: bool,
}

impl<A> CrashSaboteur<A>
where
    A: Actor<Msg = CrashMsg, Decision = Value>,
{
    /// Wraps `inner` with `attack`.
    pub fn new(inner: A, attack: CrashAttack) -> Self {
        CrashSaboteur {
            inner,
            attack,
            fired: false,
        }
    }

    fn post(&mut self, ctx: &mut Context<'_, CrashMsg, Value>) {
        if let CrashAttack::CorruptEstimate { poison } = self.attack {
            let mut flat = ctx.take_staged_sends();
            for (_, msg) in &mut flat {
                match msg {
                    CrashMsg::Current { est, .. } | CrashMsg::Decide { est } => *est = poison,
                    _ => {}
                }
            }
            ctx.restore_staged_sends(flat);
        }
    }
}

impl<A> Actor for CrashSaboteur<A>
where
    A: Actor<Msg = CrashMsg, Decision = Value>,
{
    type Msg = CrashMsg;
    type Decision = Value;

    fn on_start(&mut self, ctx: &mut Context<'_, CrashMsg, Value>) {
        self.inner.on_start(ctx);
        ctx.set_timer(Duration::of(1), INJECT_TIMER);
        self.post(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &CrashMsg,
        ctx: &mut Context<'_, CrashMsg, Value>,
    ) {
        self.inner.on_message(from, msg, ctx);
        self.post(ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, CrashMsg, Value>) {
        if tag == INJECT_TIMER {
            if let CrashAttack::ForgeDecide { at, poison } = self.attack {
                if !self.fired && ctx.now() >= at {
                    self.fired = true;
                    ctx.broadcast(CrashMsg::Decide { est: poison });
                } else if !self.fired {
                    ctx.set_timer(Duration::of(5), INJECT_TIMER);
                }
            }
            return;
        }
        self.inner.on_timer(tag, ctx);
        self.post(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_core::crash::CrashConsensus;
    use ftm_core::spec::Resilience;
    use ftm_core::validator::check_crash_consensus;
    use ftm_fd::TimeoutDetector;
    use ftm_sim::runner::BoxedActor;
    use ftm_sim::{SimConfig, Simulation};

    fn honest(n: usize, id: ProcessId) -> CrashConsensus<TimeoutDetector> {
        CrashConsensus::new(
            Resilience::new(n, ftm_core::quorum::max_faults(n)),
            id,
            100 + id.0 as u64,
            TimeoutDetector::new(n, Duration::of(150)),
            Duration::of(25),
            Some(Duration::of(40)),
        )
    }

    #[test]
    fn forged_decide_destroys_agreement_or_validity() {
        // E2 core claim: one Byzantine process forging DECIDE(poison) makes
        // the crash protocol decide a value nobody proposed.
        let n = 4;
        let mut violated = 0;
        for seed in 0..10u64 {
            let report = Simulation::build_boxed(SimConfig::new(n).seed(seed), |id| {
                if id.0 == 3 {
                    Box::new(CrashSaboteur::new(
                        honest(n, id),
                        CrashAttack::ForgeDecide {
                            at: VirtualTime::at(1),
                            poison: 999,
                        },
                    )) as BoxedActor<CrashMsg, Value>
                } else {
                    Box::new(honest(n, id))
                }
            })
            .run();
            let proposals = [100, 101, 102, 103];
            let verdict = check_crash_consensus(&report, &proposals, &[false, false, false, true]);
            if !verdict.ok() {
                violated += 1;
            }
        }
        assert_eq!(
            violated, 10,
            "a forged DECIDE must poison every run of the crash protocol"
        );
    }

    #[test]
    fn corrupt_coordinator_estimate_destroys_validity() {
        // The round-1 coordinator proposes a value nobody holds; the crash
        // protocol happily decides it.
        let n = 4;
        let mut violated = 0;
        for seed in 0..10u64 {
            let report = Simulation::build_boxed(SimConfig::new(n).seed(seed), |id| {
                if id.0 == 0 {
                    Box::new(CrashSaboteur::new(
                        honest(n, id),
                        CrashAttack::CorruptEstimate { poison: 31337 },
                    )) as BoxedActor<CrashMsg, Value>
                } else {
                    Box::new(honest(n, id))
                }
            })
            .run();
            let proposals = [100, 101, 102, 103];
            let verdict = check_crash_consensus(&report, &proposals, &[true, false, false, false]);
            if !verdict.ok() {
                violated += 1;
            }
        }
        assert!(
            violated >= 8,
            "estimate corruption must poison nearly every run; got {violated}/10"
        );
    }
}
