//! The generic Byzantine actor wrapper.

use ftm_certify::{Envelope, ValueVector};
use ftm_core::byzantine::log::SlotMsg;
use ftm_crypto::rsa::KeyPair;
use ftm_sim::{Actor, Context, Duration, ProcessId, TimerTag, VirtualTime};

/// Timer tag reserved for the wrapper's injection schedule (the inner
/// protocol uses low tags).
pub const INJECT_TIMER: TimerTag = 0xFA17;

/// A Byzantine strategy: rewrites the honest protocol's output and/or
/// injects spurious messages.
///
/// `tamper` runs after every inner callback with the staged outgoing
/// messages; `inject` runs on a periodic timer and returns extra messages
/// to send. Both receive the process's own [`KeyPair`] — a faulty process
/// can always produce valid signatures *for its own identity*.
pub trait Tamper: std::fmt::Debug + Send {
    /// Rewrites the staged sends of one callback in place.
    fn tamper(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        now: VirtualTime,
    );

    /// Extra messages to inject at `now` (default: none).
    fn inject(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        now: VirtualTime,
    ) -> Vec<(ProcessId, Envelope)> {
        let _ = (me, keys, now);
        Vec::new()
    }
}

/// A faulty process: the honest protocol wrapped by a [`Tamper`] strategy.
///
/// The inner actor keeps running (and keeps believing its own bookkeeping);
/// what reaches the network is whatever the strategy leaves. This models
/// the paper's faulty process exactly: the *program text* is known and
/// common, the *execution* deviates.
#[derive(Debug)]
pub struct ByzantineWrapper<A> {
    inner: A,
    tamper: Box<dyn Tamper>,
    keys: KeyPair,
    inject_interval: Duration,
}

impl<A> ByzantineWrapper<A>
where
    A: Actor<Msg = Envelope, Decision = ValueVector>,
{
    /// Wraps `inner` with a strategy. `inject_interval` paces the
    /// strategy's spontaneous sends.
    pub fn new(
        inner: A,
        tamper: Box<dyn Tamper>,
        keys: KeyPair,
        inject_interval: Duration,
    ) -> Self {
        ByzantineWrapper {
            inner,
            tamper,
            keys,
            inject_interval,
        }
    }

    fn post(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        let me = ctx.me();
        let now = ctx.now();
        // Tamper strategies see the flat per-target view (a broadcast
        // expanded to its `n` deliveries, in target order), exactly as
        // before payload sharing: a Byzantine process may send different
        // corruptions to different receivers.
        let mut flat = ctx.take_staged_sends();
        self.tamper.tamper(me, &self.keys, &mut flat, now);
        ctx.restore_staged_sends(flat);
    }
}

impl<A> Actor for ByzantineWrapper<A>
where
    A: Actor<Msg = Envelope, Decision = ValueVector>,
{
    type Msg = Envelope;
    type Decision = ValueVector;

    fn on_start(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        self.inner.on_start(ctx);
        ctx.set_timer(self.inject_interval, INJECT_TIMER);
        self.post(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &Envelope,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        self.inner.on_message(from, msg, ctx);
        self.post(ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, Envelope, ValueVector>) {
        if tag == INJECT_TIMER {
            let me = ctx.me();
            let now = ctx.now();
            for (to, env) in self.tamper.inject(me, &self.keys, now) {
                ctx.send(to, env);
            }
            ctx.set_timer(self.inject_interval, INJECT_TIMER);
            return;
        }
        self.inner.on_timer(tag, ctx);
        self.post(ctx);
    }
}

/// The replicated-log rendering of [`ByzantineWrapper`]: wraps a
/// [`ReplicatedLog`](ftm_core::byzantine::log::ReplicatedLog)-shaped actor
/// and applies the *same* [`Tamper`] strategies used against one-shot
/// consensus to the consensus envelope inside every staged [`SlotMsg`].
///
/// Tampering runs per slot group (a callback's sends almost always belong
/// to the replica's current slot), so strategies that drop, duplicate or
/// rewrite messages keep working unchanged; injected messages are tagged
/// with the most recent slot the wrapper has seen going out.
#[derive(Debug)]
pub struct ByzantineLogWrapper<A> {
    inner: A,
    tamper: Box<dyn Tamper>,
    keys: KeyPair,
    inject_interval: Duration,
    latest_slot: u64,
}

impl<A> ByzantineLogWrapper<A>
where
    A: Actor<Msg = SlotMsg, Decision = Vec<ValueVector>>,
{
    /// Wraps `inner` with a strategy; `inject_interval` paces the
    /// strategy's spontaneous sends, exactly as for [`ByzantineWrapper`].
    pub fn new(
        inner: A,
        tamper: Box<dyn Tamper>,
        keys: KeyPair,
        inject_interval: Duration,
    ) -> Self {
        ByzantineLogWrapper {
            inner,
            tamper,
            keys,
            inject_interval,
            latest_slot: 0,
        }
    }

    fn post(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        let me = ctx.me();
        let now = ctx.now();
        let staged = ctx.take_staged_sends();
        let mut slots: Vec<u64> = Vec::new();
        for (_, m) in &staged {
            if !slots.contains(&m.slot) {
                slots.push(m.slot);
            }
        }
        let mut out = Vec::with_capacity(staged.len());
        for slot in slots {
            self.latest_slot = self.latest_slot.max(slot);
            let mut group: Vec<(ProcessId, Envelope)> = staged
                .iter()
                .filter(|(_, m)| m.slot == slot)
                .map(|(to, m)| (*to, m.env.clone()))
                .collect();
            self.tamper.tamper(me, &self.keys, &mut group, now);
            out.extend(
                group
                    .into_iter()
                    .map(|(to, env)| (to, SlotMsg { slot, env })),
            );
        }
        ctx.restore_staged_sends(out);
    }
}

impl<A> Actor for ByzantineLogWrapper<A>
where
    A: Actor<Msg = SlotMsg, Decision = Vec<ValueVector>>,
{
    type Msg = SlotMsg;
    type Decision = Vec<ValueVector>;

    fn on_start(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        self.inner.on_start(ctx);
        ctx.set_timer(self.inject_interval, INJECT_TIMER);
        self.post(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &SlotMsg,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
        self.inner.on_message(from, msg, ctx);
        self.post(ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        if tag == INJECT_TIMER {
            let me = ctx.me();
            let now = ctx.now();
            let slot = self.latest_slot;
            for (to, env) in self.tamper.inject(me, &self.keys, now) {
                ctx.send(to, SlotMsg { slot, env });
            }
            ctx.set_timer(self.inject_interval, INJECT_TIMER);
            return;
        }
        self.inner.on_timer(tag, ctx);
        self.post(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_certify::{Certificate, Core};

    /// Drops everything: the simplest muteness strategy.
    #[derive(Debug)]
    struct DropAll;
    impl Tamper for DropAll {
        fn tamper(
            &mut self,
            _me: ProcessId,
            _keys: &KeyPair,
            staged: &mut Vec<(ProcessId, Envelope)>,
            _now: VirtualTime,
        ) {
            staged.clear();
        }
    }

    /// Minimal inner actor: broadcasts one INIT.
    #[derive(Debug)]
    struct OneShot {
        keys: KeyPair,
    }
    impl Actor for OneShot {
        type Msg = Envelope;
        type Decision = ValueVector;
        fn on_start(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
            let env = Envelope::make(
                ctx.me(),
                Core::Init { value: 1 },
                Certificate::new(),
                &self.keys,
            );
            ctx.broadcast(env);
        }
        fn on_message(
            &mut self,
            _: ProcessId,
            _: &Envelope,
            _: &mut Context<'_, Envelope, ValueVector>,
        ) {
        }
    }

    #[test]
    fn tamper_sees_and_rewrites_staged_sends() {
        let mut rng = ftm_crypto::rng_from_seed(1);
        let keys = KeyPair::generate(&mut rng, 128);
        let mut wrapper = ByzantineWrapper::new(
            OneShot { keys: keys.clone() },
            Box::new(DropAll),
            keys,
            Duration::of(10),
        );
        let mut draw = || 0u64;
        let mut ctx: Context<'_, Envelope, ValueVector> =
            Context::new(VirtualTime::ZERO, ProcessId(0), 3, &mut draw);
        wrapper.on_start(&mut ctx);
        let fx = ctx.into_effects();
        assert!(fx.sends.is_empty(), "DropAll must silence the broadcast");
        assert_eq!(fx.timers.len(), 1, "inject timer armed");
    }

    /// Minimal log-shaped actor: broadcasts one INIT tagged slot 2.
    #[derive(Debug)]
    struct OneSlot {
        keys: KeyPair,
    }
    impl Actor for OneSlot {
        type Msg = SlotMsg;
        type Decision = Vec<ValueVector>;
        fn on_start(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
            let env = Envelope::make(
                ctx.me(),
                Core::Init { value: 1 },
                Certificate::new(),
                &self.keys,
            );
            ctx.broadcast(SlotMsg { slot: 2, env });
        }
        fn on_message(
            &mut self,
            _: ProcessId,
            _: &SlotMsg,
            _: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
        ) {
        }
    }

    #[test]
    fn log_wrapper_tampers_inside_slot_messages() {
        let mut rng = ftm_crypto::rng_from_seed(3);
        let keys = KeyPair::generate(&mut rng, 128);
        let mut wrapper = ByzantineLogWrapper::new(
            OneSlot { keys: keys.clone() },
            Box::new(DropAll),
            keys,
            Duration::of(10),
        );
        let mut draw = || 0u64;
        let mut ctx: Context<'_, SlotMsg, Vec<ValueVector>> =
            Context::new(VirtualTime::ZERO, ProcessId(0), 3, &mut draw);
        wrapper.on_start(&mut ctx);
        let fx = ctx.into_effects();
        assert!(fx.sends.is_empty(), "DropAll must silence the slot traffic");
        assert_eq!(wrapper.latest_slot, 2, "wrapper tracked the staged slot");
    }

    #[test]
    fn inject_timer_emits_strategy_messages() {
        #[derive(Debug)]
        struct Spammer {
            keys: KeyPair,
        }
        impl Tamper for Spammer {
            fn tamper(
                &mut self,
                _: ProcessId,
                _: &KeyPair,
                _: &mut Vec<(ProcessId, Envelope)>,
                _: VirtualTime,
            ) {
            }
            fn inject(
                &mut self,
                me: ProcessId,
                _keys: &KeyPair,
                _now: VirtualTime,
            ) -> Vec<(ProcessId, Envelope)> {
                vec![(
                    ProcessId(1),
                    Envelope::make(me, Core::Next { round: 9 }, Certificate::new(), &self.keys),
                )]
            }
        }
        let mut rng = ftm_crypto::rng_from_seed(2);
        let keys = KeyPair::generate(&mut rng, 128);
        let mut wrapper = ByzantineWrapper::new(
            OneShot { keys: keys.clone() },
            Box::new(Spammer { keys: keys.clone() }),
            keys,
            Duration::of(10),
        );
        let mut draw = || 0u64;
        let mut ctx: Context<'_, Envelope, ValueVector> =
            Context::new(VirtualTime::at(10), ProcessId(0), 3, &mut draw);
        wrapper.on_timer(INJECT_TIMER, &mut ctx);
        let fx = ctx.into_effects();
        assert_eq!(fx.sends.len(), 1);
        assert!(
            matches!(fx.sends[0], ftm_sim::StagedSend::To(ProcessId(1), _)),
            "inject sends are unicasts to the chosen target"
        );
    }
}
