//! Concrete Byzantine strategies against the transformed protocol.
//!
//! Each strategy realizes one failure from the paper's taxonomy (§2). The
//! names in brackets give the paper's fault class and the module expected
//! to catch it:
//!
//! | Strategy             | Paper fault                          | Caught by |
//! |----------------------|--------------------------------------|-----------|
//! | [`MuteAfter`]        | muteness (permanent omission)        | muteness FD ◇M |
//! | [`VectorCorruptor`]  | corruption of a variable value       | certificate analyzer |
//! | [`RoundJumper`]      | misevaluation / corrupted round      | state machine + round-entry evidence |
//! | [`VoteDuplicator`]   | duplication of a statement           | state machine |
//! | [`DecideForger`]     | spurious statement (forged decision) | certificate analyzer |
//! | [`WrongKeySigner`]   | unsigned/forged messages             | signature module |
//! | [`IdentityThief`]    | falsified identity                   | signature module |
//! | [`InitEquivocator`]  | two-faced proposal                   | *not locally detectable* — Agreement must survive it |
//! | [`SpuriousCurrent`]  | spurious statement (fake coordinator)| certificate analyzer |

use ftm_certify::{Certificate, Core, Envelope, Round, Value, ValueVector};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::{ProcessId, VirtualTime};

use crate::behavior::Tamper;

/// Re-signs a (possibly mutated) core with the attacker's own key,
/// preserving the certificate.
fn resign(me: ProcessId, core: Core, cert: Certificate, keys: &KeyPair) -> Envelope {
    Envelope::make(me, core, cert, keys)
}

/// Permanent omission: stops sending anything from `after` on.
///
/// Until then it behaves honestly — the hardest muteness case for ◇M,
/// since the detector has already learned to trust the process.
#[derive(Debug)]
pub struct MuteAfter {
    /// When the process falls silent.
    pub after: VirtualTime,
}

impl Tamper for MuteAfter {
    fn tamper(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        now: VirtualTime,
    ) {
        if now >= self.after {
            staged.clear();
        }
    }
}

/// Corrupts one entry of every outgoing estimate vector to `poison` — the
/// paper's "corruption of a local variable". Covers the vector-carrying
/// kinds of both transformed protocols (CURRENT/DECIDE under Hurfin–Raynal,
/// ESTIMATE/PROPOSE/ACK under Chandra–Toueg); a run only ever stages its
/// own protocol's kinds, so the extra arms are inert for the other one.
/// The signature is valid (the process signs its own lie); only the
/// certificate analysis can catch the mismatch with the INIT witnesses.
#[derive(Debug)]
pub struct VectorCorruptor {
    /// Which vector entry to falsify.
    pub entry: usize,
    /// The poison value written there.
    pub poison: Value,
}

impl Tamper for VectorCorruptor {
    fn tamper(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (_, env) in staged.iter_mut() {
            let new_core = match env.core().clone() {
                Core::Current { round, mut vector } => {
                    if self.entry < vector.len() {
                        vector.set(self.entry, self.poison);
                    }
                    Some(Core::Current { round, vector })
                }
                Core::Decide { round, mut vector } => {
                    if self.entry < vector.len() {
                        vector.set(self.entry, self.poison);
                    }
                    Some(Core::Decide { round, vector })
                }
                Core::Estimate {
                    round,
                    mut vector,
                    ts,
                } => {
                    if self.entry < vector.len() {
                        vector.set(self.entry, self.poison);
                    }
                    Some(Core::Estimate { round, vector, ts })
                }
                Core::Propose { round, mut vector } => {
                    if self.entry < vector.len() {
                        vector.set(self.entry, self.poison);
                    }
                    Some(Core::Propose { round, vector })
                }
                Core::Ack { round, mut vector } => {
                    if self.entry < vector.len() {
                        vector.set(self.entry, self.poison);
                    }
                    Some(Core::Ack { round, vector })
                }
                _ => None,
            };
            if let Some(core) = new_core {
                *env = resign(me, core, env.cert.clone(), keys);
            }
        }
    }
}

/// Corrupts the round number of outgoing round votes by `jump` — modeling
/// a corrupted `r_i` variable or a misevaluated round-advance condition.
/// Targets the vote kind of whichever protocol is running: NEXT under
/// Hurfin–Raynal, ACK/NACK under Chandra–Toueg.
#[derive(Debug)]
pub struct RoundJumper {
    /// How many rounds to add.
    pub jump: Round,
}

impl Tamper for RoundJumper {
    fn tamper(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (_, env) in staged.iter_mut() {
            let core = match env.core().clone() {
                Core::Next { round } => Core::Next {
                    round: round + self.jump,
                },
                Core::Ack { round, vector } => Core::Ack {
                    round: round + self.jump,
                    vector,
                },
                Core::Nack { round } => Core::Nack {
                    round: round + self.jump,
                },
                _ => continue,
            };
            *env = resign(me, core, env.cert.clone(), keys);
        }
    }
}

/// Duplicates every outgoing round vote (NEXT under Hurfin–Raynal, ACK and
/// NACK under Chandra–Toueg) — the paper's "duplication of a statement".
/// The duplicate is byte-identical and validly signed; only the per-peer
/// state machine notices the second receipt is not enabled.
#[derive(Debug)]
pub struct VoteDuplicator;

impl Tamper for VoteDuplicator {
    fn tamper(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        let dups: Vec<(ProcessId, Envelope)> = staged
            .iter()
            .filter(|(_, env)| {
                matches!(
                    env.core(),
                    Core::Next { .. } | Core::Ack { .. } | Core::Nack { .. }
                )
            })
            .cloned()
            .collect();
        staged.extend(dups);
    }
}

/// Injects a forged `DECIDE` with a fabricated vector and an empty
/// certificate at `at` — the strongest spurious-statement attack: if it
/// were believed, Agreement and Validity would both fall.
#[derive(Debug)]
pub struct DecideForger {
    /// When to fire (once).
    pub at: VirtualTime,
    /// System size (to fabricate a plausible-width vector).
    pub n: usize,
    /// The fabricated value planted in every entry.
    pub poison: Value,
    fired: bool,
}

impl DecideForger {
    /// Creates the one-shot forger.
    pub fn new(at: VirtualTime, n: usize, poison: Value) -> Self {
        DecideForger {
            at,
            n,
            poison,
            fired: false,
        }
    }
}

impl Tamper for DecideForger {
    fn tamper(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        _staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
    }

    fn inject(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        now: VirtualTime,
    ) -> Vec<(ProcessId, Envelope)> {
        if self.fired || now < self.at {
            return Vec::new();
        }
        self.fired = true;
        let mut vector = ValueVector::empty(self.n);
        for k in 0..self.n {
            vector.set(k, self.poison);
        }
        let env = resign(
            me,
            Core::Decide { round: 1, vector },
            Certificate::new(),
            keys,
        );
        (0..self.n as u32)
            .map(|p| (ProcessId(p), env.clone()))
            .collect()
    }
}

/// Signs everything with a key that is not the registered one — a broken
/// or stolen signing key. Every message fails verification.
#[derive(Debug)]
pub struct WrongKeySigner {
    /// The wrong key used for signing.
    pub wrong: KeyPair,
}

impl Tamper for WrongKeySigner {
    fn tamper(
        &mut self,
        me: ProcessId,
        _keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (_, env) in staged.iter_mut() {
            *env = resign(me, env.core().clone(), env.cert.clone(), &self.wrong);
        }
    }
}

/// Claims to be `victim` on every outgoing message (identity
/// falsification). The signature cannot match the claimed identity, and
/// the channel source gives the thief away.
#[derive(Debug)]
pub struct IdentityThief {
    /// Whose identity to steal.
    pub victim: ProcessId,
}

impl Tamper for IdentityThief {
    fn tamper(
        &mut self,
        _me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (_, env) in staged.iter_mut() {
            *env = resign(self.victim, env.core().clone(), env.cert.clone(), keys);
        }
    }
}

/// Sends one INIT value to even-indexed processes and another to
/// odd-indexed ones. Both are validly signed by the equivocator, and no
/// single receiver can tell — the paper's "irrelevant initial value"
/// problem. Vector Consensus must keep Agreement anyway (Proposition 2 /
/// experiment E5).
#[derive(Debug)]
pub struct InitEquivocator {
    /// The alternative value sent to odd-indexed processes.
    pub alt: Value,
}

impl Tamper for InitEquivocator {
    fn tamper(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (to, env) in staged.iter_mut() {
            if to.index() % 2 == 1 {
                if let Core::Init { .. } = env.core() {
                    *env = resign(me, Core::Init { value: self.alt }, env.cert.clone(), keys);
                }
            }
        }
    }
}

/// Injects a CURRENT for round 1 with an unbacked vector while not being
/// the coordinator — a spurious statement / fake-coordinator attack.
#[derive(Debug)]
pub struct SpuriousCurrent {
    /// When to fire (once).
    pub at: VirtualTime,
    /// System size.
    pub n: usize,
    fired: bool,
}

impl SpuriousCurrent {
    /// Creates the one-shot injector.
    pub fn new(at: VirtualTime, n: usize) -> Self {
        SpuriousCurrent {
            at,
            n,
            fired: false,
        }
    }
}

impl Tamper for SpuriousCurrent {
    fn tamper(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        _staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
    }

    fn inject(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        now: VirtualTime,
    ) -> Vec<(ProcessId, Envelope)> {
        if self.fired || now < self.at {
            return Vec::new();
        }
        self.fired = true;
        let mut vector = ValueVector::empty(self.n);
        for k in 0..self.n {
            vector.set(k, 4242);
        }
        let env = resign(
            me,
            Core::Current { round: 1, vector },
            Certificate::new(),
            keys,
        );
        (0..self.n as u32)
            .map(|p| (ProcessId(p), env.clone()))
            .collect()
    }
}

/// The Chandra–Toueg rendering of the fake-coordinator attack: a spurious
/// PROPOSE for round 1 with an unbacked vector and no estimate quorum,
/// sent while not being the coordinator.
///
/// The PROPOSE slot sits *behind* the mandatory ESTIMATE in the CT
/// observer automaton, so a free-floating injection would be convicted on
/// timing alone — a different (and easier) catch than the fake-coordinator
/// CURRENT under Hurfin–Raynal, whose slot is open from round entry. To
/// exercise the same module, the attack piggybacks on the attacker's own
/// round-1 ESTIMATE broadcast: each FIFO channel then carries
/// `ESTIMATE(1), PROPOSE(1)`, which is timing-legal, and only the
/// certificate analyzer (no estimate quorum, wrong coordinator) convicts.
#[derive(Debug)]
pub struct SpuriousPropose {
    /// System size.
    pub n: usize,
    fired: bool,
}

impl SpuriousPropose {
    /// Creates the one-shot injector.
    pub fn new(n: usize) -> Self {
        SpuriousPropose { n, fired: false }
    }
}

impl Tamper for SpuriousPropose {
    fn tamper(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        let estimating = staged
            .iter()
            .any(|(_, env)| matches!(env.core(), Core::Estimate { round: 1, .. }));
        if self.fired || !estimating {
            return;
        }
        self.fired = true;
        let mut vector = ValueVector::empty(self.n);
        for k in 0..self.n {
            vector.set(k, 4242);
        }
        let env = resign(
            me,
            Core::Propose { round: 1, vector },
            Certificate::new(),
            keys,
        );
        staged.extend((0..self.n as u32).map(|p| (ProcessId(p), env.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(seed: u64) -> KeyPair {
        let mut rng = ftm_crypto::rng_from_seed(seed);
        KeyPair::generate(&mut rng, 128)
    }

    fn staged_init(me: ProcessId, n: usize, keys: &KeyPair) -> Vec<(ProcessId, Envelope)> {
        (0..n as u32)
            .map(|p| {
                (
                    ProcessId(p),
                    Envelope::make(me, Core::Init { value: 7 }, Certificate::new(), keys),
                )
            })
            .collect()
    }

    #[test]
    fn mute_after_silences_only_past_deadline() {
        let k = keys(1);
        let mut t = MuteAfter {
            after: VirtualTime::at(50),
        };
        let mut staged = staged_init(ProcessId(0), 2, &k);
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::at(10));
        assert_eq!(staged.len(), 2);
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::at(50));
        assert!(staged.is_empty());
    }

    #[test]
    fn vector_corruptor_rewrites_and_resigns() {
        let k = keys(2);
        let mut t = VectorCorruptor {
            entry: 1,
            poison: 666,
        };
        let vect = ValueVector::from_entries(vec![Some(1), Some(2), None]);
        let mut staged = vec![(
            ProcessId(1),
            Envelope::make(
                ProcessId(0),
                Core::Current {
                    round: 1,
                    vector: vect,
                },
                Certificate::new(),
                &k,
            ),
        )];
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        let Core::Current { vector, .. } = staged[0].1.core() else {
            panic!("kind preserved");
        };
        assert_eq!(vector.get(1), Some(666));
        // Still validly signed by the attacker's own key.
        let dir = ftm_crypto::keydir::KeyDirectory::new(vec![k.public().clone()]);
        assert!(staged[0].1.signed.verify(&dir).is_ok());
    }

    #[test]
    fn round_jumper_shifts_next_only() {
        let k = keys(3);
        let mut t = RoundJumper { jump: 5 };
        let mut staged = vec![
            (
                ProcessId(1),
                Envelope::make(
                    ProcessId(0),
                    Core::Next { round: 2 },
                    Certificate::new(),
                    &k,
                ),
            ),
            (
                ProcessId(1),
                Envelope::make(
                    ProcessId(0),
                    Core::Init { value: 1 },
                    Certificate::new(),
                    &k,
                ),
            ),
        ];
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        assert_eq!(staged[0].1.round(), 7);
        assert!(matches!(staged[1].1.core(), Core::Init { .. }));
    }

    #[test]
    fn vote_duplicator_doubles_next_votes() {
        let k = keys(4);
        let mut t = VoteDuplicator;
        let mut staged = vec![
            (
                ProcessId(1),
                Envelope::make(
                    ProcessId(0),
                    Core::Next { round: 1 },
                    Certificate::new(),
                    &k,
                ),
            ),
            (
                ProcessId(1),
                Envelope::make(
                    ProcessId(0),
                    Core::Init { value: 1 },
                    Certificate::new(),
                    &k,
                ),
            ),
        ];
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        assert_eq!(staged.len(), 3);
    }

    #[test]
    fn decide_forger_fires_once() {
        let k = keys(5);
        let mut t = DecideForger::new(VirtualTime::at(10), 3, 999);
        assert!(t.inject(ProcessId(0), &k, VirtualTime::at(5)).is_empty());
        let first = t.inject(ProcessId(0), &k, VirtualTime::at(10));
        assert_eq!(first.len(), 3);
        assert!(matches!(first[0].1.core(), Core::Decide { .. }));
        assert!(t.inject(ProcessId(0), &k, VirtualTime::at(20)).is_empty());
    }

    #[test]
    fn identity_thief_changes_claimed_sender() {
        let k = keys(6);
        let mut t = IdentityThief {
            victim: ProcessId(2),
        };
        let mut staged = staged_init(ProcessId(0), 1, &k);
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        assert_eq!(staged[0].1.sender(), ProcessId(2));
    }

    #[test]
    fn equivocator_splits_by_destination_parity() {
        let k = keys(7);
        let mut t = InitEquivocator { alt: 13 };
        let mut staged = staged_init(ProcessId(0), 4, &k);
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        let vals: Vec<u64> = staged
            .iter()
            .map(|(_, e)| match e.core() {
                Core::Init { value } => *value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![7, 13, 7, 13]);
    }

    #[test]
    fn spurious_current_targets_everyone_once() {
        let k = keys(8);
        let mut t = SpuriousCurrent::new(VirtualTime::at(1), 3);
        let msgs = t.inject(ProcessId(2), &k, VirtualTime::at(1));
        assert_eq!(msgs.len(), 3);
        assert!(matches!(msgs[0].1.core(), Core::Current { round: 1, .. }));
        assert!(t.inject(ProcessId(2), &k, VirtualTime::at(2)).is_empty());
    }

    #[test]
    fn spurious_propose_rides_the_round_one_estimate() {
        let k = keys(11);
        let mut t = SpuriousPropose::new(3);
        let estimate = |to: u32| {
            (
                ProcessId(to),
                Envelope::make(
                    ProcessId(2),
                    Core::Estimate {
                        round: 1,
                        vector: ValueVector::empty(3),
                        ts: 0,
                    },
                    Certificate::new(),
                    &k,
                ),
            )
        };
        // Unrelated traffic (the INIT broadcast) leaves the attack dormant.
        let mut init = vec![(
            ProcessId(0),
            Envelope::make(
                ProcessId(2),
                Core::Init { value: 5 },
                Certificate::new(),
                &k,
            ),
        )];
        t.tamper(ProcessId(2), &k, &mut init, VirtualTime::ZERO);
        assert_eq!(init.len(), 1);
        // The round-1 ESTIMATE broadcast gets the fake PROPOSE appended,
        // one per process, *after* the estimates (FIFO keeps it in-slot).
        let mut staged: Vec<_> = (0..3).map(estimate).collect();
        t.tamper(ProcessId(2), &k, &mut staged, VirtualTime::at(40));
        assert_eq!(staged.len(), 6);
        for (i, (to, env)) in staged[3..].iter().enumerate() {
            assert_eq!(to.index(), i);
            assert!(matches!(env.core(), Core::Propose { round: 1, .. }));
        }
        // One-shot: later estimates do not re-fire it.
        let mut again: Vec<_> = (0..3).map(estimate).collect();
        t.tamper(ProcessId(2), &k, &mut again, VirtualTime::at(80));
        assert_eq!(again.len(), 3);
    }

    #[test]
    fn round_jumper_and_duplicator_cover_ct_votes() {
        let k = keys(12);
        let vect = ValueVector::from_entries(vec![Some(1), None, None]);
        let mut staged = vec![(
            ProcessId(1),
            Envelope::make(
                ProcessId(0),
                Core::Ack {
                    round: 2,
                    vector: vect,
                },
                Certificate::new(),
                &k,
            ),
        )];
        let mut jumper = RoundJumper { jump: 5 };
        jumper.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        assert_eq!(staged[0].1.round(), 7);
        let mut dup = VoteDuplicator;
        dup.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        assert_eq!(staged.len(), 2);
    }

    #[test]
    fn vector_corruptor_rewrites_ct_kinds() {
        let k = keys(13);
        let mut t = VectorCorruptor {
            entry: 0,
            poison: 666,
        };
        let vect = ValueVector::from_entries(vec![Some(1), Some(2), None]);
        let mut staged = vec![(
            ProcessId(1),
            Envelope::make(
                ProcessId(0),
                Core::Estimate {
                    round: 1,
                    vector: vect,
                    ts: 0,
                },
                Certificate::new(),
                &k,
            ),
        )];
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        let Core::Estimate { vector, .. } = staged[0].1.core() else {
            panic!("kind preserved");
        };
        assert_eq!(vector.get(0), Some(666));
    }

    #[test]
    fn wrong_key_signer_breaks_verification() {
        let right = keys(9);
        let wrong = keys(10);
        let mut t = WrongKeySigner {
            wrong: wrong.clone(),
        };
        let mut staged = staged_init(ProcessId(0), 1, &right);
        t.tamper(ProcessId(0), &right, &mut staged, VirtualTime::ZERO);
        let dir = ftm_crypto::keydir::KeyDirectory::new(vec![right.public().clone()]);
        assert!(staged[0].1.signed.verify(&dir).is_err());
    }
}

/// Records every message it sends and replays the whole recording once,
/// later — stale-round replays and duplicate statements mixed together
/// (the paper's "wrong time" class at its broadest).
#[derive(Debug)]
pub struct Replayer {
    /// When to replay the recording (once).
    pub at: VirtualTime,
    recorded: Vec<Envelope>,
    fired: bool,
}

impl Replayer {
    /// Creates the one-shot replayer.
    pub fn new(at: VirtualTime) -> Self {
        Replayer {
            at,
            recorded: Vec::new(),
            fired: false,
        }
    }
}

impl Tamper for Replayer {
    fn tamper(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (_, env) in staged.iter() {
            if self.recorded.len() < 64 {
                self.recorded.push(env.clone());
            }
        }
    }

    fn inject(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        now: VirtualTime,
    ) -> Vec<(ProcessId, Envelope)> {
        if self.fired || now < self.at || self.recorded.is_empty() {
            return Vec::new();
        }
        self.fired = true;
        // Replay everything recorded so far, to everyone.
        let mut out = Vec::new();
        for env in &self.recorded {
            for p in 0..4u32 {
                out.push((ProcessId(p), env.clone()));
            }
        }
        out
    }
}

/// Strips the certificate off every outgoing message (re-signing the bare
/// core) — modeling a process whose certification module is broken or
/// deliberately bypassed. Receivers must reject everything whose kind
/// requires evidence.
#[derive(Debug)]
pub struct CertStripper;

impl Tamper for CertStripper {
    fn tamper(
        &mut self,
        me: ProcessId,
        keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        for (_, env) in staged.iter_mut() {
            if !env.cert.is_empty() {
                *env = resign(me, env.core().clone(), Certificate::new(), keys);
            }
        }
    }
}

/// Sends only to processes with index below `cutoff` — selective omission
/// (a process can be "mute with respect to some processes" — exactly the
/// paper's observation that faultiness is per-observer).
#[derive(Debug)]
pub struct SelectiveSender {
    /// Processes with index ≥ `cutoff` receive nothing.
    pub cutoff: usize,
}

impl Tamper for SelectiveSender {
    fn tamper(
        &mut self,
        _me: ProcessId,
        _keys: &KeyPair,
        staged: &mut Vec<(ProcessId, Envelope)>,
        _now: VirtualTime,
    ) {
        staged.retain(|(to, _)| to.index() < self.cutoff);
    }
}

#[cfg(test)]
mod late_attack_tests {
    use super::*;

    fn keys(seed: u64) -> KeyPair {
        let mut rng = ftm_crypto::rng_from_seed(seed);
        KeyPair::generate(&mut rng, 128)
    }

    #[test]
    fn replayer_records_then_replays_once() {
        let k = keys(20);
        let mut t = Replayer::new(VirtualTime::at(50));
        let mut staged = vec![(
            ProcessId(1),
            Envelope::make(
                ProcessId(0),
                Core::Init { value: 3 },
                Certificate::new(),
                &k,
            ),
        )];
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::at(10));
        assert!(t.inject(ProcessId(0), &k, VirtualTime::at(20)).is_empty());
        let replayed = t.inject(ProcessId(0), &k, VirtualTime::at(50));
        assert_eq!(replayed.len(), 4); // 1 recorded message × 4 targets
        assert!(t.inject(ProcessId(0), &k, VirtualTime::at(60)).is_empty());
    }

    #[test]
    fn cert_stripper_empties_certificates() {
        let k = keys(21);
        let mut t = CertStripper;
        let inner = ftm_certify::SignedCore::sign(
            ftm_certify::MessageCore::new(ProcessId(1), Core::Next { round: 1 }),
            &k,
        );
        let mut staged = vec![(
            ProcessId(1),
            Envelope::make(
                ProcessId(0),
                Core::Next { round: 1 },
                Certificate::from_items([inner]),
                &k,
            ),
        )];
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        assert!(staged[0].1.cert.is_empty());
    }

    #[test]
    fn selective_sender_drops_high_indices() {
        let k = keys(22);
        let mut t = SelectiveSender { cutoff: 2 };
        let mut staged: Vec<(ProcessId, Envelope)> = (0..4u32)
            .map(|p| {
                (
                    ProcessId(p),
                    Envelope::make(
                        ProcessId(0),
                        Core::Init { value: 1 },
                        Certificate::new(),
                        &k,
                    ),
                )
            })
            .collect();
        t.tamper(ProcessId(0), &k, &mut staged, VirtualTime::ZERO);
        let targets: Vec<u32> = staged.iter().map(|(p, _)| p.0).collect();
        assert_eq!(targets, vec![0, 1]);
    }
}
