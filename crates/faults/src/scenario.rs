//! Scenario enumeration and execution glue for the sweep harness.
//!
//! The paper's experiments (E3/E4) run the transformed protocol against
//! every fault class in the taxonomy, over a grid of system sizes. This
//! module names those cells — a [`Scenario`] is one `(n, F, fault
//! behavior)` triple — and turns each into a single deterministic run:
//! [`run_scenario`] builds the full stack (keys, transformed actors, one
//! wrapped attacker), executes it under the seeded simulator, checks the
//! vector-consensus properties, and flattens everything the run produced
//! into the flat counter map of an [`ftm_sim::harness::RunRecord`].
//!
//! The counters decompose cost by module layer, mirroring Fig. 1:
//!
//! * `bytes-signature` / `bytes-certificate` / `bytes-protocol` — wire
//!   bytes attributed to the signature module, the certification module
//!   and the protocol core (they sum to `bytes-total`);
//! * `suspicions` — muteness-FD activity (◇M suspicion events);
//! * `stack-*` — receive-side admit/reject counts per module, from each
//!   process's [`ftm_core::transform::StackStats`] note;
//! * `detections-*` — convictions per fault class (`out-of-order` is the
//!   non-muteness automaton's wrong-expected count);
//! * `cert-items-*` — certificate sizes carried on sent messages.
//!
//! Everything is a pure function of `(scenario, seed)`: the same pair
//! reproduces the same trace fingerprint bit for bit, which is what lets
//! [`sweep_matrix`] fan runs across threads without losing replayability.

use ftm_certify::vector::check_vector_validity;
use ftm_certify::{ProtocolId, Value, ValueVector};
use ftm_core::byzantine::log::ReplicatedLog;
use ftm_core::byzantine::{ByzantineChandraToueg, ByzantineConsensus, TransformedProtocol};
use ftm_core::config::{MutenessMode, ProtocolConfig, ProtocolSetup};
use ftm_core::validator::{check_vector_consensus, detections, Verdict};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::harness::{sweep, RunRecord, SweepReport};
use ftm_sim::runner::BoxedActor;
use ftm_sim::trace::TraceEvent;
use ftm_sim::{Duration, ProcessId, RunReport, SimConfig, Simulation, VirtualTime};

use crate::attacks;
use crate::behavior::ByzantineLogWrapper;
use crate::{ByzantineWrapper, Tamper};

/// One fault behavior the attacker process may exhibit — the paper's
/// taxonomy (§2–3) plus the honest baseline and the benign crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultBehavior {
    /// No fault: every process runs the honest protocol.
    Honest,
    /// Benign crash at t = 0 (muteness by the simplest means).
    Crash,
    /// Permanent omission from t = 30 on (muteness without crashing).
    Mute,
    /// Corruption of a variable value: one vector entry poisoned.
    VectorCorrupt,
    /// Misevaluation of an expression: round numbers jumped ahead.
    RoundJump,
    /// Duplication of a statement: every vote sent twice.
    DuplicateVotes,
    /// Spurious statement: a fabricated DECIDE with no certificate.
    ForgeDecide,
    /// Forged signatures: messages signed with a key not in the directory.
    WrongKey,
    /// Identity falsification: messages claim to come from a victim.
    StealIdentity,
    /// Equivocation: different INIT values to different receivers.
    EquivocateInit,
    /// Spurious statement: an uncertified CURRENT out of the blue.
    SpuriousCurrent,
    /// Replay: the attacker's own honest output recorded and resent.
    Replay,
    /// Evidence suppression: certificates stripped from every message.
    StripCertificates,
    /// Transient omission: the attacker talks only to low-numbered peers.
    SelectiveOmission,
}

impl FaultBehavior {
    /// Every behavior, in a stable order (the matrix enumeration order).
    pub fn all() -> Vec<FaultBehavior> {
        use FaultBehavior::*;
        vec![
            Honest,
            Crash,
            Mute,
            VectorCorrupt,
            RoundJump,
            DuplicateVotes,
            ForgeDecide,
            WrongKey,
            StealIdentity,
            EquivocateInit,
            SpuriousCurrent,
            Replay,
            StripCertificates,
            SelectiveOmission,
        ]
    }

    /// Stable kebab-case name used in cell keys and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultBehavior::Honest => "honest",
            FaultBehavior::Crash => "crash",
            FaultBehavior::Mute => "mute",
            FaultBehavior::VectorCorrupt => "vector-corrupt",
            FaultBehavior::RoundJump => "round-jump",
            FaultBehavior::DuplicateVotes => "duplicate-votes",
            FaultBehavior::ForgeDecide => "forge-decide",
            FaultBehavior::WrongKey => "wrong-key",
            FaultBehavior::StealIdentity => "steal-identity",
            FaultBehavior::EquivocateInit => "equivocate-init",
            FaultBehavior::SpuriousCurrent => "spurious-current",
            FaultBehavior::Replay => "replay",
            FaultBehavior::StripCertificates => "strip-certificates",
            FaultBehavior::SelectiveOmission => "selective-omission",
        }
    }

    /// Builds the outgoing-message tamper for this behavior against the
    /// Hurfin–Raynal instance, or `None` when the behavior needs no
    /// wrapper (honest runs, benign crashes).
    pub fn make_tamper(&self, n: usize, attacker: u32, seed: u64) -> Option<Box<dyn Tamper>> {
        self.make_tamper_for(ProtocolId::HurfinRaynal, n, attacker, seed)
    }

    /// Builds the tamper appropriate to `protocol`. Most strategies are
    /// protocol-agnostic (they pattern-match the kinds of both transformed
    /// protocols and a run only ever stages its own kinds); the fake
    /// coordinator is the exception — it must forge the proposal kind the
    /// victim protocol actually certifies (CURRENT under Hurfin–Raynal,
    /// PROPOSE under Chandra–Toueg).
    pub fn make_tamper_for(
        &self,
        protocol: ProtocolId,
        n: usize,
        attacker: u32,
        seed: u64,
    ) -> Option<Box<dyn Tamper>> {
        let t: Box<dyn Tamper> = match self {
            FaultBehavior::Honest | FaultBehavior::Crash => return None,
            FaultBehavior::Mute => Box::new(attacks::MuteAfter {
                after: VirtualTime::at(30),
            }),
            FaultBehavior::VectorCorrupt => Box::new(attacks::VectorCorruptor {
                // Poison an honest process's entry, never the attacker's own.
                entry: (attacker as usize + 1) % n,
                poison: 666,
            }),
            FaultBehavior::RoundJump => Box::new(attacks::RoundJumper { jump: 5 }),
            FaultBehavior::DuplicateVotes => Box::new(attacks::VoteDuplicator),
            FaultBehavior::ForgeDecide => {
                Box::new(attacks::DecideForger::new(VirtualTime::at(1), n, 999))
            }
            FaultBehavior::WrongKey => {
                let mut rng = ftm_crypto::rng_from_seed(0xBAD ^ seed);
                Box::new(attacks::WrongKeySigner {
                    wrong: KeyPair::generate(&mut rng, 128),
                })
            }
            FaultBehavior::StealIdentity => Box::new(attacks::IdentityThief {
                victim: ProcessId(((attacker as usize + 1) % n) as u32),
            }),
            FaultBehavior::EquivocateInit => Box::new(attacks::InitEquivocator { alt: 1313 }),
            FaultBehavior::SpuriousCurrent => match protocol {
                ProtocolId::HurfinRaynal => {
                    Box::new(attacks::SpuriousCurrent::new(VirtualTime::at(1), n))
                }
                ProtocolId::ChandraToueg => Box::new(attacks::SpuriousPropose::new(n)),
            },
            FaultBehavior::Replay => Box::new(attacks::Replayer::new(VirtualTime::at(30))),
            FaultBehavior::StripCertificates => Box::new(attacks::CertStripper),
            FaultBehavior::SelectiveOmission => {
                Box::new(attacks::SelectiveSender { cutoff: n / 2 })
            }
        };
        Some(t)
    }
}

/// Which ◇M implementation the scenario's processes embed — the sweep
/// axis over [`MutenessMode`] (experiment E7's comparison, harness-native).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The generic adaptive timeout detector (doubles on mistakes).
    Adaptive,
    /// The round-aware ◇M variant (allowance grows with the round).
    RoundAware,
}

impl DetectorKind {
    /// Stable kebab-case name used in cell keys.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Adaptive => "adaptive",
            DetectorKind::RoundAware => "round-aware",
        }
    }

    /// The [`MutenessMode`] this axis value configures. The round-aware
    /// per-round allowance is fixed (one poll interval) so a cell stays a
    /// pure function of the scenario.
    pub fn mode(&self) -> MutenessMode {
        match self {
            DetectorKind::Adaptive => MutenessMode::Adaptive,
            DetectorKind::RoundAware => MutenessMode::RoundAware {
                per_round: Duration::of(25),
            },
        }
    }
}

/// What the scenario's processes run on top of the module stack: a single
/// consensus instance, or the replicated-log application deciding several
/// slots back to back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One vector-consensus instance (the default).
    OneShot,
    /// A [`ReplicatedLog`] of `slots` entries, one instance per slot.
    Log {
        /// How many log slots each replica decides.
        slots: u64,
    },
}

/// One cell of the sweep: system size, resilience bound and the fault the
/// last process exhibits, plus the protocol/detector/workload axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound F (at most F arbitrary-faulty processes).
    pub f: usize,
    /// The behavior of the attacker process.
    pub behavior: FaultBehavior,
    /// How many *additional* low-numbered processes (`p0`, `p1`, …) crash
    /// benignly at t = 0, on top of whatever the behavior does to the
    /// attacker. `1` kills the round-1 coordinator (forcing NEXT-vote
    /// traffic); `F − 1` plus a [`FaultBehavior::Crash`] attacker exhausts
    /// the fault budget; `F` plus a crashed attacker exceeds it on purpose.
    pub extra_crashes: usize,
    /// Which transformed protocol the processes run (Hurfin–Raynal by
    /// default).
    pub protocol: ProtocolId,
    /// Which ◇M implementation the processes embed (adaptive by default).
    pub detector: DetectorKind,
    /// What runs on top of consensus (a single instance by default).
    pub workload: Workload,
}

impl Scenario {
    /// A cell with no extra crashes (the plain taxonomy grid), running the
    /// default axes: Hurfin–Raynal, adaptive ◇M, one-shot consensus.
    pub fn new(n: usize, f: usize, behavior: FaultBehavior) -> Self {
        Scenario {
            n,
            f,
            behavior,
            extra_crashes: 0,
            protocol: ProtocolId::HurfinRaynal,
            detector: DetectorKind::Adaptive,
            workload: Workload::OneShot,
        }
    }

    /// Additionally crashes processes `p0..p{k-1}` at t = 0.
    pub fn extra_crashes(mut self, k: usize) -> Self {
        self.extra_crashes = k;
        self
    }

    /// Selects the transformed protocol the processes run.
    pub fn protocol(mut self, protocol: ProtocolId) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the ◇M implementation the processes embed.
    pub fn detector(mut self, detector: DetectorKind) -> Self {
        self.detector = detector;
        self
    }

    /// Selects the workload running on top of consensus.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// The attacker is always the highest-numbered process — never the
    /// round-1 coordinator (p0), so honest progress stays representative.
    pub fn attacker(&self) -> u32 {
        (self.n - 1) as u32
    }

    /// Cell key used to group runs for aggregation. Non-default axis
    /// values append their own markers, so pre-existing cell keys (plain
    /// Hurfin–Raynal one-shot cells) are unchanged.
    pub fn cell(&self) -> String {
        let mut key = format!("n={} f={} fault={}", self.n, self.f, self.behavior.label());
        if self.protocol != ProtocolId::HurfinRaynal {
            key.push_str(&format!(" proto={}", self.protocol.label()));
        }
        if self.detector != DetectorKind::Adaptive {
            key.push_str(&format!(" fd={}", self.detector.label()));
        }
        if let Workload::Log { slots } = self.workload {
            key.push_str(&format!(" workload=log{slots}"));
        }
        if self.extra_crashes > 0 {
            key.push_str(&format!(" extra-crashes={}", self.extra_crashes));
        }
        key
    }
}

/// A scenario grid: the cross product of protocols, detectors, workloads,
/// system configurations and fault behaviors, enumerated in a stable
/// row-major order.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// `(n, F)` pairs, the grid's rows.
    pub systems: Vec<(usize, usize)>,
    /// Fault behaviors, the grid's columns.
    pub behaviors: Vec<FaultBehavior>,
    /// Transformed protocols to run the grid over, the outermost axis
    /// (just Hurfin–Raynal unless widened).
    pub protocols: Vec<ProtocolId>,
    /// ◇M implementations to run the grid over (just the adaptive
    /// detector unless widened).
    pub detectors: Vec<DetectorKind>,
    /// Workloads to run the grid over (just one-shot consensus unless
    /// widened).
    pub workloads: Vec<Workload>,
}

impl ScenarioMatrix {
    /// Builds a matrix from explicit rows and columns, over the default
    /// axes: Hurfin–Raynal, adaptive ◇M, one-shot consensus.
    pub fn new(systems: Vec<(usize, usize)>, behaviors: Vec<FaultBehavior>) -> Self {
        ScenarioMatrix {
            systems,
            behaviors,
            protocols: vec![ProtocolId::HurfinRaynal],
            detectors: vec![DetectorKind::Adaptive],
            workloads: vec![Workload::OneShot],
        }
    }

    /// The given systems crossed with *every* behavior in the taxonomy.
    pub fn full(systems: Vec<(usize, usize)>) -> Self {
        ScenarioMatrix::new(systems, FaultBehavior::all())
    }

    /// The default `(n, F)` grid for sweeps: small systems where every
    /// taxonomy cell runs in milliseconds, plus larger ones — up to
    /// (31, 10) — that exercise quorum sizes the paper's asymptotics care
    /// about.
    pub fn default_systems() -> Vec<(usize, usize)> {
        vec![(4, 1), (5, 2), (7, 3), (13, 4), (21, 6), (31, 10)]
    }

    /// Overrides the protocol axis.
    pub fn protocols(mut self, protocols: Vec<ProtocolId>) -> Self {
        self.protocols = protocols;
        self
    }

    /// Widens the protocol axis to every supported protocol, so each
    /// `(system, behavior)` cell runs once per protocol.
    pub fn cross_protocols(mut self) -> Self {
        self.protocols = ProtocolId::all().to_vec();
        self
    }

    /// Widens the detector axis to both ◇M implementations, so each cell
    /// runs once per detector.
    pub fn cross_detectors(mut self) -> Self {
        self.detectors = vec![DetectorKind::Adaptive, DetectorKind::RoundAware];
        self
    }

    /// Widens the workload axis to one-shot consensus plus a replicated
    /// log of `slots` entries, so each cell runs once per workload.
    pub fn cross_workloads(mut self, slots: u64) -> Self {
        self.workloads = vec![Workload::OneShot, Workload::Log { slots }];
        self
    }

    /// Enumerates the cells row-major: protocols outermost, then
    /// detectors, workloads, systems, and innermost behaviors. The
    /// position in this list is the scenario index the harness feeds to
    /// [`ftm_sim::prng::derive_seed`].
    pub fn enumerate(&self) -> Vec<Scenario> {
        self.enumerate_repeated(1)
    }

    /// Like [`enumerate`](Self::enumerate), but each cell appears
    /// `repeats` consecutive times. Repeats share a cell key and distinct
    /// indices, so they get distinct derived seeds and aggregate into the
    /// same cell — this is how a sweep gets percentiles per cell.
    pub fn enumerate_repeated(&self, repeats: usize) -> Vec<Scenario> {
        let cells = self.protocols.len()
            * self.detectors.len()
            * self.workloads.len()
            * self.systems.len()
            * self.behaviors.len();
        let mut out = Vec::with_capacity(cells * repeats);
        for &protocol in &self.protocols {
            for &detector in &self.detectors {
                for &workload in &self.workloads {
                    for &(n, f) in &self.systems {
                        for &behavior in &self.behaviors {
                            for _ in 0..repeats {
                                out.push(
                                    Scenario::new(n, f, behavior)
                                        .protocol(protocol)
                                        .detector(detector)
                                        .workload(workload),
                                );
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One hand-configured adversarial run: the stack-building glue (keys,
/// transformed actors, one wrapped attacker, optional coordinator crash)
/// shared by [`run_scenario`] and the repo's integration tests, which used
/// to duplicate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRun {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound F (at most F arbitrary-faulty processes).
    pub f: usize,
    /// Simulator and key-generation seed.
    pub seed: u64,
    /// The Byzantine process.
    pub attacker: u32,
    /// Injection-timer delay for the wrapper. The default (3 ticks) beats
    /// the fastest honest decision (t ≈ 10 under the default delay range);
    /// a timed attack injected later fires into an already-halted system
    /// and detection assertions become vacuous.
    pub injection_delay: Duration,
    /// Process crashed at t = 0, if any — crash the round-1 coordinator to
    /// force NEXT-vote traffic.
    pub crash_at_start: Option<u32>,
    /// Crash processes `p0..p{k-1}` at t = 0 as well (multi-crash rows:
    /// fault budgets up to and beyond F).
    pub crash_low: usize,
    /// Which transformed protocol the processes run (Hurfin–Raynal by
    /// default).
    pub protocol: ProtocolId,
    /// Which ◇M implementation the processes embed (adaptive by default).
    pub muteness: MutenessMode,
}

impl AttackRun {
    /// An `(n, F)` system under `seed` with one attacker, default
    /// injection delay and nobody crashed.
    pub fn new(n: usize, f: usize, seed: u64, attacker: u32) -> Self {
        AttackRun {
            n,
            f,
            seed,
            attacker,
            injection_delay: Duration::of(3),
            crash_at_start: None,
            crash_low: 0,
            protocol: ProtocolId::HurfinRaynal,
            muteness: MutenessMode::Adaptive,
        }
    }

    /// Selects the transformed protocol the processes run.
    pub fn protocol(mut self, protocol: ProtocolId) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the ◇M implementation the processes embed.
    pub fn muteness_mode(mut self, mode: MutenessMode) -> Self {
        self.muteness = mode;
        self
    }

    /// Overrides the wrapper's injection-timer delay.
    pub fn injection_delay(mut self, delay: Duration) -> Self {
        self.injection_delay = delay;
        self
    }

    /// Crashes process `p` at t = 0.
    pub fn crash_at_start(mut self, p: u32) -> Self {
        self.crash_at_start = Some(p);
        self
    }

    /// Crashes processes `p0..p{k-1}` at t = 0.
    pub fn crash_low(mut self, k: usize) -> Self {
        self.crash_low = k;
        self
    }

    /// The canonical proposal vector: process `i` proposes `100 + i`.
    pub fn proposals(&self) -> Vec<Value> {
        (0..self.n as u64).map(|i| 100 + i).collect()
    }

    /// The key material and simulator configuration this run is built on.
    fn setup_and_cfg(&self) -> (ProtocolSetup, SimConfig) {
        let setup = ProtocolConfig::new(self.n, self.f)
            .seed(self.seed)
            .muteness_mode(self.muteness)
            .setup();
        let mut cfg = SimConfig::new(self.n).seed(self.seed);
        if let Some(p) = self.crash_at_start {
            cfg = cfg.crash(p as usize, VirtualTime::ZERO);
        }
        for p in 0..self.crash_low {
            cfg = cfg.crash(p, VirtualTime::ZERO);
        }
        (setup, cfg)
    }

    /// Builds the full stack and executes the run, dispatching on the
    /// configured [`ProtocolId`]. `mk_tamper` may return `None` for an
    /// honest (or merely crashed) system.
    pub fn run(
        &self,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<ValueVector> {
        match self.protocol {
            ProtocolId::HurfinRaynal => self.run_as::<ByzantineConsensus>(mk_tamper),
            ProtocolId::ChandraToueg => self.run_as::<ByzantineChandraToueg>(mk_tamper),
        }
    }

    /// [`run`](Self::run) monomorphized over the transformed-protocol
    /// actor, for callers that pick the type statically.
    pub fn run_as<P: TransformedProtocol + 'static>(
        &self,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<ValueVector> {
        let (setup, cfg) = self.setup_and_cfg();
        let props = self.proposals();
        let mut tamper = mk_tamper(&setup);

        Simulation::build_boxed(cfg, |id| {
            let honest = P::build(&setup, id, props[id.index()]);
            if id.0 == self.attacker {
                if let Some(tamper) = tamper.take() {
                    return Box::new(ByzantineWrapper::new(
                        honest,
                        tamper,
                        setup.keys[self.attacker as usize].clone(),
                        self.injection_delay,
                    )) as BoxedActor<_, _>;
                }
            }
            Box::new(honest)
        })
        .run()
    }

    /// Runs the replicated-log workload instead of one-shot consensus:
    /// every process is a [`ReplicatedLog`] replica deciding `slots`
    /// entries, the attacker's replica wrapped so the tamper strategy
    /// rewrites the consensus envelope inside each slot message.
    pub fn run_log(
        &self,
        slots: u64,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<Vec<ValueVector>> {
        match self.protocol {
            ProtocolId::HurfinRaynal => self.run_log_as::<ByzantineConsensus>(slots, mk_tamper),
            ProtocolId::ChandraToueg => self.run_log_as::<ByzantineChandraToueg>(slots, mk_tamper),
        }
    }

    /// [`run_log`](Self::run_log) monomorphized over the slot protocol.
    pub fn run_log_as<P: TransformedProtocol + 'static>(
        &self,
        slots: u64,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<Vec<ValueVector>> {
        let (setup, cfg) = self.setup_and_cfg();
        let mut tamper = mk_tamper(&setup);

        Simulation::build_boxed(cfg, |id| {
            let honest = ReplicatedLog::<P>::new(&setup, id, slots, log_command);
            if id.0 == self.attacker {
                if let Some(tamper) = tamper.take() {
                    return Box::new(ByzantineLogWrapper::new(
                        honest,
                        tamper,
                        setup.keys[self.attacker as usize].clone(),
                        self.injection_delay,
                    )) as BoxedActor<_, _>;
                }
            }
            Box::new(honest)
        })
        .run()
    }

    /// Checks the vector-consensus properties with only the attacker
    /// marked faulty.
    pub fn verdict(&self, report: &RunReport<ValueVector>) -> Verdict {
        let mut faulty = vec![false; self.n];
        faulty[self.attacker as usize] = true;
        check_vector_consensus(report, &self.proposals(), &faulty, self.f)
    }
}

/// The replicated-log workload's deterministic per-slot command: replica
/// `p` proposes `1000·slot + 100 + p` for `slot`.
pub fn log_command(slot: u64, p: u32) -> Value {
    1000 * slot + 100 + p as u64
}

/// Runs one scenario under one derived seed and flattens the outcome into
/// a [`RunRecord`]. Matches the signature [`ftm_sim::harness::sweep`]
/// expects, so it can be passed directly as the worker function.
pub fn run_scenario(index: usize, sc: &Scenario, seed: u64) -> RunRecord {
    let attacker = sc.attacker();
    let mut run = AttackRun::new(sc.n, sc.f, seed, attacker)
        .protocol(sc.protocol)
        .muteness_mode(sc.detector.mode())
        .crash_low(sc.extra_crashes);
    if sc.behavior == FaultBehavior::Crash {
        run = run.crash_at_start(attacker);
    }

    let mut faulty = vec![false; sc.n];
    if sc.behavior != FaultBehavior::Honest {
        faulty[attacker as usize] = true;
    }

    let mut rec = RunRecord::new(sc.cell(), index, seed);
    match sc.workload {
        Workload::OneShot => {
            let report = run.run(|_| {
                sc.behavior
                    .make_tamper_for(sc.protocol, sc.n, attacker, seed)
            });
            let verdict = check_vector_consensus(&report, &run.proposals(), &faulty, sc.f);
            rec.ok = verdict.ok();
            // Individual property verdicts, so experiment tables can
            // separate termination (forfeited beyond the bound) from
            // safety (never).
            rec.set("prop-termination", u64::from(verdict.termination));
            rec.set("prop-agreement", u64::from(verdict.agreement));
            rec.set("prop-validity", u64::from(verdict.validity));
            record_metrics(&mut rec, &report);
            record_attacker_metrics(&mut rec, &report, attacker);
        }
        Workload::Log { slots } => {
            let report = run.run_log(slots, |_| {
                sc.behavior
                    .make_tamper_for(sc.protocol, sc.n, attacker, seed)
            });
            let verdict = check_log_verdict(&report, sc, &faulty, slots);
            rec.ok = verdict.ok();
            rec.set("prop-termination", u64::from(verdict.termination));
            rec.set("prop-agreement", u64::from(verdict.agreement));
            rec.set("prop-validity", u64::from(verdict.validity));
            record_metrics(&mut rec, &report);
            record_attacker_metrics(&mut rec, &report, attacker);
        }
    }
    rec
}

/// The vector-consensus properties lifted to the log workload: every
/// correct replica completes all `slots` (termination), completed logs are
/// identical (agreement), and each slot of the common log satisfies Vector
/// Validity against that slot's true commands.
fn check_log_verdict(
    report: &RunReport<Vec<ValueVector>>,
    sc: &Scenario,
    faulty: &[bool],
    slots: u64,
) -> Verdict {
    let mut violations = Vec::new();
    let correct: Vec<usize> = (0..sc.n)
        .filter(|&i| !faulty[i] && !report.crashed[i])
        .collect();

    let termination = correct
        .iter()
        .all(|&i| matches!(&report.decisions[i], Some(log) if log.len() as u64 == slots));
    if !termination {
        violations.push("termination: some correct replica never completed its log".into());
    }

    let logs: Vec<&Vec<ValueVector>> = correct
        .iter()
        .filter_map(|&i| report.decisions[i].as_ref())
        .collect();
    let agreement = logs.windows(2).all(|w| w[0] == w[1]);
    if !agreement {
        violations.push("agreement: correct replicas hold diverging logs".into());
    }

    let mut validity = true;
    if let Some(log) = logs.first() {
        for (slot, vect) in log.iter().enumerate() {
            let truth: Vec<Option<Value>> = (0..sc.n)
                .map(|i| {
                    if faulty[i] || report.crashed[i] {
                        None
                    } else {
                        Some(log_command(slot as u64, i as u32))
                    }
                })
                .collect();
            if let Err(e) = check_vector_validity(vect, &truth, sc.f) {
                validity = false;
                violations.push(format!("vector validity at slot {slot}: {e}"));
                break;
            }
        }
    }

    Verdict {
        termination,
        agreement,
        validity,
        violations,
    }
}

/// Strips the replicated-log workload's `s<slot>:` note prefix, so slot
/// instances report into the same counters as one-shot runs.
fn strip_slot_prefix(text: &str) -> &str {
    if let Some(rest) = text.strip_prefix('s') {
        if let Some((digits, tail)) = rest.split_once(':') {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return tail;
            }
        }
    }
    text
}

/// Flattens a finished run's metrics, trace notes and detections into the
/// record's counter map. Every counter listed in the module docs is set
/// (zero when the run never exercised that layer), so each cell of the
/// aggregated report carries the full per-layer breakdown. Generic over
/// the decision type so one-shot and log runs flatten identically.
fn record_metrics<D>(rec: &mut RunRecord, report: &RunReport<D>) {
    // Send-side cost, decomposed by module layer (see `Payload::layer_split`).
    rec.set("messages-sent", report.metrics.messages_sent);
    rec.set("bytes-total", report.metrics.bytes_sent);
    rec.set("bytes-signature", report.metrics.signature_bytes);
    rec.set("bytes-certificate", report.metrics.certificate_bytes);
    rec.set("bytes-protocol", report.metrics.protocol_bytes);
    rec.set("messages-delivered", report.metrics.messages_delivered);
    rec.set("end-time", report.end_time.ticks());
    rec.set("decided", report.decisions.iter().flatten().count() as u64);
    rec.set("trace-fingerprint", report.trace.fingerprint());

    // Receive-side and FD counters start at zero so every record exposes
    // the same key set regardless of which layers fired.
    for key in [
        "suspicions",
        "detections",
        "detections-bad-signature",
        "detections-bad-certificate",
        "detections-out-of-order",
        "detections-wrong-syntax",
        "stack-admitted",
        "stack-sig-rejects",
        "stack-cert-rejects",
        "stack-auto-rejects",
        "stack-syntax-rejects",
        "stack-fd-mistakes",
        "cert-items-sum",
        "cert-items-max",
    ] {
        rec.add(key, 0);
    }

    let mut rounds = 0u64;
    for entry in report.trace.entries() {
        match &entry.event {
            TraceEvent::Note { text, .. } => {
                let text = strip_slot_prefix(text);
                if let Some(r) = text.strip_prefix("round=") {
                    rounds = rounds.max(r.parse().unwrap_or(0));
                } else if text.starts_with("suspect=") {
                    rec.add("suspicions", 1);
                } else if let Some(rest) = text.strip_prefix("stack-stats ") {
                    for tok in rest.split_whitespace() {
                        if let Some((key, val)) = tok.split_once('=') {
                            if let Ok(v) = val.parse::<u64>() {
                                rec.add(format!("stack-{key}"), v);
                            }
                        }
                    }
                }
            }
            TraceEvent::Send { label, .. } => {
                if let Some(pos) = label.rfind("cert=") {
                    if let Ok(items) = label[pos + 5..].trim().parse::<u64>() {
                        rec.add("cert-items-sum", items);
                        let max = rec.get("cert-items-max").max(items);
                        rec.set("cert-items-max", max);
                    }
                }
            }
            _ => {}
        }
    }
    rec.set("rounds", rounds);

    for d in detections(&report.trace) {
        rec.add("detections", 1);
        rec.add(format!("detections-{}", d.class), 1);
    }
}

/// Attacker-focused detection outcomes: which classes correct observers
/// convicted the attacker under, how many distinct observers did, and when
/// the first conviction (and first ◇M suspicion) landed. These drive the
/// coverage/observers/latency columns of the E4 table.
fn record_attacker_metrics<D>(rec: &mut RunRecord, report: &RunReport<D>, attacker: u32) {
    use std::collections::{BTreeMap, BTreeSet};

    let culprit = format!("p{attacker}");
    let mut observers: BTreeMap<String, BTreeSet<ProcessId>> = BTreeMap::new();
    let mut first: BTreeMap<String, u64> = BTreeMap::new();
    for d in detections(&report.trace) {
        if d.culprit != culprit || d.observer == ProcessId(attacker) {
            continue;
        }
        observers
            .entry(d.class.clone())
            .or_default()
            .insert(d.observer);
        let at = first.entry(d.class.clone()).or_insert(u64::MAX);
        *at = (*at).min(d.at.ticks());
    }
    for (class, obs) in &observers {
        rec.set(format!("convicted-{class}"), obs.len() as u64);
        rec.set(format!("conviction-at-{class}"), first[class]);
    }

    // First muteness suspicion raised by one process about another: the
    // ◇M module's half of the detection work (suspicion, not conviction).
    let suspicion = report
        .trace
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Note { process, text } => {
                let text = strip_slot_prefix(text);
                let rest = text.strip_prefix("suspect=")?;
                let target = rest.split_whitespace().next().unwrap_or("");
                (format!("p{}", process.0) != target).then(|| e.at.ticks())
            }
            _ => None,
        })
        .min();
    if let Some(at) = suspicion {
        rec.set("suspicion-covered", 1);
        rec.set("suspicion-first-at", at);
    } else {
        rec.set("suspicion-covered", 0);
    }
}

/// Enumerates `matrix`, fans the runs across `threads` workers and
/// aggregates the records into a [`SweepReport`]. The output is a pure
/// function of `(matrix, base_seed)` — thread count only changes wall
/// clock, never a byte of the report.
pub fn sweep_matrix(matrix: &ScenarioMatrix, base_seed: u64, threads: usize) -> SweepReport {
    sweep_matrix_repeated(matrix, 1, base_seed, threads)
}

/// [`sweep_matrix`] with `repeats` runs per cell, each under its own
/// derived seed, so per-cell summaries are real percentiles rather than
/// single observations.
pub fn sweep_matrix_repeated(
    matrix: &ScenarioMatrix,
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> SweepReport {
    sweep_scenarios(&matrix.enumerate(), repeats, base_seed, threads)
}

/// Runs an explicit scenario list through the parallel harness — the entry
/// point for experiment tables whose rows are not a plain cross product
/// (multi-crash budgets, per-row system sizes). Each scenario appears
/// `repeats` consecutive times under its own derived seed, exactly like
/// [`ScenarioMatrix::enumerate_repeated`], so cells aggregate into real
/// percentiles. The output is a pure function of
/// `(scenarios, repeats, base_seed)`.
pub fn sweep_scenarios(
    scenarios: &[Scenario],
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> SweepReport {
    let expanded: Vec<Scenario> = scenarios
        .iter()
        .flat_map(|sc| (0..repeats).map(move |_| *sc))
        .collect();
    let records = sweep(&expanded, base_seed, threads, run_scenario);
    SweepReport::new(base_seed, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_enumerates_row_major_with_distinct_cells() {
        let m = ScenarioMatrix::new(
            vec![(4, 1), (5, 1)],
            vec![FaultBehavior::Honest, FaultBehavior::Crash],
        );
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(
            cells,
            [
                "n=4 f=1 fault=honest",
                "n=4 f=1 fault=crash",
                "n=5 f=1 fault=honest",
                "n=5 f=1 fault=crash",
            ]
        );
    }

    #[test]
    fn crossed_axes_multiply_the_grid_and_mark_their_cells() {
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest])
            .cross_protocols()
            .cross_detectors()
            .cross_workloads(3);
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0], "n=4 f=1 fault=honest");
        assert!(cells.iter().any(|c| c.contains("proto=ct")));
        assert!(cells.iter().any(|c| c.contains("fd=round-aware")));
        assert!(cells.iter().any(|c| c.contains("workload=log3")));
        assert!(
            cells.iter().any(|c| c.contains("proto=ct")
                && c.contains("fd=round-aware")
                && c.contains("workload=log3")),
            "the axes must cross, not just union: {cells:?}"
        );
        let distinct: std::collections::BTreeSet<&String> = cells.iter().collect();
        assert_eq!(distinct.len(), cells.len(), "cell keys collide");
    }

    #[test]
    fn full_matrix_covers_the_whole_taxonomy() {
        let m = ScenarioMatrix::full(vec![(4, 1)]);
        assert_eq!(m.enumerate().len(), FaultBehavior::all().len());
        let labels: std::collections::BTreeSet<&str> = FaultBehavior::all()
            .iter()
            .map(super::FaultBehavior::label)
            .collect();
        assert_eq!(labels.len(), FaultBehavior::all().len(), "labels collide");
    }

    #[test]
    fn honest_run_decomposes_bytes_by_layer() {
        let sc = Scenario::new(4, 1, FaultBehavior::Honest);
        let rec = run_scenario(0, &sc, 7);
        assert!(rec.ok, "honest run failed: {rec:?}");
        assert_eq!(rec.get("decided"), 4);
        assert!(rec.get("rounds") >= 1);
        assert!(rec.get("bytes-signature") > 0);
        assert!(rec.get("bytes-protocol") > 0);
        assert_eq!(
            rec.get("bytes-signature") + rec.get("bytes-certificate") + rec.get("bytes-protocol"),
            rec.get("bytes-total"),
            "layer bytes must sum to the wire total"
        );
        assert!(rec.get("stack-admitted") > 0);
        assert_eq!(rec.get("detections"), 0);
    }

    #[test]
    fn vector_corruption_is_survived_and_charged_to_certification() {
        let sc = Scenario::new(4, 1, FaultBehavior::VectorCorrupt);
        let rec = run_scenario(0, &sc, 3);
        assert!(rec.ok, "corrupted run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "certification module never convicted: {rec:?}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_record_exactly() {
        let sc = Scenario::new(4, 1, FaultBehavior::ForgeDecide);
        let a = run_scenario(2, &sc, 0xD5);
        let b = run_scenario(2, &sc, 0xD5);
        assert_eq!(a, b);
        let c = run_scenario(2, &sc, 0xD6);
        assert_ne!(
            a.get("trace-fingerprint"),
            c.get("trace-fingerprint"),
            "distinct seeds should give distinct traces"
        );
    }

    #[test]
    fn extra_crashes_change_the_cell_key_and_exhaust_the_budget() {
        let base = Scenario::new(5, 2, FaultBehavior::Crash);
        assert_eq!(base.cell(), "n=5 f=2 fault=crash");
        let full_budget = base.extra_crashes(1);
        assert_eq!(full_budget.cell(), "n=5 f=2 fault=crash extra-crashes=1");

        // F = 2 total crashes (p0 and the attacker p4): still terminates.
        let rec = run_scenario(0, &full_budget, 21);
        assert!(
            rec.ok,
            "within-budget crashes must not break consensus: {rec:?}"
        );
        assert_eq!(rec.get("prop-termination"), 1);

        // F + 1 crashes: termination is forfeited, safety must survive.
        let beyond = base.extra_crashes(2);
        let rec = run_scenario(0, &beyond, 21);
        assert_eq!(rec.get("prop-termination"), 0, "{rec:?}");
        assert_eq!(rec.get("prop-agreement"), 1, "{rec:?}");
        assert_eq!(rec.get("prop-validity"), 1, "{rec:?}");
    }

    #[test]
    fn scenario_lists_sweep_like_the_matrix_does() {
        let scenarios = vec![
            Scenario::new(4, 1, FaultBehavior::Honest),
            Scenario::new(4, 1, FaultBehavior::Honest).extra_crashes(1),
        ];
        let rep = sweep_scenarios(&scenarios, 2, 0xE3, 2);
        assert_eq!(rep.records.len(), 4);
        // Matrix-equivalent lists produce identical reports.
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
        let via_matrix = sweep_matrix_repeated(&m, 2, 7, 2);
        let via_list = sweep_scenarios(&m.enumerate(), 2, 7, 2);
        assert_eq!(
            via_matrix.to_json().render(),
            via_list.to_json().render(),
            "sweep_scenarios must be the matrix sweep's primitive"
        );
        // The coordinator-crash cell forces ◇M suspicions before progress.
        let crashed_cell = &rep.cells()["n=4 f=1 fault=honest extra-crashes=1"];
        assert!(crashed_cell.stats["suspicion-covered"].max >= 1, "{rep:?}");
    }

    #[test]
    fn non_default_axes_extend_the_cell_key() {
        let base = Scenario::new(4, 1, FaultBehavior::Honest);
        assert_eq!(base.cell(), "n=4 f=1 fault=honest");
        assert_eq!(
            base.protocol(ProtocolId::ChandraToueg).cell(),
            "n=4 f=1 fault=honest proto=ct"
        );
        assert_eq!(
            base.detector(DetectorKind::RoundAware).cell(),
            "n=4 f=1 fault=honest fd=round-aware"
        );
        assert_eq!(
            base.workload(Workload::Log { slots: 2 }).cell(),
            "n=4 f=1 fault=honest workload=log2"
        );
        assert_eq!(
            base.protocol(ProtocolId::ChandraToueg)
                .detector(DetectorKind::RoundAware)
                .workload(Workload::Log { slots: 3 })
                .extra_crashes(1)
                .cell(),
            "n=4 f=1 fault=honest proto=ct fd=round-aware workload=log3 extra-crashes=1"
        );
    }

    #[test]
    fn cross_protocol_matrix_doubles_the_cells() {
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]).cross_protocols();
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(
            cells,
            ["n=4 f=1 fault=honest", "n=4 f=1 fault=honest proto=ct"]
        );
    }

    #[test]
    fn chandra_toueg_cells_run_the_ct_stack() {
        let sc = Scenario::new(4, 1, FaultBehavior::Honest).protocol(ProtocolId::ChandraToueg);
        let rec = run_scenario(0, &sc, 7);
        assert!(rec.ok, "honest CT run failed: {rec:?}");
        assert_eq!(rec.get("decided"), 4);
        assert!(rec.get("stack-admitted") > 0);
        assert_eq!(rec.get("detections"), 0);
    }

    #[test]
    fn ct_vector_corruption_is_survived_and_charged_to_certification() {
        let sc =
            Scenario::new(4, 1, FaultBehavior::VectorCorrupt).protocol(ProtocolId::ChandraToueg);
        let rec = run_scenario(0, &sc, 3);
        assert!(rec.ok, "corrupted CT run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "certification module never convicted under CT: {rec:?}"
        );
    }

    #[test]
    fn round_aware_detector_cells_run_and_report_fd_mistakes() {
        // Crash the round-1 coordinator so the detector actually has to
        // suspect someone before the system progresses.
        let sc = Scenario::new(4, 1, FaultBehavior::Honest)
            .detector(DetectorKind::RoundAware)
            .extra_crashes(1);
        let rec = run_scenario(0, &sc, 11);
        assert!(rec.ok, "round-aware run failed: {rec:?}");
        assert!(rec.get("suspicions") > 0, "{rec:?}");
        // The counter key exists either way (zero is fine: suspecting an
        // actually-crashed process is never corrected as a mistake).
        assert!(rec.counters.contains_key("stack-fd-mistakes"), "{rec:?}");
    }

    #[test]
    fn log_workload_cells_decide_every_slot_on_both_protocols() {
        for protocol in ProtocolId::all() {
            let sc = Scenario::new(4, 1, FaultBehavior::Honest)
                .protocol(protocol)
                .workload(Workload::Log { slots: 2 });
            let rec = run_scenario(0, &sc, 5);
            assert!(rec.ok, "honest {protocol} log run failed: {rec:?}");
            assert_eq!(rec.get("decided"), 4, "{rec:?}");
            // Slot notes still feed the shared counters.
            assert!(rec.get("rounds") >= 1, "{rec:?}");
            assert!(rec.get("stack-admitted") > 0, "{rec:?}");
        }
    }

    #[test]
    fn log_workload_survives_an_attacker() {
        let sc =
            Scenario::new(4, 1, FaultBehavior::VectorCorrupt).workload(Workload::Log { slots: 2 });
        let rec = run_scenario(0, &sc, 9);
        assert!(rec.ok, "corrupted log run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "no conviction across the log run: {rec:?}"
        );
    }

    #[test]
    fn small_sweep_is_all_ok_and_reports_layer_metrics() {
        let m = ScenarioMatrix::new(
            vec![(4, 1)],
            vec![
                FaultBehavior::Honest,
                FaultBehavior::Mute,
                FaultBehavior::StripCertificates,
            ],
        );
        let rep = sweep_matrix(&m, 11, 2);
        assert!(rep.all_ok(), "sweep had failures: {rep:?}");
        let json = rep.to_json().render();
        for key in ["bytes-signature", "bytes-certificate", "bytes-protocol"] {
            assert!(json.contains(key), "report lost layer metric {key}");
        }
    }
}
