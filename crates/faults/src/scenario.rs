//! Scenario enumeration and execution glue for the sweep harness.
//!
//! The paper's experiments (E3/E4) run the transformed protocol against
//! every fault class in the taxonomy, over a grid of system sizes. This
//! module names those cells — a [`Scenario`] is one `(n, F, coalition)`
//! triple — and turns each into a single deterministic run:
//! [`run_scenario`] builds the full stack (keys, transformed actors, a
//! wrapped attacker *coalition* of up to F members), executes it under the
//! seeded simulator and the scenario's [`NetworkProfile`], checks the
//! vector-consensus properties, and flattens everything the run produced
//! into the flat counter map of an [`ftm_sim::harness::RunRecord`].
//!
//! The counters decompose cost by module layer, mirroring Fig. 1:
//!
//! * `bytes-signature` / `bytes-certificate` / `bytes-protocol` — wire
//!   bytes attributed to the signature module, the certification module
//!   and the protocol core (they sum to `bytes-total`);
//! * `suspicions` — muteness-FD activity (◇M suspicion events);
//! * `stack-*` — receive-side admit/reject counts per module, from each
//!   process's [`ftm_core::transform::StackStats`] note (the *last* note
//!   per process and slot, so per-round snapshots don't double-count);
//! * `detections-*` — convictions per fault class (`out-of-order` is the
//!   non-muteness automaton's wrong-expected count);
//! * `cert-items-*` — certificate sizes carried on sent messages;
//! * `coalition-size` and `m<i>-*` — per-coalition-member detection
//!   outcomes (conviction class, first-conviction round and time).
//!
//! Everything is a pure function of `(scenario, seed)`: the same pair
//! reproduces the same trace fingerprint bit for bit, which is what lets
//! [`sweep_matrix`] fan runs across threads without losing replayability.

use std::collections::{BTreeMap, BTreeSet};

use ftm_certify::vector::check_vector_validity;
use ftm_certify::{ProtocolId, Value, ValueVector};
use ftm_core::byzantine::log::{ReplicatedLog, Retention};
use ftm_core::byzantine::{ByzantineChandraToueg, ByzantineConsensus, TransformedProtocol};
use ftm_core::config::{MutenessMode, ProtocolConfig, ProtocolSetup};
use ftm_core::validator::{check_vector_consensus, detections, Verdict};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::harness::{sweep, RunRecord, SweepReport};
use ftm_sim::runner::BoxedActor;
use ftm_sim::trace::TraceEvent;
use ftm_sim::{Duration, NetworkProfile, ProcessId, RunReport, SimConfig, Simulation, VirtualTime};

use crate::attacks;
use crate::behavior::ByzantineLogWrapper;
use crate::{ByzantineWrapper, Tamper};

/// One fault behavior a coalition member may exhibit — the paper's
/// taxonomy (§2–3) plus the honest baseline and the benign crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultBehavior {
    /// No fault: every process runs the honest protocol.
    Honest,
    /// Benign crash at t = 0 (muteness by the simplest means).
    Crash,
    /// Permanent omission from t = 30 on (muteness without crashing).
    Mute,
    /// Corruption of a variable value: one vector entry poisoned.
    VectorCorrupt,
    /// Misevaluation of an expression: round numbers jumped ahead.
    RoundJump,
    /// Duplication of a statement: every vote sent twice.
    DuplicateVotes,
    /// Spurious statement: a fabricated DECIDE with no certificate.
    ForgeDecide,
    /// Forged signatures: messages signed with a key not in the directory.
    WrongKey,
    /// Identity falsification: messages claim to come from a victim.
    StealIdentity,
    /// Equivocation: different INIT values to different receivers.
    EquivocateInit,
    /// Spurious statement: an uncertified CURRENT out of the blue.
    SpuriousCurrent,
    /// Replay: the attacker's own honest output recorded and resent.
    Replay,
    /// Evidence suppression: certificates stripped from every message.
    StripCertificates,
    /// Transient omission: the attacker talks only to low-numbered peers.
    SelectiveOmission,
}

impl FaultBehavior {
    /// Every behavior, in a stable order (the matrix enumeration order).
    pub fn all() -> Vec<FaultBehavior> {
        use FaultBehavior::*;
        vec![
            Honest,
            Crash,
            Mute,
            VectorCorrupt,
            RoundJump,
            DuplicateVotes,
            ForgeDecide,
            WrongKey,
            StealIdentity,
            EquivocateInit,
            SpuriousCurrent,
            Replay,
            StripCertificates,
            SelectiveOmission,
        ]
    }

    /// Stable kebab-case name used in cell keys and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultBehavior::Honest => "honest",
            FaultBehavior::Crash => "crash",
            FaultBehavior::Mute => "mute",
            FaultBehavior::VectorCorrupt => "vector-corrupt",
            FaultBehavior::RoundJump => "round-jump",
            FaultBehavior::DuplicateVotes => "duplicate-votes",
            FaultBehavior::ForgeDecide => "forge-decide",
            FaultBehavior::WrongKey => "wrong-key",
            FaultBehavior::StealIdentity => "steal-identity",
            FaultBehavior::EquivocateInit => "equivocate-init",
            FaultBehavior::SpuriousCurrent => "spurious-current",
            FaultBehavior::Replay => "replay",
            FaultBehavior::StripCertificates => "strip-certificates",
            FaultBehavior::SelectiveOmission => "selective-omission",
        }
    }

    /// Builds the outgoing-message tamper for this behavior against the
    /// Hurfin–Raynal instance, or `None` when the behavior needs no
    /// wrapper (honest runs, benign crashes).
    pub fn make_tamper(&self, n: usize, attacker: u32, seed: u64) -> Option<Box<dyn Tamper>> {
        self.make_tamper_for(ProtocolId::HurfinRaynal, n, attacker, seed)
    }

    /// Builds the tamper appropriate to `protocol`. Most strategies are
    /// protocol-agnostic (they pattern-match the kinds of both transformed
    /// protocols and a run only ever stages its own kinds); the fake
    /// coordinator is the exception — it must forge the proposal kind the
    /// victim protocol actually certifies (CURRENT under Hurfin–Raynal,
    /// PROPOSE under Chandra–Toueg).
    pub fn make_tamper_for(
        &self,
        protocol: ProtocolId,
        n: usize,
        attacker: u32,
        seed: u64,
    ) -> Option<Box<dyn Tamper>> {
        let t: Box<dyn Tamper> = match self {
            FaultBehavior::Honest | FaultBehavior::Crash => return None,
            FaultBehavior::Mute => Box::new(attacks::MuteAfter {
                after: VirtualTime::at(30),
            }),
            FaultBehavior::VectorCorrupt => Box::new(attacks::VectorCorruptor {
                // Poison an honest process's entry, never the attacker's own.
                entry: (attacker as usize + 1) % n,
                poison: 666,
            }),
            FaultBehavior::RoundJump => Box::new(attacks::RoundJumper { jump: 5 }),
            FaultBehavior::DuplicateVotes => Box::new(attacks::VoteDuplicator),
            FaultBehavior::ForgeDecide => {
                Box::new(attacks::DecideForger::new(VirtualTime::at(1), n, 999))
            }
            FaultBehavior::WrongKey => {
                let mut rng = ftm_crypto::rng_from_seed(0xBAD ^ seed);
                Box::new(attacks::WrongKeySigner {
                    wrong: KeyPair::generate(&mut rng, 128),
                })
            }
            FaultBehavior::StealIdentity => Box::new(attacks::IdentityThief {
                victim: ProcessId(((attacker as usize + 1) % n) as u32),
            }),
            FaultBehavior::EquivocateInit => Box::new(attacks::InitEquivocator { alt: 1313 }),
            FaultBehavior::SpuriousCurrent => match protocol {
                ProtocolId::HurfinRaynal => {
                    Box::new(attacks::SpuriousCurrent::new(VirtualTime::at(1), n))
                }
                ProtocolId::ChandraToueg => Box::new(attacks::SpuriousPropose::new(n)),
            },
            FaultBehavior::Replay => Box::new(attacks::Replayer::new(VirtualTime::at(30))),
            FaultBehavior::StripCertificates => Box::new(attacks::CertStripper),
            FaultBehavior::SelectiveOmission => {
                Box::new(attacks::SelectiveSender { cutoff: n / 2 })
            }
        };
        Some(t)
    }
}

/// Which ◇M implementation the scenario's processes embed — the sweep
/// axis over [`MutenessMode`] (experiment E7's comparison, harness-native).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The generic adaptive timeout detector (doubles on mistakes).
    Adaptive,
    /// The round-aware ◇M variant (allowance grows with the round).
    RoundAware,
}

impl DetectorKind {
    /// Stable kebab-case name used in cell keys.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Adaptive => "adaptive",
            DetectorKind::RoundAware => "round-aware",
        }
    }

    /// The [`MutenessMode`] this axis value configures. The round-aware
    /// per-round allowance is fixed (one poll interval) so a cell stays a
    /// pure function of the scenario.
    pub fn mode(&self) -> MutenessMode {
        match self {
            DetectorKind::Adaptive => MutenessMode::Adaptive,
            DetectorKind::RoundAware => MutenessMode::RoundAware {
                per_round: Duration::of(25),
            },
        }
    }
}

/// What the scenario's processes run on top of the module stack: a single
/// consensus instance, or the replicated-log application deciding several
/// slots back to back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One vector-consensus instance (the default).
    OneShot,
    /// A [`ReplicatedLog`] of `slots` entries, one instance per slot.
    Log {
        /// How many log slots each replica decides.
        slots: u64,
    },
}

/// One cell of the sweep: system size, resilience bound and the attacker
/// coalition (up to F members, heterogeneous behaviors), plus the
/// protocol/detector/workload/network axes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound F (at most F arbitrary-faulty processes).
    pub f: usize,
    /// The attacker coalition: `(member, behavior)` pairs. A single-member
    /// coalition is the classic one-attacker cell; sizes beyond F exist to
    /// document where the guarantees break.
    pub attackers: Vec<(u32, FaultBehavior)>,
    /// How many *additional* low-numbered processes (`p0`, `p1`, …) crash
    /// benignly at t = 0, on top of whatever the coalition does. `1` kills
    /// the round-1 coordinator (forcing NEXT-vote traffic); combined with
    /// coalition crashes it can exhaust — or deliberately exceed — the
    /// fault budget.
    pub extra_crashes: usize,
    /// Which transformed protocol the processes run (Hurfin–Raynal by
    /// default).
    pub protocol: ProtocolId,
    /// Which ◇M implementation the processes embed (adaptive by default).
    pub detector: DetectorKind,
    /// What runs on top of consensus (a single instance by default).
    pub workload: Workload,
    /// The delay/GST regime the run executes under (calm by default —
    /// exactly the simulator's historical defaults).
    pub network: NetworkProfile,
}

impl Scenario {
    /// A single-attacker cell with no extra crashes (the plain taxonomy
    /// grid), running the default axes: Hurfin–Raynal, adaptive ◇M,
    /// one-shot consensus, calm network. The attacker is the
    /// highest-numbered process, never the round-1 coordinator.
    pub fn new(n: usize, f: usize, behavior: FaultBehavior) -> Self {
        Scenario::coalition(n, f, vec![((n - 1) as u32, behavior)])
    }

    /// A cell with an explicit attacker coalition. Members may sit
    /// anywhere (including the round-1 coordinator) and mix behaviors
    /// freely; sizes ≤ F are the paper's tolerated regime, F + 1 the
    /// documented breakage row.
    ///
    /// # Panics
    ///
    /// Panics if the coalition is empty, names a process `≥ n`, or names
    /// the same process twice.
    pub fn coalition(n: usize, f: usize, members: Vec<(u32, FaultBehavior)>) -> Self {
        assert!(!members.is_empty(), "a coalition needs at least one member");
        let distinct: BTreeSet<u32> = members.iter().map(|&(m, _)| m).collect();
        assert_eq!(distinct.len(), members.len(), "duplicate coalition member");
        assert!(
            members.iter().all(|&(m, _)| (m as usize) < n),
            "coalition member out of range"
        );
        Scenario {
            n,
            f,
            attackers: members,
            extra_crashes: 0,
            protocol: ProtocolId::HurfinRaynal,
            detector: DetectorKind::Adaptive,
            workload: Workload::OneShot,
            network: NetworkProfile::calm(),
        }
    }

    /// A coalition at the default placement: member `i` is process
    /// `n − 1 − i`, so the coalition grows downward from the top and the
    /// round-1 coordinator stays honest (representative honest progress,
    /// as in the single-attacker grid).
    ///
    /// # Panics
    ///
    /// Panics if `behaviors` is empty or longer than `n − 1`.
    pub fn coalition_of(n: usize, f: usize, behaviors: &[FaultBehavior]) -> Self {
        assert!(
            behaviors.len() < n,
            "coalition would leave no honest coordinator"
        );
        let members = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| ((n - 1 - i) as u32, b))
            .collect();
        Scenario::coalition(n, f, members)
    }

    /// Additionally crashes processes `p0..p{k-1}` at t = 0.
    pub fn extra_crashes(mut self, k: usize) -> Self {
        self.extra_crashes = k;
        self
    }

    /// Selects the transformed protocol the processes run.
    pub fn protocol(mut self, protocol: ProtocolId) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the ◇M implementation the processes embed.
    pub fn detector(mut self, detector: DetectorKind) -> Self {
        self.detector = detector;
        self
    }

    /// Selects the workload running on top of consensus.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the delay/GST regime the run executes under.
    pub fn network(mut self, network: NetworkProfile) -> Self {
        self.network = network;
        self
    }

    /// Whether the coalition sits at the default placement (member `i` is
    /// process `n − 1 − i`) — the placement [`new`](Self::new) and
    /// [`coalition_of`](Self::coalition_of) produce.
    fn default_placement(&self) -> bool {
        self.attackers
            .iter()
            .enumerate()
            .all(|(i, &(m, _))| m as usize == self.n - 1 - i)
    }

    /// Cell key used to group runs for aggregation. Non-default axis
    /// values append their own markers, so pre-existing cell keys (plain
    /// single-attacker Hurfin–Raynal one-shot cells under the calm
    /// network) are unchanged.
    pub fn cell(&self) -> String {
        let faults: Vec<&str> = self.attackers.iter().map(|(_, b)| b.label()).collect();
        let mut key = format!("n={} f={} fault={}", self.n, self.f, faults.join("+"));
        if self.attackers.len() > 1 {
            key.push_str(&format!(" coalition={}", self.attackers.len()));
        }
        if !self.default_placement() {
            let ids: Vec<String> = self.attackers.iter().map(|(m, _)| m.to_string()).collect();
            key.push_str(&format!(" members={}", ids.join("+")));
        }
        if self.protocol != ProtocolId::HurfinRaynal {
            key.push_str(&format!(" proto={}", self.protocol.label()));
        }
        if self.detector != DetectorKind::Adaptive {
            key.push_str(&format!(" fd={}", self.detector.label()));
        }
        if let Workload::Log { slots } = self.workload {
            key.push_str(&format!(" workload=log{slots}"));
        }
        if self.extra_crashes > 0 {
            key.push_str(&format!(" extra-crashes={}", self.extra_crashes));
        }
        if self.network != NetworkProfile::calm() {
            key.push_str(&format!(" net={}", self.network.label));
        }
        key
    }
}

/// How [`ScenarioMatrix`] turns its fault-behavior columns into
/// coalitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalitionAxis {
    /// One attacker per cell (the classic grid).
    #[default]
    Single,
    /// For each `(n, F)` row, coalition sizes `1..=min(F + 1, n − 1)` —
    /// every tolerated size plus the budget-exceeded row the paper
    /// predicts breaks. Members share the cell's behavior and sit at the
    /// default placement.
    UpToBudgetPlusOne,
}

/// A scenario grid: the cross product of protocols, detectors, workloads,
/// network profiles, system configurations, coalition sizes and fault
/// behaviors, enumerated in a stable row-major order.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// `(n, F)` pairs, the grid's rows.
    pub systems: Vec<(usize, usize)>,
    /// Fault behaviors, the grid's columns.
    pub behaviors: Vec<FaultBehavior>,
    /// Transformed protocols to run the grid over, the outermost axis
    /// (just Hurfin–Raynal unless widened).
    pub protocols: Vec<ProtocolId>,
    /// ◇M implementations to run the grid over (just the adaptive
    /// detector unless widened).
    pub detectors: Vec<DetectorKind>,
    /// Workloads to run the grid over (just one-shot consensus unless
    /// widened).
    pub workloads: Vec<Workload>,
    /// Network profiles to run the grid over (just the calm profile
    /// unless widened).
    pub networks: Vec<NetworkProfile>,
    /// How behaviors become coalitions (single attacker unless widened).
    pub coalitions: CoalitionAxis,
}

impl ScenarioMatrix {
    /// Builds a matrix from explicit rows and columns, over the default
    /// axes: Hurfin–Raynal, adaptive ◇M, one-shot consensus, calm
    /// network, single attacker.
    pub fn new(systems: Vec<(usize, usize)>, behaviors: Vec<FaultBehavior>) -> Self {
        ScenarioMatrix {
            systems,
            behaviors,
            protocols: vec![ProtocolId::HurfinRaynal],
            detectors: vec![DetectorKind::Adaptive],
            workloads: vec![Workload::OneShot],
            networks: vec![NetworkProfile::calm()],
            coalitions: CoalitionAxis::Single,
        }
    }

    /// The given systems crossed with *every* behavior in the taxonomy.
    pub fn full(systems: Vec<(usize, usize)>) -> Self {
        ScenarioMatrix::new(systems, FaultBehavior::all())
    }

    /// The default `(n, F)` grid for sweeps: small systems where every
    /// taxonomy cell runs in milliseconds, plus larger ones — up to
    /// (31, 10) — that exercise quorum sizes the paper's asymptotics care
    /// about.
    pub fn default_systems() -> Vec<(usize, usize)> {
        vec![(4, 1), (5, 2), (7, 3), (13, 4), (21, 6), (31, 10)]
    }

    /// Overrides the protocol axis.
    pub fn protocols(mut self, protocols: Vec<ProtocolId>) -> Self {
        self.protocols = protocols;
        self
    }

    /// Widens the protocol axis to every supported protocol, so each
    /// `(system, behavior)` cell runs once per protocol.
    pub fn cross_protocols(mut self) -> Self {
        self.protocols = ProtocolId::all().to_vec();
        self
    }

    /// Widens the detector axis to both ◇M implementations, so each cell
    /// runs once per detector.
    pub fn cross_detectors(mut self) -> Self {
        self.detectors = vec![DetectorKind::Adaptive, DetectorKind::RoundAware];
        self
    }

    /// Widens the workload axis to one-shot consensus plus a replicated
    /// log of `slots` entries, so each cell runs once per workload.
    pub fn cross_workloads(mut self, slots: u64) -> Self {
        self.workloads = vec![Workload::OneShot, Workload::Log { slots }];
        self
    }

    /// Overrides the network axis.
    pub fn networks(mut self, networks: Vec<NetworkProfile>) -> Self {
        self.networks = networks;
        self
    }

    /// Widens the network axis to every preset profile, so each cell runs
    /// once per delay/GST regime.
    pub fn cross_networks(mut self) -> Self {
        self.networks = NetworkProfile::all().to_vec();
        self
    }

    /// Widens the coalition axis: each `(n, F)` row runs at every
    /// coalition size `1..=min(F + 1, n − 1)` — the tolerated regime plus
    /// the budget-exceeded row.
    pub fn cross_coalitions(mut self) -> Self {
        self.coalitions = CoalitionAxis::UpToBudgetPlusOne;
        self
    }

    /// Enumerates the cells row-major: protocols outermost, then
    /// detectors, workloads, networks, systems, coalition sizes, and
    /// innermost behaviors. With the default axes this collapses to the
    /// historical `protocols → detectors → workloads → systems →
    /// behaviors` order. The position in this list is the scenario index
    /// the harness feeds to [`ftm_sim::prng::derive_seed`].
    pub fn enumerate(&self) -> Vec<Scenario> {
        self.enumerate_repeated(1)
    }

    /// Like [`enumerate`](Self::enumerate), but each cell appears
    /// `repeats` consecutive times. Repeats share a cell key and distinct
    /// indices, so they get distinct derived seeds and aggregate into the
    /// same cell — this is how a sweep gets percentiles per cell.
    pub fn enumerate_repeated(&self, repeats: usize) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &protocol in &self.protocols {
            for &detector in &self.detectors {
                for &workload in &self.workloads {
                    for &network in &self.networks {
                        for &(n, f) in &self.systems {
                            let sizes: Vec<usize> = match self.coalitions {
                                CoalitionAxis::Single => vec![1],
                                CoalitionAxis::UpToBudgetPlusOne => {
                                    (1..=(f + 1).min(n - 1)).collect()
                                }
                            };
                            for &size in &sizes {
                                for &behavior in &self.behaviors {
                                    for _ in 0..repeats {
                                        out.push(
                                            Scenario::coalition_of(n, f, &vec![behavior; size])
                                                .protocol(protocol)
                                                .detector(detector)
                                                .workload(workload)
                                                .network(network),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One hand-configured adversarial run: the stack-building glue (keys,
/// transformed actors, wrapped attackers, optional coordinator crash)
/// shared by [`run_scenario`] and the repo's integration tests, which used
/// to duplicate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRun {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound F (at most F arbitrary-faulty processes).
    pub f: usize,
    /// Simulator and key-generation seed.
    pub seed: u64,
    /// The Byzantine process (single-attacker entry points; the
    /// coalition runners take their member list explicitly).
    pub attacker: u32,
    /// Injection-timer delay for the wrapper. The default (3 ticks) beats
    /// the fastest honest decision (t ≈ 10 under the default delay range);
    /// a timed attack injected later fires into an already-halted system
    /// and detection assertions become vacuous.
    pub injection_delay: Duration,
    /// Process crashed at t = 0, if any — crash the round-1 coordinator to
    /// force NEXT-vote traffic.
    pub crash_at_start: Option<u32>,
    /// Crash processes `p0..p{k-1}` at t = 0 as well (multi-crash rows:
    /// fault budgets up to and beyond F).
    pub crash_low: usize,
    /// Which transformed protocol the processes run (Hurfin–Raynal by
    /// default).
    pub protocol: ProtocolId,
    /// Which ◇M implementation the processes embed (adaptive by default).
    pub muteness: MutenessMode,
    /// The delay/GST regime (calm — the historical defaults — unless
    /// overridden).
    pub network: NetworkProfile,
    /// Evidence-retention policy for the log workloads: keep every slot's
    /// decide certificate ([`Retention::Full`], the default) or compact
    /// decided slots into a signed checkpoint ([`Retention::Checkpoint`]).
    /// Ignored by the one-shot entry points.
    pub retention: Retention,
}

impl AttackRun {
    /// An `(n, F)` system under `seed` with one attacker, default
    /// injection delay and nobody crashed.
    pub fn new(n: usize, f: usize, seed: u64, attacker: u32) -> Self {
        AttackRun {
            n,
            f,
            seed,
            attacker,
            injection_delay: Duration::of(3),
            crash_at_start: None,
            crash_low: 0,
            protocol: ProtocolId::HurfinRaynal,
            muteness: MutenessMode::Adaptive,
            network: NetworkProfile::calm(),
            retention: Retention::Full,
        }
    }

    /// Selects the evidence-retention policy for the log workloads.
    pub fn retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }

    /// Selects the transformed protocol the processes run.
    pub fn protocol(mut self, protocol: ProtocolId) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the ◇M implementation the processes embed.
    pub fn muteness_mode(mut self, mode: MutenessMode) -> Self {
        self.muteness = mode;
        self
    }

    /// Overrides the wrapper's injection-timer delay.
    pub fn injection_delay(mut self, delay: Duration) -> Self {
        self.injection_delay = delay;
        self
    }

    /// Crashes process `p` at t = 0.
    pub fn crash_at_start(mut self, p: u32) -> Self {
        self.crash_at_start = Some(p);
        self
    }

    /// Crashes processes `p0..p{k-1}` at t = 0.
    pub fn crash_low(mut self, k: usize) -> Self {
        self.crash_low = k;
        self
    }

    /// Selects the delay/GST regime the run executes under.
    pub fn network(mut self, network: NetworkProfile) -> Self {
        self.network = network;
        self
    }

    /// The canonical proposal vector: process `i` proposes `100 + i`.
    pub fn proposals(&self) -> Vec<Value> {
        (0..self.n as u64).map(|i| 100 + i).collect()
    }

    /// The key material and simulator configuration this run is built on.
    fn setup_and_cfg(&self) -> (ProtocolSetup, SimConfig) {
        self.setup_and_cfg_with(&[])
    }

    /// [`setup_and_cfg`](Self::setup_and_cfg) with additional t = 0
    /// crashes (coalition members whose behavior is the benign crash),
    /// registered between `crash_at_start` and the low-numbered crashes so
    /// single-member coalitions reproduce the historical event order.
    fn setup_and_cfg_with(&self, coalition_crashes: &[u32]) -> (ProtocolSetup, SimConfig) {
        let setup = ProtocolConfig::new(self.n, self.f)
            .seed(self.seed)
            .muteness_mode(self.muteness)
            .setup();
        let mut cfg = self.network.apply(SimConfig::new(self.n).seed(self.seed));
        if let Some(p) = self.crash_at_start {
            cfg = cfg.crash(p as usize, VirtualTime::ZERO);
        }
        for &p in coalition_crashes {
            cfg = cfg.crash(p as usize, VirtualTime::ZERO);
        }
        for p in 0..self.crash_low {
            cfg = cfg.crash(p, VirtualTime::ZERO);
        }
        (setup, cfg)
    }

    /// Builds the full stack and executes the run, dispatching on the
    /// configured [`ProtocolId`]. `mk_tamper` may return `None` for an
    /// honest (or merely crashed) system.
    pub fn run(
        &self,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<ValueVector> {
        match self.protocol {
            ProtocolId::HurfinRaynal => self.run_as::<ByzantineConsensus>(mk_tamper),
            ProtocolId::ChandraToueg => self.run_as::<ByzantineChandraToueg>(mk_tamper),
        }
    }

    /// [`run`](Self::run) monomorphized over the transformed-protocol
    /// actor, for callers that pick the type statically.
    pub fn run_as<P: TransformedProtocol + 'static>(
        &self,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<ValueVector> {
        let (setup, cfg) = self.setup_and_cfg();
        let props = self.proposals();
        let mut tamper = mk_tamper(&setup);

        Simulation::build_boxed(cfg, |id| {
            let honest = P::build(&setup, id, props[id.index()]);
            if id.0 == self.attacker {
                if let Some(tamper) = tamper.take() {
                    return Box::new(ByzantineWrapper::new(
                        honest,
                        tamper,
                        setup.keys[self.attacker as usize].clone(),
                        self.injection_delay,
                    )) as BoxedActor<_, _>;
                }
            }
            Box::new(honest)
        })
        .run()
    }

    /// Executes the run with an attacker *coalition*: every member whose
    /// behavior needs a wrapper is wrapped with its own tamper (built by
    /// [`FaultBehavior::make_tamper_for`]), members behaving as
    /// [`FaultBehavior::Crash`] are crashed at t = 0, and honest members
    /// run untouched. A single-member coalition reproduces
    /// [`run`](Self::run) bit for bit.
    pub fn run_coalition(&self, members: &[(u32, FaultBehavior)]) -> RunReport<ValueVector> {
        match self.protocol {
            ProtocolId::HurfinRaynal => self.run_coalition_as::<ByzantineConsensus>(members),
            ProtocolId::ChandraToueg => self.run_coalition_as::<ByzantineChandraToueg>(members),
        }
    }

    /// [`run_coalition`](Self::run_coalition) monomorphized over the
    /// transformed-protocol actor.
    pub fn run_coalition_as<P: TransformedProtocol + 'static>(
        &self,
        members: &[(u32, FaultBehavior)],
    ) -> RunReport<ValueVector> {
        let (setup, cfg) = self.setup_and_cfg_with(&coalition_crashes(members));
        let props = self.proposals();
        let mut tampers = self.coalition_tampers(members);

        Simulation::build_boxed(cfg, |id| {
            let honest = P::build(&setup, id, props[id.index()]);
            if let Some(tamper) = tampers.remove(&id.0) {
                return Box::new(ByzantineWrapper::new(
                    honest,
                    tamper,
                    setup.keys[id.index()].clone(),
                    self.injection_delay,
                )) as BoxedActor<_, _>;
            }
            Box::new(honest)
        })
        .run()
    }

    /// Runs the replicated-log workload instead of one-shot consensus:
    /// every process is a [`ReplicatedLog`] replica deciding `slots`
    /// entries, the attacker's replica wrapped so the tamper strategy
    /// rewrites the consensus envelope inside each slot message.
    pub fn run_log(
        &self,
        slots: u64,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<Vec<ValueVector>> {
        match self.protocol {
            ProtocolId::HurfinRaynal => self.run_log_as::<ByzantineConsensus>(slots, mk_tamper),
            ProtocolId::ChandraToueg => self.run_log_as::<ByzantineChandraToueg>(slots, mk_tamper),
        }
    }

    /// [`run_log`](Self::run_log) monomorphized over the slot protocol.
    pub fn run_log_as<P: TransformedProtocol + 'static>(
        &self,
        slots: u64,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<Vec<ValueVector>> {
        let (setup, cfg) = self.setup_and_cfg();
        let mut tamper = mk_tamper(&setup);

        Simulation::build_boxed(cfg, |id| {
            let honest = ReplicatedLog::<P>::new(&setup, id, slots, log_command)
                .with_retention(self.retention);
            if id.0 == self.attacker {
                if let Some(tamper) = tamper.take() {
                    return Box::new(ByzantineLogWrapper::new(
                        honest,
                        tamper,
                        setup.keys[self.attacker as usize].clone(),
                        self.injection_delay,
                    )) as BoxedActor<_, _>;
                }
            }
            Box::new(honest)
        })
        .run()
    }

    /// The replicated-log workload under an attacker coalition — the
    /// log-shaped sibling of [`run_coalition`](Self::run_coalition).
    pub fn run_coalition_log(
        &self,
        slots: u64,
        members: &[(u32, FaultBehavior)],
    ) -> RunReport<Vec<ValueVector>> {
        match self.protocol {
            ProtocolId::HurfinRaynal => {
                self.run_coalition_log_as::<ByzantineConsensus>(slots, members)
            }
            ProtocolId::ChandraToueg => {
                self.run_coalition_log_as::<ByzantineChandraToueg>(slots, members)
            }
        }
    }

    /// [`run_coalition_log`](Self::run_coalition_log) monomorphized over
    /// the slot protocol.
    pub fn run_coalition_log_as<P: TransformedProtocol + 'static>(
        &self,
        slots: u64,
        members: &[(u32, FaultBehavior)],
    ) -> RunReport<Vec<ValueVector>> {
        let (setup, cfg) = self.setup_and_cfg_with(&coalition_crashes(members));
        let mut tampers = self.coalition_tampers(members);

        Simulation::build_boxed(cfg, |id| {
            let honest = ReplicatedLog::<P>::new(&setup, id, slots, log_command)
                .with_retention(self.retention);
            if let Some(tamper) = tampers.remove(&id.0) {
                return Box::new(ByzantineLogWrapper::new(
                    honest,
                    tamper,
                    setup.keys[id.index()].clone(),
                    self.injection_delay,
                )) as BoxedActor<_, _>;
            }
            Box::new(honest)
        })
        .run()
    }

    /// Per-member tamper strategies for a coalition (honest and crashed
    /// members need none).
    fn coalition_tampers(
        &self,
        members: &[(u32, FaultBehavior)],
    ) -> BTreeMap<u32, Box<dyn Tamper>> {
        members
            .iter()
            .filter_map(|&(m, b)| {
                b.make_tamper_for(self.protocol, self.n, m, self.seed)
                    .map(|t| (m, t))
            })
            .collect()
    }

    /// Checks the vector-consensus properties with only the attacker
    /// marked faulty.
    pub fn verdict(&self, report: &RunReport<ValueVector>) -> Verdict {
        let mut faulty = vec![false; self.n];
        faulty[self.attacker as usize] = true;
        check_vector_consensus(report, &self.proposals(), &faulty, self.f)
    }

    /// Checks the vector-consensus properties with every non-honest
    /// coalition member marked faulty.
    pub fn coalition_verdict(
        &self,
        members: &[(u32, FaultBehavior)],
        report: &RunReport<ValueVector>,
    ) -> Verdict {
        check_vector_consensus(
            report,
            &self.proposals(),
            &coalition_faulty(self.n, members),
            self.f,
        )
    }
}

/// The t = 0 crash list a coalition implies (members behaving as the
/// benign crash).
fn coalition_crashes(members: &[(u32, FaultBehavior)]) -> Vec<u32> {
    members
        .iter()
        .filter(|&&(_, b)| b == FaultBehavior::Crash)
        .map(|&(m, _)| m)
        .collect()
}

/// The faulty-process mask a coalition implies (honest members are not
/// faulty).
pub fn coalition_faulty(n: usize, members: &[(u32, FaultBehavior)]) -> Vec<bool> {
    let mut faulty = vec![false; n];
    for &(m, b) in members {
        if b != FaultBehavior::Honest {
            faulty[m as usize] = true;
        }
    }
    faulty
}

/// The replicated-log workload's deterministic per-slot command: replica
/// `p` proposes `1000·slot + 100 + p` for `slot`.
pub fn log_command(slot: u64, p: u32) -> Value {
    1000 * slot + 100 + p as u64
}

/// Runs one scenario under one derived seed and flattens the outcome into
/// a [`RunRecord`]. Matches the signature [`ftm_sim::harness::sweep`]
/// expects, so it can be passed directly as the worker function.
pub fn run_scenario(index: usize, sc: &Scenario, seed: u64) -> RunRecord {
    let run = AttackRun::new(sc.n, sc.f, seed, sc.attackers[0].0)
        .protocol(sc.protocol)
        .muteness_mode(sc.detector.mode())
        .crash_low(sc.extra_crashes)
        .network(sc.network);

    let faulty = coalition_faulty(sc.n, &sc.attackers);

    let mut rec = RunRecord::new(sc.cell(), index, seed);
    rec.set("coalition-size", sc.attackers.len() as u64);
    match sc.workload {
        Workload::OneShot => {
            let report = run.run_coalition(&sc.attackers);
            let verdict = check_vector_consensus(&report, &run.proposals(), &faulty, sc.f);
            rec.ok = verdict.ok();
            // Individual property verdicts, so experiment tables can
            // separate termination (forfeited beyond the bound) from
            // safety (never).
            rec.set("prop-termination", u64::from(verdict.termination));
            rec.set("prop-agreement", u64::from(verdict.agreement));
            rec.set("prop-validity", u64::from(verdict.validity));
            record_metrics(&mut rec, &report);
            record_coalition_metrics(&mut rec, &report, &sc.attackers);
        }
        Workload::Log { slots } => {
            let report = run.run_coalition_log(slots, &sc.attackers);
            let verdict = check_log_verdict(&report, sc, &faulty, slots);
            rec.ok = verdict.ok();
            rec.set("prop-termination", u64::from(verdict.termination));
            rec.set("prop-agreement", u64::from(verdict.agreement));
            rec.set("prop-validity", u64::from(verdict.validity));
            record_metrics(&mut rec, &report);
            record_coalition_metrics(&mut rec, &report, &sc.attackers);
        }
    }
    rec
}

/// The vector-consensus properties lifted to the log workload: every
/// correct replica completes all `slots` (termination), completed logs are
/// identical (agreement), and each slot of the common log satisfies Vector
/// Validity against that slot's true commands.
fn check_log_verdict(
    report: &RunReport<Vec<ValueVector>>,
    sc: &Scenario,
    faulty: &[bool],
    slots: u64,
) -> Verdict {
    let mut violations = Vec::new();
    let correct: Vec<usize> = (0..sc.n)
        .filter(|&i| !faulty[i] && !report.crashed[i])
        .collect();

    let termination = correct
        .iter()
        .all(|&i| matches!(&report.decisions[i], Some(log) if log.len() as u64 == slots));
    if !termination {
        violations.push("termination: some correct replica never completed its log".into());
    }

    let logs: Vec<&Vec<ValueVector>> = correct
        .iter()
        .filter_map(|&i| report.decisions[i].as_ref())
        .collect();
    let agreement = logs.windows(2).all(|w| w[0] == w[1]);
    if !agreement {
        violations.push("agreement: correct replicas hold diverging logs".into());
    }

    let mut validity = true;
    if let Some(log) = logs.first() {
        for (slot, vect) in log.iter().enumerate() {
            let truth: Vec<Option<Value>> = (0..sc.n)
                .map(|i| {
                    if faulty[i] || report.crashed[i] {
                        None
                    } else {
                        Some(log_command(slot as u64, i as u32))
                    }
                })
                .collect();
            if let Err(e) = check_vector_validity(vect, &truth, sc.f) {
                validity = false;
                violations.push(format!("vector validity at slot {slot}: {e}"));
                break;
            }
        }
    }

    Verdict {
        termination,
        agreement,
        validity,
        violations,
    }
}

/// Splits the replicated-log workload's `s<slot>:` note prefix off, so
/// slot instances report into the same counters as one-shot runs while
/// per-slot bookkeeping (last stack-stats note per instance) stays
/// possible.
fn split_slot_prefix(text: &str) -> (Option<u64>, &str) {
    if let Some(rest) = text.strip_prefix('s') {
        if let Some((digits, tail)) = rest.split_once(':') {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return (digits.parse().ok(), tail);
            }
        }
    }
    (None, text)
}

/// Strips the replicated-log workload's `s<slot>:` note prefix.
fn strip_slot_prefix(text: &str) -> &str {
    split_slot_prefix(text).1
}

/// Flattens a finished run's metrics, trace notes and detections into the
/// record's counter map. Every counter listed in the module docs is set
/// (zero when the run never exercised that layer), so each cell of the
/// aggregated report carries the full per-layer breakdown. Generic over
/// the decision type so one-shot and log runs flatten identically.
fn record_metrics<D>(rec: &mut RunRecord, report: &RunReport<D>) {
    // Send-side cost, decomposed by module layer (see `Payload::layer_split`).
    rec.set("messages-sent", report.metrics.messages_sent);
    rec.set("bytes-total", report.metrics.bytes_sent);
    rec.set("bytes-signature", report.metrics.signature_bytes);
    rec.set("bytes-certificate", report.metrics.certificate_bytes);
    rec.set("bytes-protocol", report.metrics.protocol_bytes);
    rec.set("messages-delivered", report.metrics.messages_delivered);
    rec.set("end-time", report.end_time.ticks());
    rec.set("decided", report.decisions.iter().flatten().count() as u64);
    rec.set("trace-fingerprint", report.trace.fingerprint());

    // Receive-side and FD counters start at zero so every record exposes
    // the same key set regardless of which layers fired.
    for key in [
        "suspicions",
        "detections",
        "detections-bad-signature",
        "detections-bad-certificate",
        "detections-out-of-order",
        "detections-wrong-syntax",
        "stack-admitted",
        "stack-sig-rejects",
        "stack-cert-rejects",
        "stack-auto-rejects",
        "stack-syntax-rejects",
        "stack-fd-mistakes",
        "stack-fd-honest-mistakes",
        "stack-quarantined",
        "stack-checkpoints",
        "cert-items-sum",
        "cert-items-max",
    ] {
        rec.add(key, 0);
    }

    // The stack emits a cumulative stats note at every round entry and at
    // decide, so only the *last* note per (process, slot instance) counts
    // — summing them all would charge early rounds many times over.
    let mut last_stats: BTreeMap<(u32, Option<u64>), &str> = BTreeMap::new();
    let mut rounds = 0u64;
    for entry in report.trace.entries() {
        match &entry.event {
            TraceEvent::Note { process, text } => {
                let (slot, text) = split_slot_prefix(text);
                if let Some(r) = text.strip_prefix("round=") {
                    rounds = rounds.max(r.parse().unwrap_or(0));
                } else if text.starts_with("suspect=") {
                    rec.add("suspicions", 1);
                } else if let Some(rest) = text.strip_prefix("stack-stats ") {
                    last_stats.insert((process.0, slot), rest);
                }
            }
            TraceEvent::Send { label, .. } => {
                if let Some(pos) = label.rfind("cert=") {
                    if let Ok(items) = label[pos + 5..].trim().parse::<u64>() {
                        rec.add("cert-items-sum", items);
                        let max = rec.get("cert-items-max").max(items);
                        rec.set("cert-items-max", max);
                    }
                }
            }
            _ => {}
        }
    }
    for rest in last_stats.values() {
        for tok in rest.split_whitespace() {
            if let Some((key, val)) = tok.split_once('=') {
                if let Ok(v) = val.parse::<u64>() {
                    rec.add(format!("stack-{key}"), v);
                }
            }
        }
    }
    rec.set("rounds", rounds);

    for d in detections(&report.trace) {
        rec.add("detections", 1);
        rec.add(format!("detections-{}", d.class), 1);
    }
}

/// Coalition-focused detection outcomes. Aggregate counters keep their
/// historical meaning, now over the whole coalition: which classes honest
/// observers convicted *any* member under (`convicted-<class>` distinct
/// observers, `conviction-at-<class>` earliest time), plus the first ◇M
/// suspicion. Per-member counters (`m<i>-…`, `i` the member's index in
/// the coalition vector) break the same outcomes down: conviction class
/// coverage, first-conviction time and the convicting observer's round at
/// that moment, and whether ◇M ever suspected the member.
fn record_coalition_metrics<D>(
    rec: &mut RunRecord,
    report: &RunReport<D>,
    members: &[(u32, FaultBehavior)],
) {
    let member_ids: BTreeSet<u32> = members.iter().map(|&(m, _)| m).collect();
    let index_of: BTreeMap<u32, usize> = members
        .iter()
        .enumerate()
        .map(|(i, &(m, _))| (m, i))
        .collect();

    let mut agg_observers: BTreeMap<String, BTreeSet<ProcessId>> = BTreeMap::new();
    let mut agg_first: BTreeMap<String, u64> = BTreeMap::new();
    let mut mem_observers: Vec<BTreeMap<String, BTreeSet<ProcessId>>> =
        vec![BTreeMap::new(); members.len()];
    let mut mem_first_at: Vec<Option<u64>> = vec![None; members.len()];
    let mut mem_first_round: Vec<u64> = vec![0; members.len()];
    let mut mem_suspected: Vec<bool> = vec![false; members.len()];

    // One sequential pass: track each (observer, slot instance)'s current
    // round from its `round=` notes so a conviction can be stamped with
    // the round it landed in.
    let mut rounds: BTreeMap<(u32, Option<u64>), u64> = BTreeMap::new();
    for entry in report.trace.entries() {
        let TraceEvent::Note { process, text } = &entry.event else {
            continue;
        };
        let (slot, text) = split_slot_prefix(text);
        if let Some(r) = text.strip_prefix("round=").and_then(|r| r.parse().ok()) {
            rounds.insert((process.0, slot), r);
        } else if let Some(rest) = text.strip_prefix("detected=") {
            let mut culprit = "";
            let mut class = "";
            for tok in rest.split_whitespace() {
                if let Some(c) = tok.strip_prefix("class=") {
                    class = c;
                } else if culprit.is_empty() {
                    culprit = tok;
                }
            }
            let Some(target) = culprit
                .strip_prefix('p')
                .and_then(|p| p.parse::<u64>().ok())
            else {
                continue;
            };
            let target = target as u32;
            // Convictions spoken by coalition members are not evidence.
            if member_ids.contains(&process.0) || !member_ids.contains(&target) {
                continue;
            }
            agg_observers
                .entry(class.to_string())
                .or_default()
                .insert(*process);
            let at = agg_first.entry(class.to_string()).or_insert(u64::MAX);
            *at = (*at).min(entry.at.ticks());
            let i = index_of[&target];
            mem_observers[i]
                .entry(class.to_string())
                .or_default()
                .insert(*process);
            if mem_first_at[i].is_none() {
                mem_first_at[i] = Some(entry.at.ticks());
                mem_first_round[i] = rounds.get(&(process.0, slot)).copied().unwrap_or(0);
            }
        } else if let Some(rest) = text.strip_prefix("suspect=") {
            let target = rest.split_whitespace().next().unwrap_or("");
            let Some(target) = target.strip_prefix('p').and_then(|p| p.parse::<u64>().ok()) else {
                continue;
            };
            let target = target as u32;
            if let Some(&i) = index_of.get(&target) {
                if !member_ids.contains(&process.0) {
                    mem_suspected[i] = true;
                }
            }
        }
    }

    for (class, obs) in &agg_observers {
        rec.set(format!("convicted-{class}"), obs.len() as u64);
        rec.set(format!("conviction-at-{class}"), agg_first[class]);
    }
    for (i, _) in members.iter().enumerate() {
        for (class, obs) in &mem_observers[i] {
            rec.set(format!("m{i}-convicted-{class}"), obs.len() as u64);
        }
        if let Some(at) = mem_first_at[i] {
            rec.set(format!("m{i}-conviction-at"), at);
            rec.set(format!("m{i}-conviction-round"), mem_first_round[i]);
        }
        rec.set(format!("m{i}-suspected"), u64::from(mem_suspected[i]));
    }

    // First muteness suspicion raised by one process about another: the
    // ◇M module's half of the detection work (suspicion, not conviction).
    let suspicion = report
        .trace
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Note { process, text } => {
                let text = strip_slot_prefix(text);
                let rest = text.strip_prefix("suspect=")?;
                let target = rest.split_whitespace().next().unwrap_or("");
                (format!("p{}", process.0) != target).then(|| e.at.ticks())
            }
            _ => None,
        })
        .min();
    if let Some(at) = suspicion {
        rec.set("suspicion-covered", 1);
        rec.set("suspicion-first-at", at);
    } else {
        rec.set("suspicion-covered", 0);
    }
}

/// Enumerates `matrix`, fans the runs across `threads` workers and
/// aggregates the records into a [`SweepReport`]. The output is a pure
/// function of `(matrix, base_seed)` — thread count only changes wall
/// clock, never a byte of the report.
pub fn sweep_matrix(matrix: &ScenarioMatrix, base_seed: u64, threads: usize) -> SweepReport {
    sweep_matrix_repeated(matrix, 1, base_seed, threads)
}

/// [`sweep_matrix`] with `repeats` runs per cell, each under its own
/// derived seed, so per-cell summaries are real percentiles rather than
/// single observations.
pub fn sweep_matrix_repeated(
    matrix: &ScenarioMatrix,
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> SweepReport {
    sweep_scenarios(&matrix.enumerate(), repeats, base_seed, threads)
}

/// Runs an explicit scenario list through the parallel harness — the entry
/// point for experiment tables whose rows are not a plain cross product
/// (multi-crash budgets, per-row system sizes, hand-built coalitions).
/// Each scenario appears `repeats` consecutive times under its own derived
/// seed, exactly like [`ScenarioMatrix::enumerate_repeated`], so cells
/// aggregate into real percentiles. The output is a pure function of
/// `(scenarios, repeats, base_seed)`.
pub fn sweep_scenarios(
    scenarios: &[Scenario],
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> SweepReport {
    let expanded: Vec<Scenario> = scenarios
        .iter()
        .flat_map(|sc| (0..repeats).map(move |_| sc.clone()))
        .collect();
    let records = sweep(&expanded, base_seed, threads, run_scenario);
    SweepReport::new(base_seed, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_enumerates_row_major_with_distinct_cells() {
        let m = ScenarioMatrix::new(
            vec![(4, 1), (5, 1)],
            vec![FaultBehavior::Honest, FaultBehavior::Crash],
        );
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(
            cells,
            [
                "n=4 f=1 fault=honest",
                "n=4 f=1 fault=crash",
                "n=5 f=1 fault=honest",
                "n=5 f=1 fault=crash",
            ]
        );
    }

    #[test]
    fn crossed_axes_multiply_the_grid_and_mark_their_cells() {
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest])
            .cross_protocols()
            .cross_detectors()
            .cross_workloads(3);
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0], "n=4 f=1 fault=honest");
        assert!(cells.iter().any(|c| c.contains("proto=ct")));
        assert!(cells.iter().any(|c| c.contains("fd=round-aware")));
        assert!(cells.iter().any(|c| c.contains("workload=log3")));
        assert!(
            cells.iter().any(|c| c.contains("proto=ct")
                && c.contains("fd=round-aware")
                && c.contains("workload=log3")),
            "the axes must cross, not just union: {cells:?}"
        );
        let distinct: std::collections::BTreeSet<&String> = cells.iter().collect();
        assert_eq!(distinct.len(), cells.len(), "cell keys collide");
    }

    #[test]
    fn coalition_and_network_axes_multiply_the_grid() {
        let m = ScenarioMatrix::new(vec![(5, 2)], vec![FaultBehavior::Mute])
            .cross_coalitions()
            .cross_networks();
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        // 4 network profiles × coalition sizes 1..=3 (F + 1 = 3).
        assert_eq!(cells.len(), 4 * 3);
        assert_eq!(cells[0], "n=5 f=2 fault=mute");
        assert!(cells.iter().any(|c| c.contains("coalition=2")));
        assert!(
            cells.iter().any(|c| c.contains("coalition=3")),
            "the F + 1 breakage row must be enumerated: {cells:?}"
        );
        assert!(!cells.iter().any(|c| c.contains("coalition=4")));
        for net in ["jittery", "adverse", "no-gst"] {
            assert!(
                cells.iter().any(|c| c.contains(&format!("net={net}"))),
                "missing network {net}: {cells:?}"
            );
        }
        let distinct: std::collections::BTreeSet<&String> = cells.iter().collect();
        assert_eq!(distinct.len(), cells.len(), "cell keys collide");
    }

    #[test]
    fn coalition_cells_key_by_member_behaviors_and_placement() {
        let sc =
            Scenario::coalition_of(7, 3, &[FaultBehavior::Mute, FaultBehavior::DuplicateVotes]);
        assert_eq!(
            sc.attackers,
            vec![(6, FaultBehavior::Mute), (5, FaultBehavior::DuplicateVotes)]
        );
        assert_eq!(sc.cell(), "n=7 f=3 fault=mute+duplicate-votes coalition=2");
        // Explicit non-default placement is part of the key.
        let placed = Scenario::coalition(
            7,
            3,
            vec![(2, FaultBehavior::Mute), (4, FaultBehavior::DuplicateVotes)],
        );
        assert_eq!(
            placed.cell(),
            "n=7 f=3 fault=mute+duplicate-votes coalition=2 members=2+4"
        );
        // A non-calm network is part of the key too.
        let jittery = Scenario::new(4, 1, FaultBehavior::Honest).network(NetworkProfile::jittery());
        assert_eq!(jittery.cell(), "n=4 f=1 fault=honest net=jittery");
    }

    #[test]
    fn single_attacker_constructor_still_places_the_attacker_on_top() {
        let sc = Scenario::new(5, 2, FaultBehavior::Mute);
        assert_eq!(sc.attackers, vec![(4, FaultBehavior::Mute)]);
        assert_eq!(sc.cell(), "n=5 f=2 fault=mute");
        // `coalition_of` at width 1 is the same cell.
        let one = Scenario::coalition_of(5, 2, &[FaultBehavior::Mute]);
        assert_eq!(one.attackers, sc.attackers);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_coalition_members_are_rejected() {
        let _ = Scenario::coalition(
            4,
            1,
            vec![(3, FaultBehavior::Mute), (3, FaultBehavior::Crash)],
        );
    }

    #[test]
    fn full_matrix_covers_the_whole_taxonomy() {
        let m = ScenarioMatrix::full(vec![(4, 1)]);
        assert_eq!(m.enumerate().len(), FaultBehavior::all().len());
        let labels: std::collections::BTreeSet<&str> = FaultBehavior::all()
            .iter()
            .map(super::FaultBehavior::label)
            .collect();
        assert_eq!(labels.len(), FaultBehavior::all().len(), "labels collide");
    }

    #[test]
    fn honest_run_decomposes_bytes_by_layer() {
        let sc = Scenario::new(4, 1, FaultBehavior::Honest);
        let rec = run_scenario(0, &sc, 7);
        assert!(rec.ok, "honest run failed: {rec:?}");
        assert_eq!(rec.get("decided"), 4);
        assert_eq!(rec.get("coalition-size"), 1);
        assert!(rec.get("rounds") >= 1);
        assert!(rec.get("bytes-signature") > 0);
        assert!(rec.get("bytes-protocol") > 0);
        assert_eq!(
            rec.get("bytes-signature") + rec.get("bytes-certificate") + rec.get("bytes-protocol"),
            rec.get("bytes-total"),
            "layer bytes must sum to the wire total"
        );
        assert!(rec.get("stack-admitted") > 0);
        assert_eq!(rec.get("detections"), 0);
    }

    #[test]
    fn vector_corruption_is_survived_and_charged_to_certification() {
        let sc = Scenario::new(4, 1, FaultBehavior::VectorCorrupt);
        let rec = run_scenario(0, &sc, 3);
        assert!(rec.ok, "corrupted run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "certification module never convicted: {rec:?}"
        );
        // The per-member breakdown names the same conviction.
        assert!(rec.get("m0-convicted-bad-certificate") > 0, "{rec:?}");
        assert!(rec.get("m0-conviction-round") >= 1, "{rec:?}");
    }

    #[test]
    fn mixed_coalition_convicts_each_member_under_its_own_class() {
        // Two simultaneous attackers within the budget (F = 2), with
        // *different* behaviors caught by *different* modules: a vector
        // corrupter (certification module) and a wrong-key signer
        // (signature module). Consensus must survive and the per-member
        // breakdown must attribute each conviction class to the right
        // member.
        let sc = Scenario::coalition_of(
            5,
            2,
            &[FaultBehavior::VectorCorrupt, FaultBehavior::WrongKey],
        );
        let rec = run_scenario(0, &sc, 17);
        assert!(rec.ok, "within-budget coalition broke consensus: {rec:?}");
        assert_eq!(rec.get("coalition-size"), 2);
        assert!(
            rec.get("m0-convicted-bad-certificate") > 0,
            "vector corrupter (m0 = p4) never convicted: {rec:?}"
        );
        assert!(
            rec.get("m1-convicted-bad-signature") > 0,
            "wrong-key signer (m1 = p3) never convicted: {rec:?}"
        );
        // No cross-attribution: the corrupter's signatures are fine and
        // the forger's vectors are fine.
        assert_eq!(rec.get("m0-convicted-bad-signature"), 0, "{rec:?}");
        assert_eq!(rec.get("m1-convicted-bad-certificate"), 0, "{rec:?}");
    }

    #[test]
    fn same_seed_reproduces_the_record_exactly() {
        let sc = Scenario::new(4, 1, FaultBehavior::ForgeDecide);
        let a = run_scenario(2, &sc, 0xD5);
        let b = run_scenario(2, &sc, 0xD5);
        assert_eq!(a, b);
        let c = run_scenario(2, &sc, 0xD6);
        assert_ne!(
            a.get("trace-fingerprint"),
            c.get("trace-fingerprint"),
            "distinct seeds should give distinct traces"
        );
    }

    #[test]
    fn single_member_coalition_runs_reproduce_single_attacker_runs() {
        // The coalition runner is the old single-attacker runner's
        // superset: a size-1 coalition must give a bit-identical trace.
        let run = AttackRun::new(4, 1, 9, 3);
        let via_single = run.run(|_| {
            FaultBehavior::DuplicateVotes.make_tamper_for(ProtocolId::HurfinRaynal, 4, 3, 9)
        });
        let via_coalition = run.run_coalition(&[(3, FaultBehavior::DuplicateVotes)]);
        assert_eq!(
            via_single.trace.fingerprint(),
            via_coalition.trace.fingerprint()
        );
    }

    #[test]
    fn extra_crashes_change_the_cell_key_and_exhaust_the_budget() {
        let base = Scenario::new(5, 2, FaultBehavior::Crash);
        assert_eq!(base.cell(), "n=5 f=2 fault=crash");
        let full_budget = base.clone().extra_crashes(1);
        assert_eq!(full_budget.cell(), "n=5 f=2 fault=crash extra-crashes=1");

        // F = 2 total crashes (p0 and the attacker p4): still terminates.
        let rec = run_scenario(0, &full_budget, 21);
        assert!(
            rec.ok,
            "within-budget crashes must not break consensus: {rec:?}"
        );
        assert_eq!(rec.get("prop-termination"), 1);

        // F + 1 crashes: termination is forfeited, safety must survive.
        let beyond = base.extra_crashes(2);
        let rec = run_scenario(0, &beyond, 21);
        assert_eq!(rec.get("prop-termination"), 0, "{rec:?}");
        assert_eq!(rec.get("prop-agreement"), 1, "{rec:?}");
        assert_eq!(rec.get("prop-validity"), 1, "{rec:?}");
    }

    #[test]
    fn crash_coalition_beyond_the_budget_forfeits_termination_only() {
        // Same budget arithmetic driven purely by the coalition axis:
        // F + 1 = 3 crashed members out of n = 5.
        let beyond = Scenario::coalition_of(
            5,
            2,
            &[
                FaultBehavior::Crash,
                FaultBehavior::Crash,
                FaultBehavior::Crash,
            ],
        );
        let rec = run_scenario(0, &beyond, 21);
        assert_eq!(rec.get("coalition-size"), 3);
        assert_eq!(rec.get("prop-termination"), 0, "{rec:?}");
        assert_eq!(rec.get("prop-agreement"), 1, "{rec:?}");
        assert_eq!(rec.get("prop-validity"), 1, "{rec:?}");
    }

    #[test]
    fn scenario_lists_sweep_like_the_matrix_does() {
        let scenarios = vec![
            Scenario::new(4, 1, FaultBehavior::Honest),
            Scenario::new(4, 1, FaultBehavior::Honest).extra_crashes(1),
        ];
        let rep = sweep_scenarios(&scenarios, 2, 0xE3, 2);
        assert_eq!(rep.records.len(), 4);
        // Matrix-equivalent lists produce identical reports.
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
        let via_matrix = sweep_matrix_repeated(&m, 2, 7, 2);
        let via_list = sweep_scenarios(&m.enumerate(), 2, 7, 2);
        assert_eq!(
            via_matrix.to_json().render(),
            via_list.to_json().render(),
            "sweep_scenarios must be the matrix sweep's primitive"
        );
        // The coordinator-crash cell forces ◇M suspicions before progress.
        let crashed_cell = &rep.cells()["n=4 f=1 fault=honest extra-crashes=1"];
        assert!(crashed_cell.stats["suspicion-covered"].max >= 1, "{rep:?}");
    }

    #[test]
    fn non_default_axes_extend_the_cell_key() {
        let base = Scenario::new(4, 1, FaultBehavior::Honest);
        assert_eq!(base.cell(), "n=4 f=1 fault=honest");
        assert_eq!(
            base.clone().protocol(ProtocolId::ChandraToueg).cell(),
            "n=4 f=1 fault=honest proto=ct"
        );
        assert_eq!(
            base.clone().detector(DetectorKind::RoundAware).cell(),
            "n=4 f=1 fault=honest fd=round-aware"
        );
        assert_eq!(
            base.clone().workload(Workload::Log { slots: 2 }).cell(),
            "n=4 f=1 fault=honest workload=log2"
        );
        assert_eq!(
            base.protocol(ProtocolId::ChandraToueg)
                .detector(DetectorKind::RoundAware)
                .workload(Workload::Log { slots: 3 })
                .extra_crashes(1)
                .network(NetworkProfile::adverse())
                .cell(),
            "n=4 f=1 fault=honest proto=ct fd=round-aware workload=log3 extra-crashes=1 net=adverse"
        );
    }

    #[test]
    fn cross_protocol_matrix_doubles_the_cells() {
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]).cross_protocols();
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(
            cells,
            ["n=4 f=1 fault=honest", "n=4 f=1 fault=honest proto=ct"]
        );
    }

    #[test]
    fn chandra_toueg_cells_run_the_ct_stack() {
        let sc = Scenario::new(4, 1, FaultBehavior::Honest).protocol(ProtocolId::ChandraToueg);
        let rec = run_scenario(0, &sc, 7);
        assert!(rec.ok, "honest CT run failed: {rec:?}");
        assert_eq!(rec.get("decided"), 4);
        assert!(rec.get("stack-admitted") > 0);
        assert_eq!(rec.get("detections"), 0);
    }

    #[test]
    fn ct_vector_corruption_is_survived_and_charged_to_certification() {
        let sc =
            Scenario::new(4, 1, FaultBehavior::VectorCorrupt).protocol(ProtocolId::ChandraToueg);
        let rec = run_scenario(0, &sc, 3);
        assert!(rec.ok, "corrupted CT run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "certification module never convicted under CT: {rec:?}"
        );
    }

    #[test]
    fn round_aware_detector_cells_run_and_report_fd_mistakes() {
        // Crash the round-1 coordinator so the detector actually has to
        // suspect someone before the system progresses.
        let sc = Scenario::new(4, 1, FaultBehavior::Honest)
            .detector(DetectorKind::RoundAware)
            .extra_crashes(1);
        let rec = run_scenario(0, &sc, 11);
        assert!(rec.ok, "round-aware run failed: {rec:?}");
        assert!(rec.get("suspicions") > 0, "{rec:?}");
        // The counter key exists either way (zero is fine: suspecting an
        // actually-crashed process is never corrected as a mistake).
        assert!(rec.counters.contains_key("stack-fd-mistakes"), "{rec:?}");
        assert!(
            rec.counters.contains_key("stack-fd-honest-mistakes"),
            "{rec:?}"
        );
    }

    #[test]
    fn jittery_network_cells_still_decide() {
        let sc = Scenario::new(4, 1, FaultBehavior::Honest).network(NetworkProfile::jittery());
        let rec = run_scenario(0, &sc, 13);
        assert!(rec.ok, "jittery honest run failed: {rec:?}");
        assert_eq!(rec.get("decided"), 4);
    }

    #[test]
    fn log_workload_cells_decide_every_slot_on_both_protocols() {
        for protocol in ProtocolId::all() {
            let sc = Scenario::new(4, 1, FaultBehavior::Honest)
                .protocol(protocol)
                .workload(Workload::Log { slots: 2 });
            let rec = run_scenario(0, &sc, 5);
            assert!(rec.ok, "honest {protocol} log run failed: {rec:?}");
            assert_eq!(rec.get("decided"), 4, "{rec:?}");
            // Slot notes still feed the shared counters.
            assert!(rec.get("rounds") >= 1, "{rec:?}");
            assert!(rec.get("stack-admitted") > 0, "{rec:?}");
        }
    }

    #[test]
    fn log_workload_survives_an_attacker() {
        let sc =
            Scenario::new(4, 1, FaultBehavior::VectorCorrupt).workload(Workload::Log { slots: 2 });
        let rec = run_scenario(0, &sc, 9);
        assert!(rec.ok, "corrupted log run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "no conviction across the log run: {rec:?}"
        );
    }

    #[test]
    fn small_sweep_is_all_ok_and_reports_layer_metrics() {
        let m = ScenarioMatrix::new(
            vec![(4, 1)],
            vec![
                FaultBehavior::Honest,
                FaultBehavior::Mute,
                FaultBehavior::StripCertificates,
            ],
        );
        let rep = sweep_matrix(&m, 11, 2);
        assert!(rep.all_ok(), "sweep had failures: {rep:?}");
        let json = rep.to_json().render();
        for key in ["bytes-signature", "bytes-certificate", "bytes-protocol"] {
            assert!(json.contains(key), "report lost layer metric {key}");
        }
    }
}
