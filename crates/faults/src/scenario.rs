//! Scenario enumeration and execution glue for the sweep harness.
//!
//! The paper's experiments (E3/E4) run the transformed protocol against
//! every fault class in the taxonomy, over a grid of system sizes. This
//! module names those cells — a [`Scenario`] is one `(n, F, fault
//! behavior)` triple — and turns each into a single deterministic run:
//! [`run_scenario`] builds the full stack (keys, transformed actors, one
//! wrapped attacker), executes it under the seeded simulator, checks the
//! vector-consensus properties, and flattens everything the run produced
//! into the flat counter map of an [`ftm_sim::harness::RunRecord`].
//!
//! The counters decompose cost by module layer, mirroring Fig. 1:
//!
//! * `bytes-signature` / `bytes-certificate` / `bytes-protocol` — wire
//!   bytes attributed to the signature module, the certification module
//!   and the protocol core (they sum to `bytes-total`);
//! * `suspicions` — muteness-FD activity (◇M suspicion events);
//! * `stack-*` — receive-side admit/reject counts per module, from each
//!   process's [`ftm_core::transform::StackStats`] note;
//! * `detections-*` — convictions per fault class (`out-of-order` is the
//!   non-muteness automaton's wrong-expected count);
//! * `cert-items-*` — certificate sizes carried on sent messages.
//!
//! Everything is a pure function of `(scenario, seed)`: the same pair
//! reproduces the same trace fingerprint bit for bit, which is what lets
//! [`sweep_matrix`] fan runs across threads without losing replayability.

use ftm_certify::{Value, ValueVector};
use ftm_core::byzantine::ByzantineConsensus;
use ftm_core::config::{ProtocolConfig, ProtocolSetup};
use ftm_core::validator::{check_vector_consensus, detections, Verdict};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::harness::{sweep, RunRecord, SweepReport};
use ftm_sim::runner::BoxedActor;
use ftm_sim::trace::TraceEvent;
use ftm_sim::{Duration, ProcessId, RunReport, SimConfig, Simulation, VirtualTime};

use crate::attacks;
use crate::{ByzantineWrapper, Tamper};

/// One fault behavior the attacker process may exhibit — the paper's
/// taxonomy (§2–3) plus the honest baseline and the benign crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultBehavior {
    /// No fault: every process runs the honest protocol.
    Honest,
    /// Benign crash at t = 0 (muteness by the simplest means).
    Crash,
    /// Permanent omission from t = 30 on (muteness without crashing).
    Mute,
    /// Corruption of a variable value: one vector entry poisoned.
    VectorCorrupt,
    /// Misevaluation of an expression: round numbers jumped ahead.
    RoundJump,
    /// Duplication of a statement: every vote sent twice.
    DuplicateVotes,
    /// Spurious statement: a fabricated DECIDE with no certificate.
    ForgeDecide,
    /// Forged signatures: messages signed with a key not in the directory.
    WrongKey,
    /// Identity falsification: messages claim to come from a victim.
    StealIdentity,
    /// Equivocation: different INIT values to different receivers.
    EquivocateInit,
    /// Spurious statement: an uncertified CURRENT out of the blue.
    SpuriousCurrent,
    /// Replay: the attacker's own honest output recorded and resent.
    Replay,
    /// Evidence suppression: certificates stripped from every message.
    StripCertificates,
    /// Transient omission: the attacker talks only to low-numbered peers.
    SelectiveOmission,
}

impl FaultBehavior {
    /// Every behavior, in a stable order (the matrix enumeration order).
    pub fn all() -> Vec<FaultBehavior> {
        use FaultBehavior::*;
        vec![
            Honest,
            Crash,
            Mute,
            VectorCorrupt,
            RoundJump,
            DuplicateVotes,
            ForgeDecide,
            WrongKey,
            StealIdentity,
            EquivocateInit,
            SpuriousCurrent,
            Replay,
            StripCertificates,
            SelectiveOmission,
        ]
    }

    /// Stable kebab-case name used in cell keys and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultBehavior::Honest => "honest",
            FaultBehavior::Crash => "crash",
            FaultBehavior::Mute => "mute",
            FaultBehavior::VectorCorrupt => "vector-corrupt",
            FaultBehavior::RoundJump => "round-jump",
            FaultBehavior::DuplicateVotes => "duplicate-votes",
            FaultBehavior::ForgeDecide => "forge-decide",
            FaultBehavior::WrongKey => "wrong-key",
            FaultBehavior::StealIdentity => "steal-identity",
            FaultBehavior::EquivocateInit => "equivocate-init",
            FaultBehavior::SpuriousCurrent => "spurious-current",
            FaultBehavior::Replay => "replay",
            FaultBehavior::StripCertificates => "strip-certificates",
            FaultBehavior::SelectiveOmission => "selective-omission",
        }
    }

    /// Builds the outgoing-message tamper for this behavior, or `None`
    /// when the behavior needs no wrapper (honest runs, benign crashes).
    pub fn make_tamper(&self, n: usize, attacker: u32, seed: u64) -> Option<Box<dyn Tamper>> {
        let t: Box<dyn Tamper> = match self {
            FaultBehavior::Honest | FaultBehavior::Crash => return None,
            FaultBehavior::Mute => Box::new(attacks::MuteAfter {
                after: VirtualTime::at(30),
            }),
            FaultBehavior::VectorCorrupt => Box::new(attacks::VectorCorruptor {
                // Poison an honest process's entry, never the attacker's own.
                entry: (attacker as usize + 1) % n,
                poison: 666,
            }),
            FaultBehavior::RoundJump => Box::new(attacks::RoundJumper { jump: 5 }),
            FaultBehavior::DuplicateVotes => Box::new(attacks::VoteDuplicator),
            FaultBehavior::ForgeDecide => {
                Box::new(attacks::DecideForger::new(VirtualTime::at(1), n, 999))
            }
            FaultBehavior::WrongKey => {
                let mut rng = ftm_crypto::rng_from_seed(0xBAD ^ seed);
                Box::new(attacks::WrongKeySigner {
                    wrong: KeyPair::generate(&mut rng, 128),
                })
            }
            FaultBehavior::StealIdentity => Box::new(attacks::IdentityThief {
                victim: ProcessId(((attacker as usize + 1) % n) as u32),
            }),
            FaultBehavior::EquivocateInit => Box::new(attacks::InitEquivocator { alt: 1313 }),
            FaultBehavior::SpuriousCurrent => {
                Box::new(attacks::SpuriousCurrent::new(VirtualTime::at(1), n))
            }
            FaultBehavior::Replay => Box::new(attacks::Replayer::new(VirtualTime::at(30))),
            FaultBehavior::StripCertificates => Box::new(attacks::CertStripper),
            FaultBehavior::SelectiveOmission => {
                Box::new(attacks::SelectiveSender { cutoff: n / 2 })
            }
        };
        Some(t)
    }
}

/// One cell of the sweep: system size, resilience bound and the fault the
/// last process exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound F (at most F arbitrary-faulty processes).
    pub f: usize,
    /// The behavior of the attacker process.
    pub behavior: FaultBehavior,
    /// How many *additional* low-numbered processes (`p0`, `p1`, …) crash
    /// benignly at t = 0, on top of whatever the behavior does to the
    /// attacker. `1` kills the round-1 coordinator (forcing NEXT-vote
    /// traffic); `F − 1` plus a [`FaultBehavior::Crash`] attacker exhausts
    /// the fault budget; `F` plus a crashed attacker exceeds it on purpose.
    pub extra_crashes: usize,
}

impl Scenario {
    /// A cell with no extra crashes (the plain taxonomy grid).
    pub fn new(n: usize, f: usize, behavior: FaultBehavior) -> Self {
        Scenario {
            n,
            f,
            behavior,
            extra_crashes: 0,
        }
    }

    /// Additionally crashes processes `p0..p{k-1}` at t = 0.
    pub fn extra_crashes(mut self, k: usize) -> Self {
        self.extra_crashes = k;
        self
    }

    /// The attacker is always the highest-numbered process — never the
    /// round-1 coordinator (p0), so honest progress stays representative.
    pub fn attacker(&self) -> u32 {
        (self.n - 1) as u32
    }

    /// Cell key used to group runs for aggregation.
    pub fn cell(&self) -> String {
        let mut key = format!("n={} f={} fault={}", self.n, self.f, self.behavior.label());
        if self.extra_crashes > 0 {
            key.push_str(&format!(" extra-crashes={}", self.extra_crashes));
        }
        key
    }
}

/// A scenario grid: the cross product of system configurations and fault
/// behaviors, enumerated in a stable row-major order.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// `(n, F)` pairs, the grid's rows.
    pub systems: Vec<(usize, usize)>,
    /// Fault behaviors, the grid's columns.
    pub behaviors: Vec<FaultBehavior>,
}

impl ScenarioMatrix {
    /// Builds a matrix from explicit rows and columns.
    pub fn new(systems: Vec<(usize, usize)>, behaviors: Vec<FaultBehavior>) -> Self {
        ScenarioMatrix { systems, behaviors }
    }

    /// The given systems crossed with *every* behavior in the taxonomy.
    pub fn full(systems: Vec<(usize, usize)>) -> Self {
        ScenarioMatrix::new(systems, FaultBehavior::all())
    }

    /// Enumerates the cells row-major: systems outer, behaviors inner.
    /// The position in this list is the scenario index the harness feeds
    /// to [`ftm_sim::prng::derive_seed`].
    pub fn enumerate(&self) -> Vec<Scenario> {
        self.enumerate_repeated(1)
    }

    /// Like [`enumerate`](Self::enumerate), but each cell appears
    /// `repeats` consecutive times. Repeats share a cell key and distinct
    /// indices, so they get distinct derived seeds and aggregate into the
    /// same cell — this is how a sweep gets percentiles per cell.
    pub fn enumerate_repeated(&self, repeats: usize) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.systems.len() * self.behaviors.len() * repeats);
        for &(n, f) in &self.systems {
            for &behavior in &self.behaviors {
                for _ in 0..repeats {
                    out.push(Scenario::new(n, f, behavior));
                }
            }
        }
        out
    }
}

/// One hand-configured adversarial run: the stack-building glue (keys,
/// transformed actors, one wrapped attacker, optional coordinator crash)
/// shared by [`run_scenario`] and the repo's integration tests, which used
/// to duplicate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackRun {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound F (at most F arbitrary-faulty processes).
    pub f: usize,
    /// Simulator and key-generation seed.
    pub seed: u64,
    /// The Byzantine process.
    pub attacker: u32,
    /// Injection-timer delay for the wrapper. The default (3 ticks) beats
    /// the fastest honest decision (t ≈ 10 under the default delay range);
    /// a timed attack injected later fires into an already-halted system
    /// and detection assertions become vacuous.
    pub injection_delay: Duration,
    /// Process crashed at t = 0, if any — crash the round-1 coordinator to
    /// force NEXT-vote traffic.
    pub crash_at_start: Option<u32>,
    /// Crash processes `p0..p{k-1}` at t = 0 as well (multi-crash rows:
    /// fault budgets up to and beyond F).
    pub crash_low: usize,
}

impl AttackRun {
    /// An `(n, F)` system under `seed` with one attacker, default
    /// injection delay and nobody crashed.
    pub fn new(n: usize, f: usize, seed: u64, attacker: u32) -> Self {
        AttackRun {
            n,
            f,
            seed,
            attacker,
            injection_delay: Duration::of(3),
            crash_at_start: None,
            crash_low: 0,
        }
    }

    /// Overrides the wrapper's injection-timer delay.
    pub fn injection_delay(mut self, delay: Duration) -> Self {
        self.injection_delay = delay;
        self
    }

    /// Crashes process `p` at t = 0.
    pub fn crash_at_start(mut self, p: u32) -> Self {
        self.crash_at_start = Some(p);
        self
    }

    /// Crashes processes `p0..p{k-1}` at t = 0.
    pub fn crash_low(mut self, k: usize) -> Self {
        self.crash_low = k;
        self
    }

    /// The canonical proposal vector: process `i` proposes `100 + i`.
    pub fn proposals(&self) -> Vec<Value> {
        (0..self.n as u64).map(|i| 100 + i).collect()
    }

    /// Builds the full stack and executes the run. `mk_tamper` may return
    /// `None` for an honest (or merely crashed) system.
    pub fn run(
        &self,
        mk_tamper: impl FnOnce(&ProtocolSetup) -> Option<Box<dyn Tamper>>,
    ) -> RunReport<ValueVector> {
        let setup = ProtocolConfig::new(self.n, self.f).seed(self.seed).setup();
        let props = self.proposals();
        let mut tamper = mk_tamper(&setup);

        let mut cfg = SimConfig::new(self.n).seed(self.seed);
        if let Some(p) = self.crash_at_start {
            cfg = cfg.crash(p as usize, VirtualTime::ZERO);
        }
        for p in 0..self.crash_low {
            cfg = cfg.crash(p, VirtualTime::ZERO);
        }

        Simulation::build_boxed(cfg, |id| {
            let honest = ByzantineConsensus::new(&setup, id, props[id.index()]);
            if id.0 == self.attacker {
                if let Some(tamper) = tamper.take() {
                    return Box::new(ByzantineWrapper::new(
                        honest,
                        tamper,
                        setup.keys[self.attacker as usize].clone(),
                        self.injection_delay,
                    )) as BoxedActor<_, _>;
                }
            }
            Box::new(honest)
        })
        .run()
    }

    /// Checks the vector-consensus properties with only the attacker
    /// marked faulty.
    pub fn verdict(&self, report: &RunReport<ValueVector>) -> Verdict {
        let mut faulty = vec![false; self.n];
        faulty[self.attacker as usize] = true;
        check_vector_consensus(report, &self.proposals(), &faulty, self.f)
    }
}

/// Runs one scenario under one derived seed and flattens the outcome into
/// a [`RunRecord`]. Matches the signature [`ftm_sim::harness::sweep`]
/// expects, so it can be passed directly as the worker function.
pub fn run_scenario(index: usize, sc: &Scenario, seed: u64) -> RunRecord {
    let attacker = sc.attacker();
    let mut run = AttackRun::new(sc.n, sc.f, seed, attacker).crash_low(sc.extra_crashes);
    if sc.behavior == FaultBehavior::Crash {
        run = run.crash_at_start(attacker);
    }
    let report = run.run(|_| sc.behavior.make_tamper(sc.n, attacker, seed));

    let mut faulty = vec![false; sc.n];
    if sc.behavior != FaultBehavior::Honest {
        faulty[attacker as usize] = true;
    }
    let verdict = check_vector_consensus(&report, &run.proposals(), &faulty, sc.f);

    let mut rec = RunRecord::new(sc.cell(), index, seed);
    rec.ok = verdict.ok();
    // Individual property verdicts, so experiment tables can separate
    // termination (forfeited beyond the bound) from safety (never).
    rec.set("prop-termination", u64::from(verdict.termination));
    rec.set("prop-agreement", u64::from(verdict.agreement));
    rec.set("prop-validity", u64::from(verdict.validity));
    record_metrics(&mut rec, &report);
    record_attacker_metrics(&mut rec, &report, attacker);
    rec
}

/// Flattens a finished run's metrics, trace notes and detections into the
/// record's counter map. Every counter listed in the module docs is set
/// (zero when the run never exercised that layer), so each cell of the
/// aggregated report carries the full per-layer breakdown.
fn record_metrics(rec: &mut RunRecord, report: &RunReport<ValueVector>) {
    // Send-side cost, decomposed by module layer (see `Payload::layer_split`).
    rec.set("messages-sent", report.metrics.messages_sent);
    rec.set("bytes-total", report.metrics.bytes_sent);
    rec.set("bytes-signature", report.metrics.signature_bytes);
    rec.set("bytes-certificate", report.metrics.certificate_bytes);
    rec.set("bytes-protocol", report.metrics.protocol_bytes);
    rec.set("messages-delivered", report.metrics.messages_delivered);
    rec.set("end-time", report.end_time.ticks());
    rec.set("decided", report.decisions.iter().flatten().count() as u64);
    rec.set("trace-fingerprint", report.trace.fingerprint());

    // Receive-side and FD counters start at zero so every record exposes
    // the same key set regardless of which layers fired.
    for key in [
        "suspicions",
        "detections",
        "detections-bad-signature",
        "detections-bad-certificate",
        "detections-out-of-order",
        "detections-wrong-syntax",
        "stack-admitted",
        "stack-sig-rejects",
        "stack-cert-rejects",
        "stack-auto-rejects",
        "stack-syntax-rejects",
        "cert-items-sum",
        "cert-items-max",
    ] {
        rec.add(key, 0);
    }

    let mut rounds = 0u64;
    for entry in report.trace.entries() {
        match &entry.event {
            TraceEvent::Note { text, .. } => {
                if let Some(r) = text.strip_prefix("round=") {
                    rounds = rounds.max(r.parse().unwrap_or(0));
                } else if text.starts_with("suspect=") {
                    rec.add("suspicions", 1);
                } else if let Some(rest) = text.strip_prefix("stack-stats ") {
                    for tok in rest.split_whitespace() {
                        if let Some((key, val)) = tok.split_once('=') {
                            if let Ok(v) = val.parse::<u64>() {
                                rec.add(format!("stack-{key}"), v);
                            }
                        }
                    }
                }
            }
            TraceEvent::Send { label, .. } => {
                if let Some(pos) = label.rfind("cert=") {
                    if let Ok(items) = label[pos + 5..].trim().parse::<u64>() {
                        rec.add("cert-items-sum", items);
                        let max = rec.get("cert-items-max").max(items);
                        rec.set("cert-items-max", max);
                    }
                }
            }
            _ => {}
        }
    }
    rec.set("rounds", rounds);

    for d in detections(&report.trace) {
        rec.add("detections", 1);
        rec.add(format!("detections-{}", d.class), 1);
    }
}

/// Attacker-focused detection outcomes: which classes correct observers
/// convicted the attacker under, how many distinct observers did, and when
/// the first conviction (and first ◇M suspicion) landed. These drive the
/// coverage/observers/latency columns of the E4 table.
fn record_attacker_metrics(rec: &mut RunRecord, report: &RunReport<ValueVector>, attacker: u32) {
    use std::collections::{BTreeMap, BTreeSet};

    let culprit = format!("p{attacker}");
    let mut observers: BTreeMap<String, BTreeSet<ProcessId>> = BTreeMap::new();
    let mut first: BTreeMap<String, u64> = BTreeMap::new();
    for d in detections(&report.trace) {
        if d.culprit != culprit || d.observer == ProcessId(attacker) {
            continue;
        }
        observers
            .entry(d.class.clone())
            .or_default()
            .insert(d.observer);
        let at = first.entry(d.class.clone()).or_insert(u64::MAX);
        *at = (*at).min(d.at.ticks());
    }
    for (class, obs) in &observers {
        rec.set(format!("convicted-{class}"), obs.len() as u64);
        rec.set(format!("conviction-at-{class}"), first[class]);
    }

    // First muteness suspicion raised by one process about another: the
    // ◇M module's half of the detection work (suspicion, not conviction).
    let suspicion = report
        .trace
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Note { process, text } if text.starts_with("suspect=") => {
                let target = text[8..].split_whitespace().next().unwrap_or("");
                (format!("p{}", process.0) != target).then(|| e.at.ticks())
            }
            _ => None,
        })
        .min();
    if let Some(at) = suspicion {
        rec.set("suspicion-covered", 1);
        rec.set("suspicion-first-at", at);
    } else {
        rec.set("suspicion-covered", 0);
    }
}

/// Enumerates `matrix`, fans the runs across `threads` workers and
/// aggregates the records into a [`SweepReport`]. The output is a pure
/// function of `(matrix, base_seed)` — thread count only changes wall
/// clock, never a byte of the report.
pub fn sweep_matrix(matrix: &ScenarioMatrix, base_seed: u64, threads: usize) -> SweepReport {
    sweep_matrix_repeated(matrix, 1, base_seed, threads)
}

/// [`sweep_matrix`] with `repeats` runs per cell, each under its own
/// derived seed, so per-cell summaries are real percentiles rather than
/// single observations.
pub fn sweep_matrix_repeated(
    matrix: &ScenarioMatrix,
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> SweepReport {
    sweep_scenarios(&matrix.enumerate(), repeats, base_seed, threads)
}

/// Runs an explicit scenario list through the parallel harness — the entry
/// point for experiment tables whose rows are not a plain cross product
/// (multi-crash budgets, per-row system sizes). Each scenario appears
/// `repeats` consecutive times under its own derived seed, exactly like
/// [`ScenarioMatrix::enumerate_repeated`], so cells aggregate into real
/// percentiles. The output is a pure function of
/// `(scenarios, repeats, base_seed)`.
pub fn sweep_scenarios(
    scenarios: &[Scenario],
    repeats: usize,
    base_seed: u64,
    threads: usize,
) -> SweepReport {
    let expanded: Vec<Scenario> = scenarios
        .iter()
        .flat_map(|sc| (0..repeats).map(move |_| *sc))
        .collect();
    let records = sweep(&expanded, base_seed, threads, run_scenario);
    SweepReport::new(base_seed, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_enumerates_row_major_with_distinct_cells() {
        let m = ScenarioMatrix::new(
            vec![(4, 1), (5, 1)],
            vec![FaultBehavior::Honest, FaultBehavior::Crash],
        );
        let cells: Vec<String> = m.enumerate().iter().map(Scenario::cell).collect();
        assert_eq!(
            cells,
            [
                "n=4 f=1 fault=honest",
                "n=4 f=1 fault=crash",
                "n=5 f=1 fault=honest",
                "n=5 f=1 fault=crash",
            ]
        );
    }

    #[test]
    fn full_matrix_covers_the_whole_taxonomy() {
        let m = ScenarioMatrix::full(vec![(4, 1)]);
        assert_eq!(m.enumerate().len(), FaultBehavior::all().len());
        let labels: std::collections::BTreeSet<&str> = FaultBehavior::all()
            .iter()
            .map(super::FaultBehavior::label)
            .collect();
        assert_eq!(labels.len(), FaultBehavior::all().len(), "labels collide");
    }

    #[test]
    fn honest_run_decomposes_bytes_by_layer() {
        let sc = Scenario::new(4, 1, FaultBehavior::Honest);
        let rec = run_scenario(0, &sc, 7);
        assert!(rec.ok, "honest run failed: {rec:?}");
        assert_eq!(rec.get("decided"), 4);
        assert!(rec.get("rounds") >= 1);
        assert!(rec.get("bytes-signature") > 0);
        assert!(rec.get("bytes-protocol") > 0);
        assert_eq!(
            rec.get("bytes-signature") + rec.get("bytes-certificate") + rec.get("bytes-protocol"),
            rec.get("bytes-total"),
            "layer bytes must sum to the wire total"
        );
        assert!(rec.get("stack-admitted") > 0);
        assert_eq!(rec.get("detections"), 0);
    }

    #[test]
    fn vector_corruption_is_survived_and_charged_to_certification() {
        let sc = Scenario::new(4, 1, FaultBehavior::VectorCorrupt);
        let rec = run_scenario(0, &sc, 3);
        assert!(rec.ok, "corrupted run violated the spec: {rec:?}");
        assert!(
            rec.get("detections-bad-certificate") > 0,
            "certification module never convicted: {rec:?}"
        );
    }

    #[test]
    fn same_seed_reproduces_the_record_exactly() {
        let sc = Scenario::new(4, 1, FaultBehavior::ForgeDecide);
        let a = run_scenario(2, &sc, 0xD5);
        let b = run_scenario(2, &sc, 0xD5);
        assert_eq!(a, b);
        let c = run_scenario(2, &sc, 0xD6);
        assert_ne!(
            a.get("trace-fingerprint"),
            c.get("trace-fingerprint"),
            "distinct seeds should give distinct traces"
        );
    }

    #[test]
    fn extra_crashes_change_the_cell_key_and_exhaust_the_budget() {
        let base = Scenario::new(5, 2, FaultBehavior::Crash);
        assert_eq!(base.cell(), "n=5 f=2 fault=crash");
        let full_budget = base.extra_crashes(1);
        assert_eq!(full_budget.cell(), "n=5 f=2 fault=crash extra-crashes=1");

        // F = 2 total crashes (p0 and the attacker p4): still terminates.
        let rec = run_scenario(0, &full_budget, 21);
        assert!(
            rec.ok,
            "within-budget crashes must not break consensus: {rec:?}"
        );
        assert_eq!(rec.get("prop-termination"), 1);

        // F + 1 crashes: termination is forfeited, safety must survive.
        let beyond = base.extra_crashes(2);
        let rec = run_scenario(0, &beyond, 21);
        assert_eq!(rec.get("prop-termination"), 0, "{rec:?}");
        assert_eq!(rec.get("prop-agreement"), 1, "{rec:?}");
        assert_eq!(rec.get("prop-validity"), 1, "{rec:?}");
    }

    #[test]
    fn scenario_lists_sweep_like_the_matrix_does() {
        let scenarios = vec![
            Scenario::new(4, 1, FaultBehavior::Honest),
            Scenario::new(4, 1, FaultBehavior::Honest).extra_crashes(1),
        ];
        let rep = sweep_scenarios(&scenarios, 2, 0xE3, 2);
        assert_eq!(rep.records.len(), 4);
        // Matrix-equivalent lists produce identical reports.
        let m = ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Honest]);
        let via_matrix = sweep_matrix_repeated(&m, 2, 7, 2);
        let via_list = sweep_scenarios(&m.enumerate(), 2, 7, 2);
        assert_eq!(
            via_matrix.to_json().render(),
            via_list.to_json().render(),
            "sweep_scenarios must be the matrix sweep's primitive"
        );
        // The coordinator-crash cell forces ◇M suspicions before progress.
        let crashed_cell = &rep.cells()["n=4 f=1 fault=honest extra-crashes=1"];
        assert!(crashed_cell.stats["suspicion-covered"].max >= 1, "{rep:?}");
    }

    #[test]
    fn small_sweep_is_all_ok_and_reports_layer_metrics() {
        let m = ScenarioMatrix::new(
            vec![(4, 1)],
            vec![
                FaultBehavior::Honest,
                FaultBehavior::Mute,
                FaultBehavior::StripCertificates,
            ],
        );
        let rep = sweep_matrix(&m, 11, 2);
        assert!(rep.all_ok(), "sweep had failures: {rep:?}");
        let json = rep.to_json().render();
        for key in ["bytes-signature", "bytes-certificate", "bytes-protocol"] {
            assert!(json.contains(key), "report lost layer metric {key}");
        }
    }
}
