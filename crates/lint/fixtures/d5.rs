// D5 fixture: ad-hoc quorum arithmetic in a protocol crate.
pub struct Thresholds {
    n: usize,
    f: usize,
}

impl Thresholds {
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }
}
