// D2 fixture: hash collections in a report-feeding crate.
use std::collections::HashMap;

pub fn tally(votes: &[u32]) -> HashMap<u32, u32> {
    let mut out = HashMap::new();
    for v in votes {
        *out.entry(*v).or_insert(0) += 1;
    }
    out
}
