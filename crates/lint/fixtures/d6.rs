// D6 fixture: an abort in a message-handling path.
pub fn handle(payload: Option<u32>) -> u32 {
    payload.unwrap()
}
