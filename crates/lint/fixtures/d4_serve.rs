// D4 fixture (serve): server-side parallelism must go through ftm-net's
// node/cluster entry points, never raw spawns.
pub fn fan_out_replicas() {
    let worker = std::thread::Builder::new().name("replica".to_string());
    let _ = worker.spawn(|| 7);
}
