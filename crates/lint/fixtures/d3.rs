// D3 fixture: wall-clock time outside the bench timing module.
use std::time::Instant;

pub fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_secs()
}
