// D4 fixture: raw thread spawning outside the simulation harness.
pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
