// D7 fixture: an `as` narrowing cast in threshold arithmetic.
pub fn coordinator_index(round: u64, n: u64) -> u32 {
    ((round - 1) % n) as u32
}
