// D1 fixture: floating point in report arithmetic.
pub fn mean(xs: &[u64]) -> f64 {
    let total: u64 = xs.iter().sum();
    total as f64 / 2.0
}
