// D3 fixture (serve): the server binaries sit above the transport and
// must take time from ftm-net's WallClock, not read their own.
use std::time::SystemTime;

pub fn stamp() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
