//! The seven determinism & quorum-discipline rules, D1–D7.
//!
//! Each rule is a token-level pattern with a path scope. Scopes are
//! expressed against repo-relative paths with forward slashes (the engine
//! normalises separators before calling in here), so the rules themselves
//! are pure functions of `(path, token stream)`.
//!
//! | Lint | Enforces                                                        |
//! |------|-----------------------------------------------------------------|
//! | D1   | no `f32`/`f64` outside `crates/bench/src/timing.rs`             |
//! | D2   | no `HashMap`/`HashSet` in report-feeding crates                 |
//! | D3   | no `Instant`/`SystemTime` outside timing.rs / net's `clock.rs`  |
//! | D4   | no `std::thread::spawn` outside `ftm_sim::harness` / net's `cluster.rs` |
//! | D5   | no ad-hoc quorum arithmetic outside `ftm-quorum`                |
//! | D6   | no `unwrap`/`expect`/`panic!` in message-handling paths         |
//! | D7   | no `as` narrowing casts in quorum/threshold arithmetic          |

use crate::lexer::{Lexed, TokenKind};

/// The lint identifiers, in report order. Reports always key counts by all
/// seven so the JSON shape never varies with the finding set.
pub const LINT_IDS: [&str; 7] = ["D1", "D2", "D3", "D4", "D5", "D6", "D7"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint identifier (`"D1"`..`"D6"`).
    pub lint: &'static str,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable description with a remediation hint.
    pub message: String,
}

/// The sanctioned home of wall-clock time and floating point.
const TIMING: &str = "crates/bench/src/timing.rs";
/// The sanctioned home of `std::thread` fan-out.
const HARNESS: &str = "crates/sim/src/harness.rs";
/// The transport needs a real clock, but only ONE file in it may read
/// `Instant` directly: everything else (the node loop, the poll probe,
/// the load generator, the integration tests) goes through its
/// `WallClock` API. The crate gets no float pass (D1) either: byte
/// counters and timings there stay integer so load reports remain
/// byte-stable.
const NET_CLOCK: &str = "crates/net/src/clock.rs";
/// The transport's test harness: the one file in `crates/net` that may
/// spawn threads (one per node in loopback clusters and chaos tests).
/// Everything else — including the `tests/` directory — builds on its
/// `spawn_node` handles.
const NET_HARNESS: &str = "crates/net/src/cluster.rs";
/// Crates whose data feeds byte-stable reports (D2 scope).
const REPORT_FEEDING: [&str; 8] = [
    "crates/sim/",
    "crates/faults/",
    "crates/certify/",
    "crates/detect/",
    "crates/verify/",
    "crates/flow/",
    "crates/net/",
    "crates/serve/",
];
/// Crates whose protocol logic must route quorum thresholds through
/// `ftm_quorum` (D5 scope).
const QUORUM_SCOPE: [&str; 5] = [
    "crates/core/",
    "crates/certify/",
    "crates/rbcast/",
    "crates/detect/",
    "crates/faults/",
];
/// Crates whose message-handling paths must not abort (D6 scope).
const NO_PANIC_SCOPE: [&str; 3] = [
    "crates/core/src/",
    "crates/certify/src/",
    "crates/detect/src/",
];
/// Files allowed to spell quorum arithmetic out: the algebra crate itself
/// and its `ftm_core::quorum` re-export facade.
const QUORUM_HOMES: [&str; 2] = ["crates/quorum/src/lib.rs", "crates/core/src/quorum.rs"];
/// Files whose threshold arithmetic must not use `as` narrowing casts
/// (D7 scope): the quorum algebra, its facade, and the certificate
/// analyzer that turns quorum counts into verdicts.
const NARROWING_SCOPE: [&str; 3] = [
    "crates/quorum/",
    "crates/core/src/quorum.rs",
    "crates/certify/src/analyzer.rs",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Runs every applicable rule over one lexed file.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    if path != TIMING {
        check_d1(path, lexed, &mut findings);
    }
    if path != TIMING && path != NET_CLOCK {
        check_d3(path, lexed, &mut findings);
    }
    if in_scope(path, &REPORT_FEEDING) {
        check_d2(path, lexed, &mut findings);
    }
    if path != HARNESS && path != NET_HARNESS {
        check_d4(path, lexed, &mut findings);
    }
    if in_scope(path, &QUORUM_SCOPE) && !QUORUM_HOMES.contains(&path) {
        check_d5(path, lexed, &mut findings);
    }
    if in_scope(path, &NO_PANIC_SCOPE) {
        check_d6(path, lexed, &mut findings);
    }
    if in_scope(path, &NARROWING_SCOPE) {
        check_d7(path, lexed, &mut findings);
    }
    findings
}

/// Whether a `Number` token spells a floating-point literal.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0b")
        || text.starts_with("0o")
    {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent form: digits, then `e`/`E`, then digits (a signed exponent
    // like `1e-3` splits at the sign, leaving a bare trailing `e`). Suffixed
    // integers (`4usize`, `3i64`) have a non-`e` letter first, so they
    // don't match.
    let rest: String = text
        .chars()
        .skip_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    match rest.chars().next() {
        Some('e' | 'E') => rest[1..].chars().all(|c| c.is_ascii_digit() || c == '_'),
        _ => false,
    }
}

fn check_d1(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for tok in &lexed.tokens {
        let hit = match tok.kind {
            TokenKind::Ident => tok.text == "f32" || tok.text == "f64",
            TokenKind::Number => is_float_literal(&tok.text),
            TokenKind::Punct => false,
        };
        if hit {
            out.push(Finding {
                lint: "D1",
                file: path.to_string(),
                line: tok.line,
                message: format!(
                    "floating point (`{}`) breaks byte-stable reports; use integer \
                     tenths/ratios, or move timing into {TIMING}",
                    tok.text
                ),
            });
        }
    }
}

fn check_d2(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for tok in &lexed.tokens {
        if tok.kind == TokenKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            out.push(Finding {
                lint: "D2",
                file: path.to_string(),
                line: tok.line,
                message: format!(
                    "`{}` iteration order is nondeterministic and this crate feeds \
                     reports; use `BTreeMap`/`BTreeSet` or emit sorted",
                    tok.text
                ),
            });
        }
    }
}

fn check_d3(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for tok in &lexed.tokens {
        if tok.kind == TokenKind::Ident && (tok.text == "Instant" || tok.text == "SystemTime") {
            out.push(Finding {
                lint: "D3",
                file: path.to_string(),
                line: tok.line,
                message: format!(
                    "wall-clock time (`{}`) outside {TIMING} and {NET_CLOCK}; \
                     simulations run on `VirtualTime`, benches on \
                     `timing::Stopwatch`, and the transport reads time through \
                     `ftm_net::WallClock`",
                    tok.text
                ),
            });
        }
    }
}

fn check_d4(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].text == "thread"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && (toks[i + 3].text == "spawn" || toks[i + 3].text == "Builder")
        {
            out.push(Finding {
                lint: "D4",
                file: path.to_string(),
                line: toks[i].line,
                message: "raw thread spawning outside `ftm_sim::harness` and the \
                          transport harness (crates/net/src/cluster.rs); route \
                          parallelism through `harness::parallel_map` or node \
                          threads through `ftm_net::spawn_node` so worker count \
                          cannot leak into results"
                    .to_string(),
            });
        }
    }
}

fn check_d5(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    // Normalise `self . n` to `n` so method bodies match the same patterns
    // as free code, then look for the classic threshold shapes.
    let mut view: Vec<usize> = Vec::with_capacity(lexed.tokens.len());
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if i + 2 < toks.len() && toks[i].text == "self" && toks[i + 1].text == "." {
            i += 2; // keep only the field identifier
            continue;
        }
        view.push(i);
        i += 1;
    }
    const PATTERNS: [(&[&str], &str); 4] = [
        (&["n", "-", "f"], "quorum_size(n, f)"),
        (&["n", "+", "f"], "bracha_echo_quorum(n, f)"),
        (
            &["2", "*", "f"],
            "bracha_ready_quorum(f) / intersection_margin(n, f)",
        ),
        (&["3", "*", "f"], "bracha_min_n(f)"),
    ];
    for w in 0..view.len() {
        for (pat, hint) in PATTERNS {
            if w + pat.len() > view.len() {
                continue;
            }
            let matched = pat
                .iter()
                .enumerate()
                .all(|(k, want)| toks[view[w + k]].text == *want);
            if matched && !lexed.in_test_region(view[w]) {
                let spelled: Vec<&str> = pat.to_vec();
                out.push(Finding {
                    lint: "D5",
                    file: path.to_string(),
                    line: toks[view[w]].line,
                    message: format!(
                        "ad-hoc quorum arithmetic `{}`; use `ftm_quorum::{hint}` so \
                         every threshold shares one audited derivation",
                        spelled.join(" ")
                    ),
                });
                break; // one finding per site even if patterns overlap
            }
        }
    }
}

fn check_d6(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.in_test_region(i) {
            continue;
        }
        let (hit, name) = if i > 0
            && toks[i - 1].text == "."
            && (toks[i].text == "unwrap" || toks[i].text == "expect")
        {
            (true, toks[i].text.as_str())
        } else if toks[i].text == "panic" && i + 1 < toks.len() && toks[i + 1].text == "!" {
            (true, "panic!")
        } else {
            (false, "")
        };
        if hit {
            out.push(Finding {
                lint: "D6",
                file: path.to_string(),
                line: toks[i].line,
                message: format!(
                    "`{name}` in a message-handling crate can crash a correct \
                     replica on adversarial input; return an error or drop the \
                     message (`let .. else`)"
                ),
            });
        }
    }
}

fn check_d7(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    /// Integer types an `as` cast can silently truncate a count into.
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if lexed.in_test_region(i) {
            continue;
        }
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "as"
            && toks[i + 1].kind == TokenKind::Ident
            && NARROW.contains(&toks[i + 1].text.as_str())
        {
            out.push(Finding {
                lint: "D7",
                file: path.to_string(),
                line: toks[i].line,
                message: format!(
                    "`as {}` in threshold arithmetic truncates silently; use \
                     `try_into()`/`try_from()` and handle the error fail-closed",
                    toks[i + 1].text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lints_of(path: &str, src: &str) -> Vec<&'static str> {
        check_file(path, &lex(src))
            .into_iter()
            .map(|f| f.lint)
            .collect()
    }

    #[test]
    fn d1_fires_on_types_and_literals_but_not_in_timing() {
        let src = "fn f(x: f64) -> f32 { let y = 1.5; x as f32 }";
        assert_eq!(lints_of("crates/sim/src/x.rs", src), ["D1"; 4]);
        assert!(lints_of("crates/bench/src/timing.rs", src).is_empty());
    }

    #[test]
    fn d1_ignores_integer_literals_and_ranges() {
        let src =
            "fn f() { let a = 0x1e; let b = 10u64; let c = 4usize; for i in 0..7 { let _ = i; } }";
        assert!(lints_of("crates/sim/src/x.rs", src).is_empty());
        assert_eq!(
            lints_of("crates/sim/src/x.rs", "fn f() { let x = 1e3; }"),
            ["D1"]
        );
        assert_eq!(
            lints_of("crates/sim/src/x.rs", "fn f() { let x = 1e-3; }"),
            ["D1"]
        );
    }

    #[test]
    fn d2_is_scoped_to_report_feeding_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(lints_of("crates/certify/src/x.rs", src), ["D2"]);
        assert!(lints_of("crates/rbcast/src/x.rs", src).is_empty());
    }

    #[test]
    fn d3_fires_outside_timing() {
        let src = "use std::time::Instant; fn f() { let _ = Instant::now(); }";
        assert_eq!(lints_of("crates/core/src/x.rs", src), ["D3", "D3"]);
        assert!(lints_of("crates/bench/src/timing.rs", src).is_empty());
    }

    #[test]
    fn d4_fires_outside_harness() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(lints_of("crates/bench/src/x.rs", src), ["D4"]);
        assert!(lints_of("crates/sim/src/harness.rs", src).is_empty());
    }

    #[test]
    fn d3_and_d4_sanction_single_files_in_net_not_the_crate() {
        let clocky = "use std::time::Instant; fn f() { let _ = Instant::now(); }";
        let spawny = "fn f() { std::thread::spawn(|| {}); }";
        assert!(lints_of("crates/net/src/clock.rs", clocky).is_empty());
        assert!(lints_of("crates/net/src/cluster.rs", spawny).is_empty());
        // The rest of the transport crate — node loop, poll probe, even
        // its tests/ directory — must go through WallClock / spawn_node.
        assert_eq!(lints_of("crates/net/src/node.rs", clocky), ["D3", "D3"]);
        assert_eq!(lints_of("crates/net/src/poll.rs", clocky), ["D3", "D3"]);
        assert_eq!(lints_of("crates/net/src/node.rs", spawny), ["D4"]);
        assert_eq!(
            lints_of("crates/net/tests/chaos_cluster.rs", spawny),
            ["D4"]
        );
        // The server binaries sit *above* the transport: they must get
        // their clocks and threads from ftm-net, not spell their own.
        assert_eq!(lints_of("crates/serve/src/main.rs", clocky), ["D3", "D3"]);
        assert_eq!(lints_of("crates/serve/src/main.rs", spawny), ["D4"]);
    }

    #[test]
    fn net_gets_no_float_pass() {
        let src = "fn f() -> f64 { 1.5 }";
        assert_eq!(lints_of("crates/net/src/node.rs", src), ["D1", "D1"]);
    }

    #[test]
    fn d2_covers_net_and_serve() {
        let src = "use std::collections::HashMap;";
        assert_eq!(lints_of("crates/net/src/node.rs", src), ["D2"]);
        assert_eq!(lints_of("crates/serve/src/lib.rs", src), ["D2"]);
    }

    #[test]
    fn d5_matches_self_qualified_threshold_arithmetic() {
        let src = "impl Q { fn q(&self) -> usize { self.n - self.f } }";
        assert_eq!(lints_of("crates/certify/src/x.rs", src), ["D5"]);
        assert!(lints_of("crates/quorum/src/lib.rs", src).is_empty());
        assert!(lints_of("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn d5_skips_test_regions() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let q = n - f; } }";
        assert!(lints_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d6_fires_in_production_but_not_tests() {
        let src =
            "fn handle() { msg.unwrap(); }\n#[cfg(test)]\nmod t { fn x() { y.expect(\"e\"); } }";
        assert_eq!(lints_of("crates/detect/src/x.rs", src), ["D6"]);
        assert!(lints_of("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d6_leaves_unwrap_or_variants_alone() {
        let src = "fn handle() { let v = msg.unwrap_or(0); let w = msg.unwrap_or_default(); let _ = (v, w); }";
        assert!(lints_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d7_flags_narrowing_casts_in_scope_only() {
        let src = "fn q(n: u64) -> u32 { (n - 1) as u32 }";
        assert_eq!(lints_of("crates/quorum/src/lib.rs", src), ["D7"]);
        assert_eq!(lints_of("crates/certify/src/analyzer.rs", src), ["D7"]);
        assert!(lints_of("crates/certify/src/vector.rs", src).is_empty());
    }

    #[test]
    fn d7_allows_widening_casts_and_test_regions() {
        let widening = "fn q(n: u32) -> u64 { n as u64 + (n as usize as u64) }";
        assert!(lints_of("crates/quorum/src/lib.rs", widening).is_empty());
        let test_only = "#[cfg(test)]\nmod tests { fn t(n: u64) -> u32 { n as u32 } }";
        assert!(lints_of("crates/quorum/src/lib.rs", test_only).is_empty());
    }
}
