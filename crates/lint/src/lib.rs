//! `ftm-lint`: a zero-dependency determinism & quorum-discipline static
//! analyzer for the ft-modular workspace.
//!
//! The repo's central promise — byte-identical reports for the same seed
//! regardless of thread count or host — is easy to break with one stray
//! `f64`, `HashMap` iteration or wall-clock read. This crate enforces that
//! discipline mechanically, as a hard CI gate, with seven rules:
//!
//! - **D1** — no `f32`/`f64` (types or literals) outside the bench timing
//!   module. Report arithmetic is integer tenths/ratios.
//! - **D2** — no `HashMap`/`HashSet` in report-feeding crates (`sim`,
//!   `faults`, `certify`, `detect`, `verify`, `flow`); use B-tree
//!   collections so iteration order is defined.
//! - **D3** — no `Instant`/`SystemTime` outside bench timing; simulation
//!   time is `VirtualTime`.
//! - **D4** — no raw `std::thread` spawning outside `ftm_sim::harness`;
//!   parallelism goes through `parallel_map` so worker count cannot leak
//!   into results.
//! - **D5** — no ad-hoc quorum arithmetic (`n - f`, `n + f`, `2*f`,
//!   `3*f`) in protocol crates; thresholds route through `ftm_quorum` so
//!   the paper's bound `F <= min(floor((n-1)/2), C)` has one audited home.
//! - **D6** — no `unwrap`/`expect`/`panic!` in non-test code of the
//!   message-handling crates (`core`, `certify`, `detect`); a Byzantine
//!   sender must not be able to crash a correct replica.
//! - **D7** — no `as` narrowing casts in quorum/threshold arithmetic
//!   (`ftm-quorum`, its `ftm_core::quorum` facade, the certify analyzer);
//!   counts convert through `try_from` with the error handled fail-closed.
//!
//! The implementation is a small hand-rolled lexer ([`lexer`]) plus a
//! token-pattern rule engine ([`rules`]) — no syn, no regex, no external
//! dependencies beyond the workspace's own JSON document model. Findings
//! can be waived through a justified [`allowlist`]; stale waivers fail the
//! run. `ftm-lint --json` emits a byte-stable report ([`report`]).
//!
//! The [`lexer`] and [`allowlist`] modules double as shared analysis
//! infrastructure: `ftm-flow` (the AST-level dataflow analyzer) builds its
//! parser on this crate's token stream and reuses the allowlist grammar
//! via [`allowlist::parse_with`], so the workspace compiles exactly one
//! lexer and one waiver format.

pub mod allowlist;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use allowlist::{
    apply, parse as parse_allowlist, parse_with as parse_allowlist_with, Applied, Entry,
};
pub use engine::{check_source, scan_workspace, Scan};
pub use report::LintReport;
pub use rules::{Finding, LINT_IDS};
