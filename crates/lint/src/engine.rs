//! Workspace walker: finds `.rs` files, lexes them, runs the rules.
//!
//! The walk is deterministic — directories are read, sorted by name and
//! recursed in order — so finding order (and therefore report bytes) never
//! depends on filesystem enumeration order. `target/`, hidden directories
//! and the lint fixture corpus are skipped: fixtures violate the rules on
//! purpose and are exercised through [`check_source`] with virtual paths.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::lex;
use crate::rules::{check_file, Finding};

/// Directories never descended into (by component name).
const SKIP_DIRS: [&str; 2] = ["target", "fixtures"];

/// Lints one source text under a repo-relative virtual path.
///
/// This is the pure core: the fixture self-test drives it with paths like
/// `crates/certify/src/fixture.rs` to place a fixture inside a rule's
/// scope without the file actually living there.
pub fn check_source(virtual_path: &str, source: &str) -> Vec<Finding> {
    check_file(virtual_path, &lex(source))
}

/// The result of scanning a workspace tree.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Number of `.rs` files lexed.
    pub files_scanned: u64,
    /// All findings, sorted by `(lint, file, line)`.
    pub findings: Vec<Finding>,
}

/// Walks `root` and lints every tracked `.rs` file.
pub fn scan_workspace(root: &Path) -> io::Result<Scan> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let source = fs::read_to_string(path)?;
        let rel = relative_slash_path(root, path);
        findings.extend(check_file(&rel, &lex(&source)));
    }
    findings.sort_by(|a, b| (a.lint, &a.file, a.line).cmp(&(b.lint, &b.file, b.line)));
    Ok(Scan {
        files_scanned: files.len() as u64,
        findings,
    })
}

fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_places_fixtures_by_virtual_path() {
        let src = "use std::collections::HashMap;";
        assert_eq!(check_source("crates/sim/src/v.rs", src).len(), 1);
        assert!(check_source("crates/bench/src/v.rs", src).is_empty());
    }

    #[test]
    fn scan_skips_fixture_and_target_dirs() {
        let dir = std::env::temp_dir().join("ftm-lint-scan-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/sim/src")).unwrap();
        fs::create_dir_all(dir.join("crates/lint/fixtures")).unwrap();
        fs::create_dir_all(dir.join("target/debug")).unwrap();
        fs::write(
            dir.join("crates/sim/src/a.rs"),
            "use std::collections::HashMap;",
        )
        .unwrap();
        fs::write(dir.join("crates/lint/fixtures/d1.rs"), "fn f(_: f64) {}").unwrap();
        fs::write(dir.join("target/debug/gen.rs"), "fn f(_: f64) {}").unwrap();
        let scan = scan_workspace(&dir).unwrap();
        assert_eq!(scan.files_scanned, 1);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].lint, "D2");
        assert_eq!(scan.findings[0].file, "crates/sim/src/a.rs");
        let _ = fs::remove_dir_all(&dir);
    }
}
