//! The finding allowlist: a small, justified escape hatch.
//!
//! Format (one entry per line):
//!
//! ```text
//! D6 crates/core/src/spec.rs 775 # spec construction runs at startup
//! D3 crates/foo/src/bar.rs # whole-file waiver
//! ```
//!
//! `<lint> <path> [<line>] # <justification>` — the justification is
//! mandatory; an entry without one is a parse error. Blank lines and lines
//! starting with `#` are comments. Every entry must match at least one
//! finding: unused entries are reported and fail the run, which keeps the
//! list from outliving the code it excuses.

use crate::rules::{Finding, LINT_IDS};

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Lint identifier this entry waives.
    pub lint: String,
    /// Repo-relative path the waiver applies to.
    pub file: String,
    /// Specific line, or `None` for a whole-file waiver.
    pub line: Option<u32>,
    /// Why the finding is acceptable (mandatory).
    pub justification: String,
}

impl Entry {
    /// Whether this entry waives `finding`.
    pub fn matches(&self, finding: &Finding) -> bool {
        self.lint == finding.lint
            && self.file == finding.file
            && self.line.is_none_or(|l| l == finding.line)
    }

    /// Canonical one-line rendering (used in reports).
    pub fn render(&self) -> String {
        match self.line {
            Some(l) => format!("{} {} {}", self.lint, self.file, l),
            None => format!("{} {}", self.lint, self.file),
        }
    }
}

/// Parses allowlist text against the D1–D7 lint vocabulary.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    parse_with(text, &LINT_IDS)
}

/// Parses allowlist text, validating lint ids against `valid_ids`.
///
/// The allowlist grammar is shared analysis infrastructure: `ftm-flow`
/// reuses it with its own finding vocabulary (`F1`/`F2`) by calling this
/// entry point directly, so both analyzers get mandatory justifications
/// and stale-entry failure from one implementation.
pub fn parse_with(text: &str, valid_ids: &[&str]) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = line
            .split_once('#')
            .ok_or_else(|| format!("allowlist line {lineno}: missing `# justification`"))?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!("allowlist line {lineno}: empty justification"));
        }
        let mut parts = head.split_whitespace();
        let lint = parts
            .next()
            .ok_or_else(|| format!("allowlist line {lineno}: missing lint id"))?;
        if !valid_ids.contains(&lint) {
            return Err(format!("allowlist line {lineno}: unknown lint `{lint}`"));
        }
        let file = parts
            .next()
            .ok_or_else(|| format!("allowlist line {lineno}: missing file path"))?;
        let line_no = match parts.next() {
            Some(tok) => Some(
                tok.parse::<u32>()
                    .map_err(|_| format!("allowlist line {lineno}: bad line number `{tok}`"))?,
            ),
            None => None,
        };
        if parts.next().is_some() {
            return Err(format!(
                "allowlist line {lineno}: trailing tokens before `#`"
            ));
        }
        entries.push(Entry {
            lint: lint.to_string(),
            file: file.to_string(),
            line: line_no,
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

/// The verdict after applying the allowlist to a finding set.
#[derive(Debug, Clone)]
pub struct Applied {
    /// Findings not covered by any entry — these gate.
    pub active: Vec<Finding>,
    /// Findings waived by an entry.
    pub waived: Vec<Finding>,
    /// Entries that matched nothing — these also gate.
    pub unused: Vec<Entry>,
}

/// Splits findings into active/waived and reports unused entries.
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> Applied {
    let mut used = vec![false; entries.len()];
    let mut active = Vec::new();
    let mut waived = Vec::new();
    for finding in findings {
        let mut hit = false;
        for (i, entry) in entries.iter().enumerate() {
            if entry.matches(&finding) {
                used[i] = true;
                hit = true;
            }
        }
        if hit {
            waived.push(finding);
        } else {
            active.push(finding);
        }
    }
    let unused = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Applied {
        active,
        waived,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parses_line_scoped_and_file_scoped_entries() {
        let entries = parse(
            "# header comment\n\nD6 crates/core/src/spec.rs 775 # startup invariant\nD3 crates/x.rs # waived\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].line, Some(775));
        assert_eq!(entries[1].line, None);
    }

    #[test]
    fn rejects_missing_justification_and_unknown_lint() {
        assert!(parse("D6 crates/x.rs 1\n").is_err());
        assert!(parse("D6 crates/x.rs 1 #   \n").is_err());
        assert!(parse("D9 crates/x.rs # nope\n").is_err());
    }

    #[test]
    fn parse_with_accepts_a_custom_vocabulary() {
        let entries = parse_with("F1 crates/x.rs 9 # audited path\n", &["F1", "F2"]).unwrap();
        assert_eq!(entries[0].lint, "F1");
        assert!(parse_with("D1 crates/x.rs # wrong vocab\n", &["F1", "F2"]).is_err());
        assert!(parse("F1 crates/x.rs # wrong vocab\n").is_err());
    }

    #[test]
    fn apply_splits_and_tracks_unused() {
        let entries = parse("D6 a.rs 5 # ok\nD1 b.rs # never matches\n").unwrap();
        let applied = apply(
            vec![finding("D6", "a.rs", 5), finding("D6", "a.rs", 6)],
            &entries,
        );
        assert_eq!(applied.waived.len(), 1);
        assert_eq!(applied.active.len(), 1);
        assert_eq!(applied.unused.len(), 1);
        assert_eq!(applied.unused[0].file, "b.rs");
    }
}
