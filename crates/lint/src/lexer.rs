//! A minimal Rust lexer: just enough structure for line/token-level lint
//! rules.
//!
//! The lexer reduces a source file to a stream of [`Token`]s — identifiers,
//! numeric literals and single-character punctuation — with comments
//! (line, doc and nested block), string literals (plain, raw, byte) and
//! character literals stripped, so rules never fire on prose or test
//! strings. Lifetimes (`'a`) are distinguished from char literals with the
//! standard one-character lookahead heuristic.
//!
//! On top of the raw stream it computes the file's `#[cfg(test)]` regions
//! by brace matching, so rules that only govern production paths (D5, D6)
//! can skip test modules without any parsing beyond this.

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (kept verbatim, suffix included: `1_000u64`, `2.5`).
    Number,
    /// Single punctuation character (`-`, `*`, `!`, `[`, …).
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification used by the pattern matcher.
    pub kind: TokenKind,
    /// Verbatim token text.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: String, line: u32) -> Self {
        Token { kind, text, line }
    }
}

/// A lexed file: the token stream plus its `#[cfg(test)]` brace regions
/// (as half-open token-index ranges).
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream, comments and literals stripped.
    pub tokens: Vec<Token>,
    /// Half-open `[start, end)` token-index ranges covered by
    /// `#[cfg(test)]`-gated items.
    pub test_regions: Vec<(usize, usize)>,
}

impl Lexed {
    /// Whether the token at `index` sits inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, index: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| index >= a && index < b)
    }
}

/// Lexes `source`, stripping comments and literals and marking
/// `#[cfg(test)]` regions.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line (and doc) comment: skip to end of line.
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nesting honoured.
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                i = skip_raw_or_byte_string(&chars, i, &mut line);
            }
            '\'' => {
                // Lifetime vs char literal: a lifetime is `'ident` NOT
                // followed by a closing quote (`'a'` is a char).
                let is_lifetime = i + 1 < n
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                    && !(i + 2 < n && chars[i + 2] == '\'');
                if is_lifetime {
                    i += 1; // the identifier after it lexes normally
                } else {
                    i += 1;
                    if i < n && chars[i] == '\\' {
                        i += 2; // escape plus escaped char
                        while i < n && chars[i] != '\'' {
                            i += 1; // \u{...} forms
                        }
                        i += 1;
                    } else {
                        while i < n && chars[i] != '\'' {
                            if chars[i] == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                        i += 1;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::new(TokenKind::Ident, text, line));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A fractional part glues onto the literal only when a
                // digit follows the dot (so `1.max(2)` and `0..n` split).
                if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::new(TokenKind::Number, text, line));
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                tokens.push(Token::new(TokenKind::Punct, c.to_string(), line));
                i += 1;
            }
        }
    }

    let test_regions = find_test_regions(&tokens);
    Lexed {
        tokens,
        test_regions,
    }
}

fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    // r"...", r#"..."#, b"...", br"...", br#"..."# — but NOT plain
    // identifiers starting with r/b.
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            j += 1;
        }
        return j < n && chars[j] == '"';
    }
    // b"..." (byte string without r)
    chars[i] == 'b' && i + 1 < n && chars[i + 1] == '"'
}

fn skip_raw_or_byte_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    if chars[i] == 'b' {
        i += 1;
    }
    if i < n && chars[i] == 'r' {
        i += 1;
        let mut hashes = 0;
        while i < n && chars[i] == '#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        loop {
            if i >= n {
                return i;
            }
            if chars[i] == '\n' {
                *line += 1;
            }
            if chars[i] == '"' {
                let mut k = 0;
                while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
    }
    // plain byte string b"..."
    skip_string(chars, i, line)
}

fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    i += 1; // opening quote
    while i < n {
        match chars[i] {
            '\\' => {
                // Count the newline of a `\`-at-EOL string continuation.
                if i + 1 < n && chars[i + 1] == '\n' {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Finds `#[cfg(test)]` attribute sites and brace-matches the item that
/// follows each, returning half-open token-index ranges.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let text = |k: usize| tokens.get(k).map(|t| t.text.as_str());
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the gated item's opening brace and match it. Skip over any
        // further attributes and the item header tokens in between.
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut opened = false;
        while j < tokens.len() {
            match text(j) {
                Some("{") => {
                    depth += 1;
                    opened = true;
                }
                Some("}") => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Some(";") if !opened => {
                    // `#[cfg(test)] mod tests;` — out-of-line, no body here.
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((i, j));
        i = j;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let toks = texts("let x = \"f64 inside\"; // f64 in comment\n/* f64 /* nested */ */ y");
        assert!(!toks.contains(&"f64".to_string()));
        assert!(toks.contains(&"y".to_string()));
    }

    #[test]
    fn raw_strings_and_chars_are_stripped() {
        let toks = texts("let s = r#\"HashMap \"quoted\" inside\"#; let c = 'H'; let l: &'a u8;");
        assert!(!toks.contains(&"HashMap".to_string()));
        assert!(toks.contains(&"a".to_string())); // the lifetime ident survives
        assert!(toks.contains(&"u8".to_string()));
    }

    #[test]
    fn numbers_keep_suffix_and_fraction() {
        let toks = texts("let a = 1.5; let b = 2f64; let c = 0..10; let d = 1.max(2);");
        assert!(toks.contains(&"1.5".to_string()));
        assert!(toks.contains(&"2f64".to_string()));
        assert!(toks.contains(&"0".to_string()) && toks.contains(&"10".to_string()));
        assert!(toks.contains(&"1".to_string()) && toks.contains(&"max".to_string()));
    }

    #[test]
    fn lines_are_tracked_through_comments_and_strings() {
        let lexed = lex("a\n/* two\nlines */\n\"str\nacross\"\nb");
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 6);
    }

    #[test]
    fn lines_are_tracked_through_string_continuations() {
        let lexed = lex("let s = \"one \\\n two \\\n three\";\nb");
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn after() {}";
        let lexed = lex(src);
        let unwraps: Vec<usize> = lexed
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!lexed.in_test_region(unwraps[0]));
        assert!(lexed.in_test_region(unwraps[1]));
        let after = lexed.tokens.iter().position(|t| t.text == "after").unwrap();
        assert!(!lexed.in_test_region(after));
    }

    #[test]
    fn out_of_line_cfg_test_mod_is_harmless() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { x.unwrap(); }";
        let lexed = lex(src);
        let u = lexed
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .unwrap();
        assert!(!lexed.in_test_region(u));
    }
}
