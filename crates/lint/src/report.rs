//! Byte-stable JSON reporting, on the same no-float document model the
//! simulation reports use.
//!
//! The report shape is fixed: `counts` always carries all seven lint keys,
//! findings are pre-sorted by `(lint, file, line)` by the engine, and the
//! renderer is `ftm_sim::report::Json` — so two runs over the same tree
//! produce identical bytes, which lets CI diff lint reports like any other
//! artifact.

use ftm_sim::report::Json;

use crate::allowlist::{Applied, Entry};
use crate::rules::{Finding, LINT_IDS};

/// Everything one lint run produced, ready to render or gate on.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Findings not waived by the allowlist (these gate).
    pub active: Vec<Finding>,
    /// Findings waived by an allowlist entry.
    pub waived: Vec<Finding>,
    /// Allowlist entries that matched nothing (these also gate).
    pub unused: Vec<Entry>,
}

impl LintReport {
    /// Builds a report from a scan result and the applied allowlist.
    pub fn new(files_scanned: u64, applied: Applied) -> Self {
        LintReport {
            files_scanned,
            active: applied.active,
            waived: applied.waived,
            unused: applied.unused,
        }
    }

    /// Whether the run gates green: no active findings, no stale waivers.
    pub fn ok(&self) -> bool {
        self.active.is_empty() && self.unused.is_empty()
    }

    /// Per-lint totals over active + waived findings, all seven keys present.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        LINT_IDS
            .iter()
            .map(|id| {
                let total = self
                    .active
                    .iter()
                    .chain(&self.waived)
                    .filter(|f| f.lint == *id)
                    .count() as u64;
                (*id, total)
            })
            .collect()
    }

    /// Renders the byte-stable JSON document.
    pub fn to_json(&self) -> Json {
        let finding_json = |f: &Finding, waived: bool| {
            Json::Obj(vec![
                ("lint".into(), Json::Str(f.lint.into())),
                ("file".into(), Json::Str(f.file.clone())),
                ("line".into(), Json::U64(u64::from(f.line))),
                ("message".into(), Json::Str(f.message.clone())),
                ("waived".into(), Json::Bool(waived)),
            ])
        };
        // Interleave active and waived back into (lint, file, line) order
        // so the findings array reads in source order regardless of waiver
        // status.
        let mut all: Vec<(&Finding, bool)> = self
            .active
            .iter()
            .map(|f| (f, false))
            .chain(self.waived.iter().map(|f| (f, true)))
            .collect();
        all.sort_by(|(a, _), (b, _)| (a.lint, &a.file, a.line).cmp(&(b.lint, &b.file, b.line)));
        Json::Obj(vec![
            ("version".into(), Json::U64(1)),
            ("files_scanned".into(), Json::U64(self.files_scanned)),
            (
                "counts".into(),
                Json::Obj(
                    self.counts()
                        .into_iter()
                        .map(|(id, n)| (id.to_string(), Json::U64(n)))
                        .collect(),
                ),
            ),
            (
                "findings".into(),
                Json::Arr(all.into_iter().map(|(f, w)| finding_json(f, w)).collect()),
            ),
            (
                "allowlist_unused".into(),
                Json::Arr(self.unused.iter().map(|e| Json::Str(e.render())).collect()),
            ),
            ("ok".into(), Json::Bool(self.ok())),
        ])
    }

    /// Human-readable rendering for terminal runs.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.active {
            out.push_str(&format!("{} {}:{} {}\n", f.lint, f.file, f.line, f.message));
        }
        for e in &self.unused {
            out.push_str(&format!(
                "stale allowlist entry (matched nothing): {}\n",
                e.render()
            ));
        }
        let counts: Vec<String> = self
            .counts()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(id, n)| format!("{id}={n}"))
            .collect();
        out.push_str(&format!(
            "ftm-lint: {} files, {} active finding(s), {} waived ({}){}\n",
            self.files_scanned,
            self.active.len(),
            self.waived.len(),
            if counts.is_empty() {
                "clean".to_string()
            } else {
                counts.join(" ")
            },
            if self.ok() { " — OK" } else { " — FAIL" },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::{apply, parse};

    fn finding(lint: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn json_is_byte_stable_and_carries_all_seven_counts() {
        let entries = parse("D6 a.rs 5 # ok\n").unwrap();
        let applied = apply(
            vec![finding("D6", "a.rs", 5), finding("D1", "b.rs", 2)],
            &entries,
        );
        let report = LintReport::new(3, applied);
        let first = report.to_json().render();
        let second = report.to_json().render();
        assert_eq!(first, second);
        for id in LINT_IDS {
            assert!(
                first.contains(&format!("\"{id}\"")),
                "missing count key {id}"
            );
        }
        assert!(first.contains("\"waived\": true"));
        assert!(!report.ok()); // D1 active
    }

    #[test]
    fn unused_entries_fail_the_run() {
        let entries = parse("D3 never.rs # stale\n").unwrap();
        let applied = apply(vec![], &entries);
        let report = LintReport::new(1, applied);
        assert!(!report.ok());
        assert!(report.to_text().contains("stale allowlist entry"));
    }
}
