//! The lint self-test: the fixture corpus and the workspace gate.
//!
//! Each file in `crates/lint/fixtures/` is a minimal violation of exactly
//! one rule. The corpus is excluded from the workspace walk (the engine
//! skips `fixtures/` directories) and is instead driven through
//! [`ftm_lint::check_source`] under a virtual path that places it inside
//! the rule's scope — so this test proves every rule both *fires* on its
//! fixture and *stays quiet* on the others, and that the real workspace is
//! clean modulo the justified allowlist.

use std::fs;
use std::path::{Path, PathBuf};

use ftm_lint::{apply, check_source, parse_allowlist, scan_workspace, LintReport, LINT_IDS};

/// Fixture file → (virtual path placing it in the rule's scope, the one
/// lint it must trip there).
const PLACEMENTS: [(&str, &str, &str); 9] = [
    ("d1.rs", "crates/sim/src/fixture.rs", "D1"),
    ("d2.rs", "crates/certify/src/fixture.rs", "D2"),
    ("d3.rs", "crates/core/src/fixture.rs", "D3"),
    ("d4.rs", "crates/bench/src/fixture.rs", "D4"),
    ("d5.rs", "crates/rbcast/src/fixture.rs", "D5"),
    ("d6.rs", "crates/detect/src/fixture.rs", "D6"),
    ("d7.rs", "crates/quorum/src/fixture.rs", "D7"),
    // The transport carve-out must not leak upward: the same violations
    // still fire one level above the transport, in the server crate.
    ("d3_serve.rs", "crates/serve/src/fixture.rs", "D3"),
    ("d4_serve.rs", "crates/serve/src/fixture.rs", "D4"),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_fixture_trips_exactly_its_own_lint() {
    for (file, vpath, expected) in PLACEMENTS {
        let src = fs::read_to_string(fixture_dir().join(file))
            .unwrap_or_else(|e| panic!("missing fixture {file}: {e}"));
        let findings = check_source(vpath, &src);
        assert!(
            !findings.is_empty(),
            "fixture {file} was not flagged at {vpath}"
        );
        for f in &findings {
            assert_eq!(
                f.lint, expected,
                "fixture {file} tripped {} (expected only {expected}): {}",
                f.lint, f.message
            );
        }
    }
    // Every rule id has at least one fixture exercising it.
    for id in LINT_IDS {
        assert!(
            PLACEMENTS.iter().any(|&(_, _, e)| e == id),
            "no fixture covers {id}"
        );
    }
}

#[test]
fn clock_and_spawn_fixtures_are_sanctioned_only_in_their_net_homes() {
    // The same sources that trip D3/D4 everywhere else are clean in the
    // transport's two sanctioned files — and ONLY there. The rest of
    // crates/net (node loop, poll probe, tests/) reads time through
    // `WallClock` and spawns through `spawn_node`, so the carve-out is
    // per-file, not per-crate.
    for file in ["d3.rs", "d3_serve.rs"] {
        let src = fs::read_to_string(fixture_dir().join(file)).expect("fixture");
        assert!(
            check_source("crates/net/src/clock.rs", &src).is_empty(),
            "{file} flagged inside net's clock.rs"
        );
        assert!(
            !check_source("crates/net/src/poll.rs", &src).is_empty(),
            "{file} NOT flagged in net outside clock.rs"
        );
    }
    for file in ["d4.rs", "d4_serve.rs"] {
        let src = fs::read_to_string(fixture_dir().join(file)).expect("fixture");
        assert!(
            check_source("crates/net/src/cluster.rs", &src).is_empty(),
            "{file} flagged inside net's cluster.rs"
        );
        assert!(
            !check_source("crates/net/tests/chaos_cluster.rs", &src).is_empty(),
            "{file} NOT flagged in net's tests outside cluster.rs"
        );
    }
}

#[test]
fn fixture_corpus_is_complete_and_minimal() {
    let mut names: Vec<String> = fs::read_dir(fixture_dir())
        .expect("fixtures dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "d1.rs",
            "d2.rs",
            "d3.rs",
            "d3_serve.rs",
            "d4.rs",
            "d4_serve.rs",
            "d5.rs",
            "d6.rs",
            "d7.rs"
        ]
    );
}

#[test]
fn workspace_is_clean_outside_the_allowlist() {
    let root = workspace_root();
    let scan = scan_workspace(&root).expect("workspace scan");
    assert!(scan.files_scanned > 100, "suspiciously small scan");
    let allowlist =
        fs::read_to_string(root.join("crates/lint/allowlist.txt")).expect("allowlist file");
    let entries = parse_allowlist(&allowlist).expect("allowlist parses");
    assert!(
        entries.len() <= 5,
        "allowlist grew past the 5-entry budget: {} entries",
        entries.len()
    );
    let applied = apply(scan.findings, &entries);
    let dump: Vec<String> = applied
        .active
        .iter()
        .map(|f| format!("{} {}:{} {}", f.lint, f.file, f.line, f.message))
        .collect();
    assert!(
        applied.active.is_empty(),
        "active findings:\n{}",
        dump.join("\n")
    );
    assert!(
        applied.unused.is_empty(),
        "stale allowlist entries: {:?}",
        applied.unused
    );
}

#[test]
fn json_report_is_byte_stable_across_scans() {
    let root = workspace_root();
    let allowlist =
        fs::read_to_string(root.join("crates/lint/allowlist.txt")).expect("allowlist file");
    let entries = parse_allowlist(&allowlist).expect("allowlist parses");
    let render = || {
        let scan = scan_workspace(&root).expect("workspace scan");
        let applied = apply(scan.findings, &entries);
        LintReport::new(scan.files_scanned, applied)
            .to_json()
            .render()
    };
    let first = render();
    let second = render();
    assert_eq!(first, second, "lint JSON is not byte-stable");
    for id in LINT_IDS {
        assert!(
            first.contains(&format!("\"{id}\"")),
            "missing count key {id}"
        );
    }
}
