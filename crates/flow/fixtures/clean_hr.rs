// Clean fixture: a miniature HR actor that discharges all seven
// transformed-spec obligations and certifies every ingress before use.
// Analyzed at the virtual path `crates/core/src/byzantine/protocol.rs`,
// it must produce zero findings; each `m_*.rs` mutant differs from this
// file by exactly one edit and must be caught by exactly one pass.

impl ByzantineConsensus {
    fn send_all(&mut self, core: Core, cert: Certificate, ctx: &mut Context<'_, Envelope, ValueVector>) {
        ctx.broadcast(Envelope::make(self.me, core, cert, &self.keys));
    }

    fn begin_round(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        self.entry_cert = std::mem::take(&mut self.next_cert);
        self.r += 1;
        self.sent_next = false;
        if self.me == self.coordinator() {
            self.send_all(
                Core::Current {
                    round: self.r,
                    vector: self.est_vect.clone(),
                },
                self.est_cert.union(&self.entry_cert),
                ctx,
            );
        }
    }

    fn vote_next(&mut self, cert: Certificate, ctx: &mut Context<'_, Envelope, ValueVector>) {
        let core = Core::Next { round: self.r };
        self.sent_next = true;
        self.send_all(core, cert, ctx);
    }

    fn decide(&mut self, round: Round, vector: ValueVector, cert: Certificate, ctx: &mut Context<'_, Envelope, ValueVector>) {
        self.decided = true;
        self.send_all(
            Core::Decide {
                round,
                vector: vector.clone(),
            },
            cert,
            ctx,
        );
        ctx.decide(vector);
    }

    fn handle_admitted(&mut self, from: ProcessId, env: Envelope, ctx: &mut Context<'_, Envelope, ValueVector>) {
        match env.core().clone() {
            Core::Current { round, vector } => {
                self.current_cert.insert(env.signed.clone());
                self.est_vect = vector.clone();
                self.est_cert = env.cert.init_portion();
                if !self.sent_next && self.me != self.coordinator() {
                    self.send_all(
                        Core::Current {
                            round: self.r,
                            vector: self.est_vect.clone(),
                        },
                        self.est_cert.clone(),
                        ctx,
                    );
                }
                let matching = self.matching_current();
                if matching.count(MessageKind::Current, self.r) >= self.quorum() {
                    self.decide(self.r, self.est_vect.clone(), matching, ctx);
                    return;
                }
                self.after_vote(ctx);
            }
            Core::Next { round } => {
                self.next_cert.insert(env.signed.clone());
                self.after_vote(ctx);
            }
            Core::Decide { round, vector } => {
                self.decide(round, vector, env.cert.clone(), ctx);
            }
            _ => {}
        }
    }

    fn after_vote(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        let currents = self.current_cert.count(MessageKind::Current, self.r);
        let nexts = self.next_cert.count(MessageKind::Next, self.r);
        let rec_from = self.current_cert.union(&self.next_cert).rec_from(self.r).len();
        if change_mind_from_certificates(currents, nexts, self.sent_next, rec_from, self.quorum()) {
            let cert = self.current_cert.union(&self.next_cert);
            self.vote_next(cert, ctx);
        }
        if self.next_cert.count(MessageKind::Next, self.r) >= self.quorum() {
            if !self.sent_next {
                let cert = self.next_cert.union(&self.entry_cert);
                self.vote_next(cert, ctx);
            }
            self.begin_round(ctx);
        }
    }
}

impl Actor for ByzantineConsensus {
    type Msg = Envelope;
    type Decision = ValueVector;

    fn on_start(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        self.send_all(Core::Init { value: self.value }, Certificate::new(), ctx);
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }

    fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, Envelope, ValueVector>) {
        match self.stack.admit(from, env, ctx.now()) {
            Admit::Accepted(_trigger) => self.handle_admitted(from, env.clone(), ctx),
            Admit::Discarded(e) => {
                ctx.note(format!("detected={}", e.culprit));
            }
        }
    }

    fn on_timer(&mut self, _tag: TimerTag, ctx: &mut Context<'_, Envelope, ValueVector>) {
        if self.stack.suspected_or_faulty(self.coordinator(), ctx.now()) {
            let cert = self.current_cert.union(&self.next_cert);
            self.vote_next(cert, ctx);
        }
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }
}
