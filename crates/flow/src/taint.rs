//! Pass F1: certification-before-use taint analysis.
//!
//! Sources are message-ingress parameters (the envelope argument of
//! `on_message`) and `make_checkpoint` results — data whose content an
//! arbitrary-faulty process controls. Sinks are writes into replicated
//! state (certificate stores, estimate vectors, the decision evidence).
//! Sanitizers are the certification APIs (`admit`, `check_envelope`, the
//! per-kind `check_*` family): a call to one *clears* the taint of its
//! arguments, modeling the paper's obligation that every message crosses
//! the certification stack before it may influence replicated state.
//!
//! The analysis is a forward may-taint dataflow over the per-function
//! CFG (so a sanitizer on only one of two routes does not launder the
//! other), composed interprocedurally by a fixpoint over per-function
//! summaries: which parameters reach sinks inside the callee, and which
//! parameters flow into its return value.

use crate::ast::{Block, Expr, ExprKind, FnDef};
use crate::cfg::{Cfg, Step};
use std::collections::{BTreeMap, BTreeSet};

/// Certification APIs whose call clears taint from their arguments.
pub const SANITIZERS: [&str; 15] = [
    "admit",
    "check_envelope",
    "check_syntax",
    "check_cert_signatures",
    "check_init",
    "check_current",
    "check_next",
    "check_estimate",
    "check_propose",
    "check_ack",
    "check_nack",
    "check_decide",
    "check_checkpoint",
    "verify_envelopes_batched",
    "verify_digest",
];

/// `self` fields that constitute replicated state (taint sinks).
pub const SINK_FIELDS: [&str; 16] = [
    "est_vect",
    "est_cert",
    "current_cert",
    "next_cert",
    "entry_cert",
    "vote_cert",
    "decide_evidence",
    "ts",
    "ts_backing",
    "proposed",
    "coord_core",
    "estimates",
    "builder",
    "log",
    "evidence",
    "checkpoint",
];

/// Where a taint originated.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// Adversary-controlled ingress (parameter name or API description).
    Ingress(String),
    /// The function's i-th non-`self` parameter (for summaries).
    Param(usize),
}

/// A set of origins, each carrying the path of steps taken so far.
pub type TaintSet = BTreeMap<Origin, Vec<String>>;

/// Abstract state: taints of locals and `self.<field>` pseudo-places.
pub type State = BTreeMap<String, TaintSet>;

/// A taint finding: adversary-controlled data reached replicated state
/// without passing a certification API on some path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaintHit {
    /// Repo-relative path of the file containing the sink.
    pub file: String,
    /// Line of the sink.
    pub line: u32,
    /// Description of the sink (field or call).
    pub sink: String,
    /// The origin description.
    pub origin: String,
    /// The propagation path, source to sink.
    pub path: Vec<String>,
}

/// Per-function interprocedural summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Parameters that reach a sink inside the callee, with the sink name.
    pub param_sinks: BTreeMap<usize, String>,
    /// Parameters that flow into the return value.
    pub ret_params: BTreeSet<usize>,
}

const MAX_PATH: usize = 8;
const MAX_CFG_PASSES: usize = 20;
const MAX_GLOBAL_ROUNDS: usize = 10;

/// Extends every path in a set with one step (idempotent, capped).
fn extend(set: &TaintSet, note: &str) -> TaintSet {
    set.iter()
        .map(|(o, p)| {
            let mut p = p.clone();
            if p.last().map(String::as_str) != Some(note) && p.len() < MAX_PATH {
                p.push(note.to_string());
            }
            (o.clone(), p)
        })
        .collect()
}

fn union(a: &TaintSet, b: &TaintSet) -> TaintSet {
    let mut out = a.clone();
    for (o, p) in b {
        out.entry(o.clone()).or_insert_with(|| p.clone());
    }
    out
}

fn join_states(into: &mut State, from: &State) -> bool {
    let mut changed = false;
    for (k, set) in from {
        let entry = into.entry(k.clone()).or_default();
        for (o, p) in set {
            if !entry.contains_key(o) {
                entry.insert(o.clone(), p.clone());
                changed = true;
            }
        }
    }
    changed
}

/// The root place of an expression's text: `self . field` for field
/// accesses on `self`, the local name for plain locals.
fn root_place(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 => Some(segs[0].clone()),
        ExprKind::Field { base, name } => {
            if base.text == "self" {
                Some(format!("self.{name}"))
            } else {
                root_place(base)
            }
        }
        ExprKind::Method { recv, .. } | ExprKind::Index { base: recv, .. } => root_place(recv),
        _ => None,
    }
}

/// The sink field named by a place text, if any (`self . est_vect` →
/// `est_vect`).
fn sink_field(place: &str) -> Option<&'static str> {
    let mut it = place.split_whitespace();
    if it.next() != Some("self") || it.next() != Some(".") {
        return None;
    }
    let field = it.next()?;
    SINK_FIELDS.iter().find(|f| **f == field).copied()
}

struct Analyzer<'a> {
    summaries: &'a BTreeMap<String, Summary>,
    /// Summary being computed for the current function.
    out_summary: Summary,
    hits: BTreeSet<TaintHit>,
}

impl<'a> Analyzer<'a> {
    fn record_sink(&mut self, set: &TaintSet, sink: &str, line: u32) {
        for (origin, path) in set {
            match origin {
                Origin::Ingress(desc) => {
                    let mut path = path.clone();
                    path.push(format!("write into `{sink}` (line {line})"));
                    self.hits.insert(TaintHit {
                        file: String::new(), // attributed by run_fn
                        line,
                        sink: sink.to_string(),
                        origin: desc.clone(),
                        path,
                    });
                }
                Origin::Param(i) => {
                    self.out_summary
                        .param_sinks
                        .entry(*i)
                        .or_insert_with(|| sink.to_string());
                }
            }
        }
    }

    /// Evaluates an expression, returning its taint and mutating the
    /// state for sanitizer/propagation effects.
    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &Expr, state: &mut State) -> TaintSet {
        match &e.kind {
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    state.get(&segs[0]).cloned().unwrap_or_default()
                } else {
                    TaintSet::new()
                }
            }
            ExprKind::Lit | ExprKind::Opaque => TaintSet::new(),
            ExprKind::Field { base, name } => {
                if base.text == "self" {
                    state
                        .get(&format!("self.{name}"))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    self.eval(base, state)
                }
            }
            ExprKind::Method { recv, name, args } => {
                self.eval_call(Some(recv), name, args, e.line, state)
            }
            ExprKind::Call { callee, args } => {
                let name = match &callee.kind {
                    ExprKind::Path(segs) => segs.last().cloned().unwrap_or_default(),
                    _ => String::new(),
                };
                self.eval_call(None, &name, args, e.line, state)
            }
            ExprKind::Struct { fields, .. } => {
                let mut out = TaintSet::new();
                for (_, v) in fields {
                    out = union(&out, &self.eval(v, state));
                }
                extend(&out, &short(&e.text, e.line))
            }
            ExprKind::Macro { args, .. } | ExprKind::Tuple(args) => {
                let mut out = TaintSet::new();
                for a in args {
                    out = union(&out, &self.eval(a, state));
                }
                out
            }
            ExprKind::Closure { params, body } => {
                // Evaluate the body at the definition site with the
                // closure's own params shadowed clean; captured locals
                // keep their taint, so `|inner, ictx| inner.on_message(..)`
                // still routes argument taint through known callees.
                let mut inner = state.clone();
                for p in params {
                    inner.insert(p.clone(), TaintSet::new());
                }
                self.eval(body, &mut inner);
                TaintSet::new()
            }
            ExprKind::IfExpr {
                cond,
                binds,
                then_b,
                else_b,
            } => {
                let cond_taint = self.eval(cond, state);
                let mut then_state = state.clone();
                for b in binds {
                    then_state.insert(
                        b.clone(),
                        extend(&cond_taint, &format!("bound by `if let` (line {})", e.line)),
                    );
                }
                let t = self.eval_block_inline(then_b, &mut then_state);
                let mut else_state = state.clone();
                let f = match else_b {
                    Some(eb) => self.eval_block_inline(eb, &mut else_state),
                    None => TaintSet::new(),
                };
                join_states(state, &then_state);
                join_states(state, &else_state);
                union(&t, &f)
            }
            ExprKind::MatchExpr { scrutinee, arms } => {
                let scrut_taint = self.eval(scrutinee, state);
                let mut out = TaintSet::new();
                let base = state.clone();
                for arm in arms {
                    let mut arm_state = base.clone();
                    for b in &arm.binds {
                        arm_state.insert(
                            b.clone(),
                            extend(
                                &scrut_taint,
                                &format!("bound by match on `{}`", short_text(&scrutinee.text)),
                            ),
                        );
                    }
                    if let Some(g) = &arm.guard {
                        self.eval(g, &mut arm_state);
                    }
                    out = union(&out, &self.eval_block_inline(&arm.body, &mut arm_state));
                    join_states(state, &arm_state);
                }
                out
            }
            ExprKind::BlockExpr(b) => self.eval_block_inline(b, state),
            ExprKind::Index { base, index } => {
                let i = self.eval(index, state);
                union(&self.eval(base, state), &i)
            }
            ExprKind::Bin(parts) => {
                let mut out = TaintSet::new();
                for p in parts {
                    out = union(&out, &self.eval(p, state));
                }
                out
            }
        }
    }

    /// Shared call semantics for methods and free calls.
    fn eval_call(
        &mut self,
        recv: Option<&Expr>,
        name: &str,
        args: &[Expr],
        line: u32,
        state: &mut State,
    ) -> TaintSet {
        // Sanitizer: certification clears its arguments' roots.
        if SANITIZERS.contains(&name) {
            for a in args {
                if let Some(root) = root_place(a) {
                    state.remove(&root);
                }
            }
            if let Some(r) = recv {
                self.eval(r, state);
            }
            return TaintSet::new();
        }
        // `make_checkpoint` results are adversary-influencable ingress:
        // a faulty process feeds them back as CHK messages.
        if name == "make_checkpoint" {
            for a in args {
                self.eval(a, state);
            }
            return TaintSet::from([(
                Origin::Ingress("make_checkpoint result".to_string()),
                vec![format!("produced by `make_checkpoint` (line {line})")],
            )]);
        }
        let mut arg_taints: Vec<TaintSet> = Vec::with_capacity(args.len());
        for a in args {
            arg_taints.push(self.eval(a, state));
        }
        // Method on a replicated-state field: tainted arguments sink.
        if let Some(r) = recv {
            if let Some(field) = sink_field(&flat_recv(r)) {
                for t in &arg_taints {
                    self.record_sink(t, &format!("self.{field}.{name}(…)"), line);
                }
            }
        }
        // `decide` finalizes the replicated decision value.
        if name == "decide" {
            for t in &arg_taints {
                self.record_sink(t, "decide(…)", line);
            }
        }
        // Known callee: apply its summary (union over same-named fns).
        if let Some(sum) = self.summaries.get(name) {
            let mut ret = TaintSet::new();
            for (i, t) in arg_taints.iter().enumerate() {
                if let Some(sink) = sum.param_sinks.get(&i) {
                    self.record_sink(
                        &extend(t, &format!("passed to `{name}` (line {line})")),
                        sink,
                        line,
                    );
                }
                if sum.ret_params.contains(&i) {
                    ret = union(
                        &ret,
                        &extend(t, &format!("returned from `{name}` (line {line})")),
                    );
                }
            }
            if let Some(r) = recv {
                self.eval(r, state);
            }
            return ret;
        }
        // Unknown call: taint unions through, and the receiver root is
        // weakly updated (models `cert.insert(env)`, `v.push(x)`).
        let mut out = TaintSet::new();
        for t in &arg_taints {
            out = union(&out, t);
        }
        if let Some(r) = recv {
            let recv_taint = self.eval(r, state);
            if !out.is_empty() {
                if let Some(root) = root_place(r) {
                    let noted = extend(&out, &format!("stored via `.{name}` (line {line})"));
                    let entry = state.entry(root).or_default();
                    let merged = union(entry, &noted);
                    *entry = merged;
                }
            }
            out = union(&out, &recv_taint);
        }
        out
    }

    /// Evaluates a nested block in expression position by running the
    /// worklist over its own CFG with the caller's state as entry; the
    /// block's value taint is the tail expression's taint at exit.
    fn eval_block_inline(&mut self, b: &Block, state: &mut State) -> TaintSet {
        let cfg = Cfg::build(b);
        let exit_state = self.run_cfg(&cfg, state.clone());
        let mut ret = TaintSet::new();
        if let Some(tail) = &b.tail {
            let mut s = exit_state.clone();
            ret = self.eval(tail.as_ref(), &mut s);
        }
        *state = exit_state;
        ret
    }

    /// Runs the worklist over a CFG from an entry state; returns the
    /// exit-block in-state.
    fn run_cfg(&mut self, cfg: &Cfg<'_>, entry_state: State) -> State {
        let n = cfg.blocks.len();
        let mut in_states: Vec<Option<State>> = vec![None; n];
        in_states[cfg.entry] = Some(entry_state);
        for _ in 0..MAX_CFG_PASSES {
            let mut changed = false;
            for bi in 0..n {
                let Some(mut state) = in_states[bi].clone() else {
                    continue;
                };
                for step in &cfg.blocks[bi].steps {
                    self.step(step, &mut state);
                }
                for &succ in &cfg.blocks[bi].succs {
                    match &mut in_states[succ] {
                        Some(existing) => {
                            if join_states(existing, &state) {
                                changed = true;
                            }
                        }
                        slot @ None => {
                            *slot = Some(state.clone());
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        in_states[cfg.exit].take().unwrap_or_default()
    }

    fn step(&mut self, step: &Step<'_>, state: &mut State) {
        match step {
            Step::Eval(e) => {
                self.eval(e, state);
            }
            Step::Bind { binds, from, line } => {
                let taint = match from {
                    Some(e) => self.eval(e, state),
                    None => TaintSet::new(),
                };
                for b in *binds {
                    if taint.is_empty() {
                        state.insert(b.clone(), TaintSet::new());
                    } else {
                        state.insert(
                            b.clone(),
                            extend(&taint, &format!("bound to `{b}` (line {line})")),
                        );
                    }
                }
            }
            Step::Assign {
                place,
                value,
                compound,
                line,
            } => {
                let taint = self.eval(value, state);
                if let Some(field) = sink_field(place) {
                    self.record_sink(&taint, &format!("self.{field}"), *line);
                }
                let words = place.split_whitespace().take(3).collect::<Vec<_>>();
                let key = if words.first() == Some(&"self") && words.get(1) == Some(&".") {
                    words.concat() // "self.field"
                } else {
                    words.first().map(ToString::to_string).unwrap_or_default()
                };
                if !key.is_empty() {
                    if *compound {
                        let entry = state.entry(key).or_default();
                        let merged = union(entry, &taint);
                        *entry = merged;
                    } else {
                        state.insert(key, taint);
                    }
                }
            }
            Step::Ret(value) => {
                if let Some(e) = value {
                    let taint = self.eval(e, state);
                    for origin in taint.keys() {
                        if let Origin::Param(i) = origin {
                            self.out_summary.ret_params.insert(*i);
                        }
                    }
                }
            }
        }
    }
}

fn short_text(t: &str) -> String {
    if t.len() > 40 {
        let cut = (1..=40).rev().find(|&i| t.is_char_boundary(i)).unwrap_or(0);
        format!("{}…", &t[..cut])
    } else {
        t.to_string()
    }
}

fn short(t: &str, line: u32) -> String {
    format!("carried in `{}` (line {line})", short_text(t))
}

fn flat_recv(r: &Expr) -> String {
    r.text.clone()
}

/// Whether a stripped parameter type marks message ingress.
fn is_ingress_type(ty: &str, deep: bool) -> bool {
    let stripped = ty
        .trim_start_matches('&')
        .trim_start_matches(' ')
        .trim_start_matches("mut ")
        .trim_start();
    let head = stripped.split([' ', '<']).next().unwrap_or("");
    if matches!(head, "Envelope" | "SlotMsg") {
        return true;
    }
    if deep {
        // Deep mode: any message-like on_message parameter is ingress
        // (covers the crash actors' CrashMsg / CtMsg, whose findings are
        // informative — crash actors trust their transport by design).
        return !matches!(
            head,
            "Context" | "ProcessId" | "TimerTag" | "VirtualTime" | ""
        );
    }
    false
}

/// Result of the taint pass over one file set.
pub struct TaintOutcome {
    /// All ingress-to-sink violations found.
    pub hits: Vec<TaintHit>,
}

/// Runs the interprocedural taint analysis over a set of functions.
pub fn analyze(fns: &[FnDef], deep: bool) -> TaintOutcome {
    let mut summaries: BTreeMap<String, Summary> = BTreeMap::new();
    // Global fixpoint over per-function summaries (monotone: sinks and
    // ret-params only grow).
    for _ in 0..MAX_GLOBAL_ROUNDS {
        let mut changed = false;
        for f in fns {
            if f.in_test {
                continue;
            }
            let (summary, _) = run_fn(f, &summaries, deep);
            let prev = summaries.get(&f.name);
            let merged = match prev {
                Some(p) => {
                    let mut m = p.clone();
                    for (k, v) in &summary.param_sinks {
                        m.param_sinks.entry(*k).or_insert_with(|| v.clone());
                    }
                    m.ret_params.extend(summary.ret_params.iter().copied());
                    m
                }
                None => summary,
            };
            if prev != Some(&merged) {
                summaries.insert(f.name.clone(), merged);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final pass: collect ingress findings with converged summaries.
    let mut hits = BTreeSet::new();
    for f in fns {
        if f.in_test {
            continue;
        }
        let (_, fn_hits) = run_fn(f, &summaries, deep);
        hits.extend(fn_hits);
    }
    TaintOutcome {
        hits: hits.into_iter().collect(),
    }
}

fn run_fn(
    f: &FnDef,
    summaries: &BTreeMap<String, Summary>,
    deep: bool,
) -> (Summary, BTreeSet<TaintHit>) {
    let mut entry_state = State::new();
    for (i, p) in f.params.iter().enumerate() {
        for b in &p.binds {
            let mut set = TaintSet::from([(
                Origin::Param(i),
                vec![format!("parameter `{b}` of `{}`", f.name)],
            )]);
            if f.name == "on_message" && f.has_self && is_ingress_type(&p.ty, deep) {
                set.insert(
                    Origin::Ingress(format!("message parameter `{b}`")),
                    vec![format!(
                        "ingress: `{b}: {}` of `{}::on_message` (line {})",
                        short_text(&p.ty),
                        f.owner.as_deref().unwrap_or("?"),
                        f.line
                    )],
                );
            }
            entry_state.insert(b.clone(), set);
        }
    }
    let mut az = Analyzer {
        summaries,
        out_summary: Summary::default(),
        hits: BTreeSet::new(),
    };
    let cfg = Cfg::build(&f.body);
    az.run_cfg(&cfg, entry_state);
    let hits = az
        .hits
        .into_iter()
        .map(|mut h| {
            h.file.clone_from(&f.file);
            h
        })
        .collect();
    (az.out_summary, hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn hits(src: &str) -> Vec<TaintHit> {
        analyze(&parse_file(src), false).hits
    }

    #[test]
    fn unsanitized_ingress_to_sink_is_flagged() {
        let h = hits(
            "impl A { fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { self.est_vect = env.value(); } }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].sink.contains("est_vect"));
        assert!(h[0].origin.contains("env"));
    }

    #[test]
    fn sanitizer_on_the_path_clears_the_taint() {
        let h = hits(
            "impl A { fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { self.stack.admit(from, env, ctx.now()); self.est_vect = env.value(); } }",
        );
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn sanitizer_on_one_branch_does_not_cover_the_other() {
        let h = hits(
            "impl A { fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { if from.0 > 0 { self.stack.admit(from, env, ctx.now()); } self.est_vect = env.value(); } }",
        );
        assert_eq!(h.len(), 1, "the unsanitized branch must be found: {h:?}");
    }

    #[test]
    fn taint_flows_through_helper_functions() {
        let h = hits(
            "impl A {\
             fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { self.store(env.value()); }\
             fn store(&mut self, v: Value) { self.est_vect = v; }\
             }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].path.iter().any(|s| s.contains("store")), "{h:?}");
    }

    #[test]
    fn make_checkpoint_results_are_sources() {
        let h = hits(
            "impl A { fn snapshot(&mut self) { let chk = self.inner.make_checkpoint(); self.log = chk; } }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].origin.contains("make_checkpoint"));
    }

    #[test]
    fn checkpoint_sanitizer_clears_checkpoint_taint() {
        let h = hits(
            "impl A { fn snapshot(&mut self) { let chk = self.inner.make_checkpoint(); self.checker.check_checkpoint(&chk); self.log = chk; } }",
        );
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn method_sink_on_certificate_field_is_flagged() {
        let h = hits(
            "impl A { fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { self.current_cert.insert(env.clone()); } }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(h[0].sink.contains("current_cert"));
    }

    #[test]
    fn closure_bodies_are_analyzed_at_definition_site() {
        let h = hits(
            "impl A {\
             fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { let v = env.value(); self.drive(ctx, |inner, ictx| inner.keep(v)); }\
             fn keep(&mut self, v: Value) { self.est_vect = v; }\
             }",
        );
        assert_eq!(h.len(), 1, "captured taint must flow into closures: {h:?}");
    }

    #[test]
    fn match_binds_carry_scrutinee_taint() {
        let h = hits(
            "impl A { fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { match env.core() { Core::Current { vector, .. } => { self.est_vect = vector; } _ => {} } } }",
        );
        assert_eq!(h.len(), 1, "{h:?}");
    }

    #[test]
    fn deep_mode_seeds_plain_message_params() {
        let src = "impl A { fn on_message(&mut self, from: ProcessId, msg: &CtMsg, ctx: &mut Context<'_, M, V>) { self.estimates = msg.clone(); } }";
        assert!(hits(src).is_empty(), "scoped mode trusts CtMsg");
        let deep = analyze(&parse_file(src), true).hits;
        assert_eq!(deep.len(), 1, "deep mode must not: {deep:?}");
    }

    #[test]
    fn paths_terminate_and_stay_bounded() {
        let h = hits(
            "impl A { fn on_message(&mut self, from: ProcessId, env: &Envelope, ctx: &mut Context<'_, M, V>) { let mut v = env.value(); loop { v = wrap(v); } } }",
        );
        assert!(h.is_empty());
    }
}
