//! Pass F2: spec conformance of the transformed actors' send behavior.
//!
//! Extracts every send site from the HR and CT Byzantine actors — which
//! `Core` message kind is built, whether it is broadcast or unicast, and
//! the round carried — and diffs the observed table against the send
//! obligations declared by `ProtocolSpec::transformed()` /
//! `transformed_ct()`. A send the spec does not allow, an obligation
//! never discharged, or a round/route mismatch is a finding.
//!
//! Extraction works in three phases: (1) classify which functions reach
//! the network (call `ctx.broadcast`/`ctx.send` directly or
//! transitively); (2) walk every function with a guard stack, recording
//! each call to a send-reaching function that carries a `Core::K { … }`
//! struct literal (directly, or via a local `let core = Core::K { … }`);
//! (3) match the per-kind site sets against the spec using guard-text
//! signatures when one kind has several conditional obligations.

use crate::ast::{Arm, Block, Expr, ExprKind, FnDef, Stmt};
use ftm_core::spec::ProtocolSpec;
use std::collections::{BTreeMap, BTreeSet};

/// How a send leaves the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `ctx.broadcast(…)` — echoed to every process.
    Broadcast,
    /// `ctx.send(to, …)` — point-to-point.
    Unicast,
}

/// The round value a send carries, classified syntactically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundDelta {
    /// `round: self.r` — the current round.
    Same,
    /// `round: self.r + k` — a future round (always a violation).
    Jump,
    /// `round: r` for a bound variable — relayed from a received message.
    Relayed,
    /// The kind carries no round field.
    NoRound,
}

/// One extracted send site.
#[derive(Debug, Clone)]
pub struct SendSite {
    /// The `Core` variant name (e.g. `Current`).
    pub kind: String,
    /// Broadcast or unicast.
    pub route: Route,
    /// The round classification.
    pub round: RoundDelta,
    /// Name of the function containing the site.
    pub in_fn: String,
    /// Source line of the site.
    pub line: u32,
    /// Conjunction of enclosing guard texts (if-conditions, match arms).
    pub guards: Vec<String>,
}

/// One call site of an actor method (for multiplicity expansion).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The calling function.
    pub in_fn: String,
    /// Source line of the call.
    pub line: u32,
    /// Conjunction of enclosing guard texts.
    pub guards: Vec<String>,
}

/// The extracted send table of one actor file.
#[derive(Debug, Default)]
pub struct SendTable {
    /// All extracted send sites.
    pub sites: Vec<SendSite>,
    /// name → call sites of that method (within the same file).
    pub calls: BTreeMap<String, Vec<CallSite>>,
}

/// An F2 conformance finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpecFinding {
    /// Source line the finding anchors to (0 = whole-file obligation).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

fn is_ctx_recv(text: &str) -> bool {
    text == "ctx" || text.ends_with(" ctx") || text.contains("ctx .")
}

/// Phase 1: which functions reach the network, and how.
fn classify_send_reaching(fns: &[FnDef]) -> BTreeMap<String, Route> {
    let mut routes: BTreeMap<String, Route> = BTreeMap::new();
    for f in fns {
        if f.in_test {
            continue;
        }
        let mut route = None;
        visit_exprs(&f.body, &mut |e| {
            if let ExprKind::Method { recv, name, .. } = &e.kind {
                if name == "broadcast" && is_ctx_recv(&recv.text) {
                    route = Some(match route {
                        Some(Route::Unicast) | None => Route::Broadcast,
                        Some(r) => r,
                    });
                }
                if name == "send" && is_ctx_recv(&recv.text) {
                    // Unicast dominates: a function that can unicast is
                    // reported as such so the route check stays strict.
                    route = Some(Route::Unicast);
                }
            }
        });
        if let Some(r) = route {
            routes.insert(f.name.clone(), r);
        }
    }
    // Transitive closure over self-method calls.
    loop {
        let mut changed = false;
        for f in fns {
            if f.in_test || routes.contains_key(&f.name) {
                continue;
            }
            let mut found = None;
            visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Method { recv, name, .. } = &e.kind {
                    if recv.text == "self" {
                        if let Some(r) = routes.get(name) {
                            found = Some(match (found, *r) {
                                (Some(Route::Unicast), _) | (_, Route::Unicast) => Route::Unicast,
                                _ => Route::Broadcast,
                            });
                        }
                    }
                }
            });
            if let Some(r) = found {
                routes.insert(f.name.clone(), r);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    routes
}

/// Calls `f` on every expression in a block, recursively.
fn visit_exprs(b: &Block, f: &mut impl FnMut(&Expr)) {
    let mut walker = GuardWalker {
        guards: Vec::new(),
        on_expr: f,
        on_guarded: &mut |_, _| {},
    };
    walker.block(b);
}

/// Walks a block maintaining the stack of enclosing guard texts.
struct GuardWalker<'f> {
    guards: Vec<String>,
    on_expr: &'f mut dyn FnMut(&Expr),
    on_guarded: &'f mut dyn FnMut(&Expr, &[String]),
}

impl GuardWalker<'_> {
    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
        if let Some(t) = &b.tail {
            self.expr(t.as_ref());
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                }
            }
            Stmt::Assign { value, .. } => self.expr(value),
            Stmt::If {
                cond,
                then_b,
                else_b,
                ..
            } => {
                self.expr(cond);
                self.guards.push(cond.text.clone());
                self.block(then_b);
                self.guards.pop();
                if let Some(eb) = else_b {
                    self.guards.push(format!("! ( {} )", cond.text));
                    self.block(eb);
                    self.guards.pop();
                }
            }
            Stmt::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                self.arms(arms);
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                self.guards.push(cond.text.clone());
                self.block(body);
                self.guards.pop();
            }
            Stmt::Loop { body } => self.block(body),
            Stmt::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.expr(e);
                }
            }
            Stmt::Jump => {}
            Stmt::Expr(e) => self.expr(e),
        }
    }

    fn arms(&mut self, arms: &[Arm]) {
        for arm in arms {
            let mut g = arm.pat_text.clone();
            if let Some(guard) = &arm.guard {
                self.expr(guard);
                g.push_str(" if ");
                g.push_str(&guard.text);
            }
            self.guards.push(g);
            self.block(&arm.body);
            self.guards.pop();
        }
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &Expr) {
        (self.on_expr)(e);
        (self.on_guarded)(e, &self.guards);
        match &e.kind {
            ExprKind::Field { base, .. } => self.expr(base),
            ExprKind::Method { recv, args, .. } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Struct { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v);
                }
            }
            ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Bin(args) => {
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Closure { body, .. } => self.expr(body),
            ExprKind::IfExpr {
                cond,
                then_b,
                else_b,
                ..
            } => {
                self.expr(cond);
                self.guards.push(cond.text.clone());
                self.block(then_b);
                self.guards.pop();
                if let Some(eb) = else_b {
                    self.guards.push(format!("! ( {} )", cond.text));
                    self.block(eb);
                    self.guards.pop();
                }
            }
            ExprKind::MatchExpr { scrutinee, arms } => {
                self.expr(scrutinee);
                self.arms(arms);
            }
            ExprKind::BlockExpr(b) => self.block(b),
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
            }
            ExprKind::Path(_) | ExprKind::Lit | ExprKind::Opaque => {}
        }
    }
}

/// Classifies the `round:` field expression of a core literal.
fn classify_round(fields: &[(String, Expr)]) -> RoundDelta {
    let Some((_, v)) = fields.iter().find(|(n, _)| n == "round") else {
        return RoundDelta::NoRound;
    };
    let t = v.text.as_str();
    if t == "self . r" {
        return RoundDelta::Same;
    }
    if t.contains("self . r") && t.contains('+') {
        return RoundDelta::Jump;
    }
    let words: Vec<&str> = t.split_whitespace().collect();
    if words.len() == 1
        && words[0]
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
    {
        return RoundDelta::Relayed;
    }
    // Anything else (arithmetic on a relayed round, etc.) is treated as
    // a jump so it surfaces for review.
    RoundDelta::Jump
}

/// The `Core::K { … }` literal inside an expression, if any (does not
/// descend into nested calls — the literal must be a direct argument or
/// wrapped in references/`clone`).
fn core_literal(e: &Expr) -> Option<(&str, &[(String, Expr)])> {
    match &e.kind {
        ExprKind::Struct { path, fields } => {
            if path.len() >= 2 && path[path.len() - 2] == "Core" {
                Some((path.last().map_or("", String::as_str), fields))
            } else {
                None
            }
        }
        ExprKind::Method { recv, name, .. } if name == "clone" => core_literal(recv),
        _ => None,
    }
}

/// Phase 2: extracts the send table of one actor file.
pub fn extract(fns: &[FnDef]) -> SendTable {
    let routes = classify_send_reaching(fns);
    let mut table = SendTable::default();
    for f in fns {
        if f.in_test {
            continue;
        }
        // Locals bound to core literals: `let core = Core::K { … };`.
        let mut locals: BTreeMap<String, (String, RoundDelta)> = BTreeMap::new();
        visit_stmts(&f.body, &mut |s| {
            if let Stmt::Let {
                binds,
                init: Some(e),
                ..
            } = s
            {
                if let [bind] = binds.as_slice() {
                    if let Some((kind, fields)) = core_literal(e) {
                        locals.insert(bind.clone(), (kind.to_string(), classify_round(fields)));
                    }
                }
            }
        });
        let sites = &mut table.sites;
        let calls = &mut table.calls;
        let fname = f.name.clone();
        let mut on_guarded = |e: &Expr, guards: &[String]| {
            let (name, args, line) = match &e.kind {
                ExprKind::Method { recv, name, args } if recv.text == "self" => {
                    (name.as_str(), args.as_slice(), e.line)
                }
                ExprKind::Call { callee, args } => match &callee.kind {
                    ExprKind::Path(segs) if segs.len() == 1 => {
                        (segs[0].as_str(), args.as_slice(), e.line)
                    }
                    _ => return,
                },
                _ => return,
            };
            // Record every self-method call site for later expansion.
            calls.entry(name.to_string()).or_default().push(CallSite {
                in_fn: fname.clone(),
                line,
                guards: guards.to_vec(),
            });
            let Some(route) = routes.get(name) else {
                return;
            };
            for a in args {
                let resolved = core_literal(a).map(|(k, f)| (k.to_string(), classify_round(f)));
                let resolved = resolved.or_else(|| match &a.kind {
                    ExprKind::Path(segs) if segs.len() == 1 => locals.get(&segs[0]).cloned(),
                    _ => None,
                });
                if let Some((kind, round)) = resolved {
                    sites.push(SendSite {
                        kind,
                        route: *route,
                        round,
                        in_fn: fname.clone(),
                        line,
                        guards: guards.to_vec(),
                    });
                }
            }
        };
        let mut walker = GuardWalker {
            guards: Vec::new(),
            on_expr: &mut |_| {},
            on_guarded: &mut on_guarded,
        };
        walker.block(&f.body);
    }
    table
}

fn visit_stmts(b: &Block, f: &mut impl FnMut(&Stmt)) {
    for s in &b.stmts {
        f(s);
        match s {
            Stmt::If { then_b, else_b, .. } => {
                visit_stmts(then_b, f);
                if let Some(eb) = else_b {
                    visit_stmts(eb, f);
                }
            }
            Stmt::Match { arms, .. } => {
                for a in arms {
                    visit_stmts(&a.body, f);
                }
            }
            Stmt::While { body, .. } | Stmt::Loop { body } | Stmt::For { body, .. } => {
                visit_stmts(body, f);
            }
            _ => {}
        }
    }
}

/// A guard-text signature for one conditional-send obligation: all of
/// `must` appear in the guard conjunction, none of `must_not`.
struct GuardSig {
    id: &'static str,
    must: &'static [&'static str],
    must_not: &'static [&'static str],
}

/// Signatures distinguishing same-kind obligations of the HR protocol.
const HR_SIGS: [GuardSig; 5] = [
    GuardSig {
        id: "current-coordinator",
        must: &["coordinator", "=="],
        must_not: &["!="],
    },
    GuardSig {
        id: "current-relay",
        must: &["coordinator", "!="],
        must_not: &[],
    },
    GuardSig {
        id: "next-suspicion",
        must: &["suspected_or_faulty"],
        must_not: &[],
    },
    GuardSig {
        id: "next-change-mind",
        must: &["change_mind"],
        must_not: &[],
    },
    GuardSig {
        id: "next-end-of-round",
        must: &["quorum", ">"],
        must_not: &["change_mind", "suspected_or_faulty"],
    },
];

fn sig_matches(sig: &GuardSig, guards: &[String]) -> bool {
    let joined = guards.join(" && ");
    sig.must.iter().all(|m| joined.contains(m)) && sig.must_not.iter().all(|m| !joined.contains(m))
}

/// Phase 3: diffs an extracted table against a protocol spec.
#[allow(clippy::too_many_lines)]
pub fn conform(table: &SendTable, spec: &ProtocolSpec, use_hr_sigs: bool) -> Vec<SpecFinding> {
    let mut findings = BTreeSet::new();
    // Expected multiplicity per kind, with obligation ids.
    let mut expected: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for send in &spec.sends {
        expected
            .entry(format!("{:?}", send.kind))
            .or_default()
            .push(send.id.to_string());
    }
    // Round-class expectations per kind.
    let opening: Option<String> = spec.opening.map(|k| format!("{k:?}"));
    let slot_kinds: BTreeSet<String> = spec
        .round_slots
        .iter()
        .map(|s| format!("{:?}", s.kind))
        .collect();
    let terminal: String = format!("{:?}", spec.terminal);

    let mut observed: BTreeMap<String, Vec<&SendSite>> = BTreeMap::new();
    for site in &table.sites {
        observed.entry(site.kind.clone()).or_default().push(site);
    }

    // Route and round checks apply to every observed site.
    for site in &table.sites {
        if site.route == Route::Unicast {
            findings.insert(SpecFinding {
                line: site.line,
                message: format!(
                    "`Core::{}` sent point-to-point in `{}`; the transformation requires every protocol message to be broadcast so correct processes can certify and echo it",
                    site.kind, site.in_fn
                ),
            });
        }
        let round_ok = if Some(&site.kind) == opening.as_ref() {
            site.round == RoundDelta::NoRound
        } else if slot_kinds.contains(&site.kind) {
            site.round == RoundDelta::Same
        } else if site.kind == terminal {
            matches!(site.round, RoundDelta::Relayed | RoundDelta::Same)
        } else {
            true // unknown kind: flagged below as extra, not here
        };
        if !round_ok {
            findings.insert(SpecFinding {
                line: site.line,
                message: format!(
                    "`Core::{}` in `{}` carries round class {:?}, which the spec forbids for this kind",
                    site.kind, site.in_fn, site.round
                ),
            });
        }
    }

    // Per-kind multiplicity and signature matching.
    let empty: Vec<&SendSite> = Vec::new();
    for (kind, obligations) in &expected {
        let sites = observed.get(kind).unwrap_or(&empty);
        let m = obligations.len();
        let d = sites.len();
        if d == m && m == 1 {
            continue; // trivially matched
        }
        if d == m && m > 1 {
            if use_hr_sigs {
                // Require a perfect bijection via guard signatures
                // (failures are recorded inside).
                bijection_holds(obligations, sites, &mut findings);
            }
            continue;
        }
        if d == 1 && m > 1 {
            // One literal site, several obligations: the containing
            // function must be *called* from m distinct guarded sites.
            let site = sites[0];
            let call_sites = table.calls.get(&site.in_fn).cloned().unwrap_or_default();
            if call_sites.len() == m {
                if use_hr_sigs {
                    let expanded: Vec<SendSite> = call_sites
                        .iter()
                        .map(|c| SendSite {
                            kind: site.kind.clone(),
                            route: site.route,
                            round: site.round,
                            in_fn: c.in_fn.clone(),
                            line: c.line,
                            guards: c.guards.clone(),
                        })
                        .collect();
                    let refs: Vec<&SendSite> = expanded.iter().collect();
                    bijection_holds(obligations, &refs, &mut findings);
                }
                continue;
            }
            findings.insert(SpecFinding {
                line: site.line,
                message: format!(
                    "spec declares {m} obligations for `Core::{kind}` but `{}` (its only send site) is called from {} site(s); obligations {:?} cannot all be discharged",
                    site.in_fn,
                    call_sites.len(),
                    obligations
                ),
            });
            continue;
        }
        if d == 0 {
            findings.insert(SpecFinding {
                line: 0,
                message: format!(
                    "spec obligation(s) {obligations:?} for `Core::{kind}` have no send site in the actor: the message is never sent"
                ),
            });
        } else {
            findings.insert(SpecFinding {
                line: sites.first().map_or(0, |s| s.line),
                message: format!(
                    "`Core::{kind}` has {d} send site(s) but the spec declares {m} obligation(s) {obligations:?}"
                ),
            });
        }
    }
    // Kinds sent but absent from the spec alphabet.
    for (kind, sites) in &observed {
        if !expected.contains_key(kind) {
            findings.insert(SpecFinding {
                line: sites.first().map_or(0, |s| s.line),
                message: format!(
                    "`Core::{kind}` is sent (in `{}`) but the spec declares no obligation for it",
                    sites.first().map_or("?", |s| s.in_fn.as_str())
                ),
            });
        }
    }
    findings.into_iter().collect()
}

/// Checks that obligations and sites pair up one-to-one under the HR
/// guard signatures; records findings for any failure.
fn bijection_holds(
    obligations: &[String],
    sites: &[&SendSite],
    findings: &mut BTreeSet<SpecFinding>,
) -> bool {
    let mut used_sites = vec![false; sites.len()];
    let mut ok = true;
    for ob in obligations {
        let Some(sig) = HR_SIGS.iter().find(|s| s.id == ob) else {
            findings.insert(SpecFinding {
                line: 0,
                message: format!(
                    "no guard signature known for obligation `{ob}`; cannot establish conformance"
                ),
            });
            ok = false;
            continue;
        };
        let matches: Vec<usize> = sites
            .iter()
            .enumerate()
            .filter(|(i, s)| !used_sites[*i] && sig_matches(sig, &s.guards))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => used_sites[*i] = true,
            [] => {
                findings.insert(SpecFinding {
                    line: 0,
                    message: format!(
                        "obligation `{ob}` has no send site whose guards match its signature; the conditional send is missing or its guard changed"
                    ),
                });
                ok = false;
            }
            many => {
                findings.insert(SpecFinding {
                    line: sites[many[0]].line,
                    message: format!(
                        "obligation `{ob}` matches {} send sites; guards are ambiguous",
                        many.len()
                    ),
                });
                ok = false;
            }
        }
    }
    for (i, used) in used_sites.iter().enumerate() {
        if !used {
            findings.insert(SpecFinding {
                line: sites[i].line,
                message: format!(
                    "send site of `Core::{}` in `{}` (line {}) matches no declared obligation",
                    sites[i].kind, sites[i].in_fn, sites[i].line
                ),
            });
            ok = false;
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    const MINI_HR: &str = r#"
impl HrActor {
    fn send_all(&mut self, core: Core, cert: Certificate, ctx: &mut Ctx) {
        ctx.broadcast(Envelope::make(self.me, core, cert, &self.keys));
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.send_all(Core::Init { value: self.value }, Certificate::new(), ctx);
    }
    fn begin_round(&mut self, ctx: &mut Ctx) {
        if self.me == self.coordinator() {
            self.send_all(Core::Current { round: self.r, vector: self.est_vect.clone() }, self.cert(), ctx);
        }
    }
}
"#;

    #[test]
    fn broadcast_classification_is_transitive() {
        let fns = parse_file(MINI_HR);
        let routes = classify_send_reaching(&fns);
        assert_eq!(routes.get("send_all"), Some(&Route::Broadcast));
        assert_eq!(routes.get("on_start"), Some(&Route::Broadcast));
        assert_eq!(routes.get("begin_round"), Some(&Route::Broadcast));
    }

    #[test]
    fn extraction_finds_kinds_rounds_and_guards() {
        let table = extract(&parse_file(MINI_HR));
        assert_eq!(table.sites.len(), 2, "{:?}", table.sites);
        let init = table.sites.iter().find(|s| s.kind == "Init").unwrap();
        assert_eq!(init.round, RoundDelta::NoRound);
        assert!(init.guards.is_empty());
        let cur = table.sites.iter().find(|s| s.kind == "Current").unwrap();
        assert_eq!(cur.round, RoundDelta::Same);
        assert!(cur.guards.iter().any(|g| g.contains("coordinator")));
    }

    #[test]
    fn local_let_core_literals_resolve() {
        let src = r#"
impl A {
    fn send_all(&mut self, core: Core, ctx: &mut Ctx) { ctx.broadcast(core); }
    fn vote(&mut self, ctx: &mut Ctx) {
        let core = Core::Next { round: self.r };
        self.send_all(core, ctx);
    }
}
"#;
        let table = extract(&parse_file(src));
        assert_eq!(table.sites.len(), 1, "{:?}", table.sites);
        assert_eq!(table.sites[0].kind, "Next");
        assert_eq!(table.sites[0].round, RoundDelta::Same);
    }

    #[test]
    fn round_jump_is_classified() {
        let src = r#"
impl A {
    fn send_all(&mut self, core: Core, ctx: &mut Ctx) { ctx.broadcast(core); }
    fn relay(&mut self, round: u64, ctx: &mut Ctx) {
        self.send_all(Core::Current { round: self.r + 1, vector: v() }, ctx);
        self.send_all(Core::Decide { round, vector: v() }, ctx);
    }
}
"#;
        let table = extract(&parse_file(src));
        let cur = table.sites.iter().find(|s| s.kind == "Current").unwrap();
        assert_eq!(cur.round, RoundDelta::Jump);
        let dec = table.sites.iter().find(|s| s.kind == "Decide").unwrap();
        assert_eq!(dec.round, RoundDelta::Relayed);
    }

    #[test]
    fn unicast_send_is_classified() {
        let src = r#"
impl A {
    fn leak(&mut self, to: ProcessId, ctx: &mut Ctx) {
        ctx.send(to, Envelope::wrap(Core::Init { value: self.value }));
    }
}
"#;
        let fns = parse_file(src);
        let routes = classify_send_reaching(&fns);
        assert_eq!(routes.get("leak"), Some(&Route::Unicast));
    }

    #[test]
    fn hr_signatures_are_mutually_exclusive_on_intended_guards() {
        let coord = vec!["self . me == self . coordinator ( )".to_string()];
        let relay = vec!["! self . sent_next && self . me != self . coordinator ( )".to_string()];
        let sig_c = &HR_SIGS[0];
        let sig_r = &HR_SIGS[1];
        assert!(sig_matches(sig_c, &coord));
        assert!(!sig_matches(sig_c, &relay));
        assert!(sig_matches(sig_r, &relay));
        assert!(!sig_matches(sig_r, &coord));
    }
}
