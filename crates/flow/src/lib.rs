//! `ftm-flow`: AST-level dataflow analysis of the actor code.
//!
//! Where `ftm-lint` enforces *determinism hygiene* token-by-token and
//! `ftm-verify` model-checks the *abstract protocol*, this crate closes
//! the gap between them: it statically proves two properties of the
//! **implementation source** that the paper's transformation obligates
//! but nothing else in the workspace checks mechanically.
//!
//! - **F1 — certification before use.** Every value that an arbitrary-
//!   faulty process can influence (message parameters of `on_message`,
//!   `make_checkpoint` results) must pass a certification API (`admit`,
//!   `check_envelope`, the per-kind `check_*` family) on *every* control-
//!   flow path before it is written into replicated state (certificate
//!   stores, estimate vectors, decision evidence). A forward may-taint
//!   dataflow over per-function CFGs, composed by interprocedural
//!   summaries, finds any unsanitized source-to-sink path and renders it
//!   step by step.
//! - **F2 — spec conformance of sends.** Every send site of the HR and
//!   CT Byzantine actors (which `Core` kind, broadcast vs unicast, which
//!   round) is extracted and diffed against the obligation tables of
//!   [`ftm_core::spec::ProtocolSpec::transformed`] and
//!   [`transformed_ct`](ftm_core::spec::ProtocolSpec::transformed_ct):
//!   a send the spec does not declare, an obligation never discharged,
//!   or a round/route mismatch is a finding.
//!
//! The analyzer is zero-dependency: it parses a *simplified* Rust AST
//! with a tolerant recursive-descent parser built on the `ftm-lint`
//! lexer (one lexer for the whole workspace), so it needs neither
//! `syn` nor nightly rustc internals. Anything it cannot shape degrades
//! to conservative opaque expressions rather than being skipped.
//!
//! Findings gate CI via the `ftm-flow` binary (exit 1), with the same
//! justified-allowlist escape hatch as `ftm-lint` (shared grammar, `F1`/
//! `F2` vocabulary). `--deep` widens from the transformation layers to
//! the whole workspace and is informative only.

mod ast;
mod cfg;
mod sends;
mod taint;

pub mod engine;
pub mod report;

pub use engine::{analyze_sources, scan_workspace, Analysis};
pub use report::{FlowFinding, FlowReport, PASS_IDS};
