//! A tolerant recursive-descent parser producing a simplified Rust AST.
//!
//! Built on the `ftm-lint` lexer (the workspace compiles exactly one
//! lexer): the token stream is first *fused* (composite operators like
//! `::`, `=>`, `!=` become single tokens), then grouped into delimiter
//! trees, then parsed into functions, blocks, statements and expressions.
//! The parser never fails — anything it cannot shape becomes an opaque
//! expression whose flattened text is preserved, so downstream passes
//! degrade to conservative text matching instead of missing code.
//!
//! Deliberately *not* fused: `<=`, `>=`, `<<`, `>>` — keeping `<`/`>`
//! single-character makes angle-depth tracking for generics trivial, and
//! no analysis below needs those operators as single tokens.

use ftm_lint::lexer::{lex, Lexed, TokenKind};

/// One post-fusion token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Verbatim text (composite operators fused: `::`, `=>`, `!=`, …).
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
    /// `true` for identifiers and keywords.
    pub word: bool,
    /// `true` when the token sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Fuses composite operators in a lexed stream.
pub fn fuse(lexed: &Lexed) -> Vec<Tok> {
    let toks = &lexed.tokens;
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let in_test = lexed.in_test_region(i);
        let mut text = t.text.clone();
        let mut consumed = 1;
        if t.kind == TokenKind::Punct && i + 1 < toks.len() {
            let next = &toks[i + 1];
            if next.kind == TokenKind::Punct && next.line == t.line {
                let fused = match (t.text.as_str(), next.text.as_str()) {
                    (":", ":") => Some("::"),
                    ("-", ">") => Some("->"),
                    ("=", ">") => Some("=>"),
                    ("=", "=") => Some("=="),
                    ("!", "=") => Some("!="),
                    ("&", "&") => Some("&&"),
                    ("|", "|") => Some("||"),
                    (".", ".") => Some(".."),
                    ("+", "=") => Some("+="),
                    ("-", "=") => Some("-="),
                    ("*", "=") => Some("*="),
                    ("/", "=") => Some("/="),
                    ("%", "=") => Some("%="),
                    ("^", "=") => Some("^="),
                    ("&", "=") => Some("&="),
                    ("|", "=") => Some("|="),
                    _ => None,
                };
                if let Some(f) = fused {
                    text = f.to_string();
                    consumed = 2;
                    // `..=` is the only three-character composite.
                    if f == ".."
                        && i + 2 < toks.len()
                        && toks[i + 2].kind == TokenKind::Punct
                        && toks[i + 2].text == "="
                        && toks[i + 2].line == t.line
                    {
                        text = "..=".to_string();
                        consumed = 3;
                    }
                }
            }
        }
        out.push(Tok {
            text,
            line: t.line,
            word: t.kind == TokenKind::Ident,
            in_test,
        });
        i += consumed;
    }
    out
}

/// A token tree: a leaf token or a delimiter group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single token.
    Leaf(Tok),
    /// A `(…)`, `[…]` or `{…}` group.
    Group {
        /// The opening delimiter: `(`, `[` or `{`.
        delim: char,
        /// The trees inside the delimiters.
        trees: Vec<Tree>,
        /// Line of the opening delimiter.
        line: u32,
    },
}

impl Tree {
    fn leaf_text(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => Some(t.text.as_str()),
            Tree::Group { .. } => None,
        }
    }

    fn word_text(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) if t.word => Some(t.text.as_str()),
            _ => None,
        }
    }

    fn is_group(&self, d: char) -> bool {
        matches!(self, Tree::Group { delim, .. } if *delim == d)
    }

    fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }
}

/// Builds delimiter trees from a fused token stream.
pub fn build_trees(toks: &[Tok]) -> Vec<Tree> {
    let mut pos = 0;
    build_seq(toks, &mut pos, None)
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn build_seq(toks: &[Tok], pos: &mut usize, until: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while *pos < toks.len() {
        let t = &toks[*pos];
        match t.text.as_str() {
            "(" | "[" | "{" => {
                let delim = t.text.chars().next().unwrap_or('(');
                let line = t.line;
                *pos += 1;
                let trees = build_seq(toks, pos, Some(closer(delim)));
                out.push(Tree::Group { delim, trees, line });
            }
            ")" | "]" | "}" => {
                let c = t.text.chars().next().unwrap_or(')');
                match until {
                    Some(expected) if expected == c => {
                        *pos += 1;
                        return out;
                    }
                    Some(_) => return out, // mismatched: let an outer level handle it
                    None => *pos += 1,     // stray close at top level: drop it
                }
            }
            _ => {
                out.push(Tree::Leaf(t.clone()));
                *pos += 1;
            }
        }
    }
    out
}

/// Flattens trees back to canonical text (single-space separated).
pub fn flatten(trees: &[Tree]) -> String {
    let mut parts = Vec::new();
    flatten_into(trees, &mut parts);
    parts.join(" ")
}

fn flatten_into(trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok.text.clone()),
            Tree::Group { delim, trees, .. } => {
                out.push(delim.to_string());
                flatten_into(trees, out);
                out.push(closer(*delim).to_string());
            }
        }
    }
}

/// One function parameter (the `self` receiver is recorded separately).
#[derive(Debug, Clone)]
pub struct Param {
    /// Names bound by the parameter pattern.
    pub binds: Vec<String>,
    /// Flattened type text (e.g. `& Envelope`, `& mut Context < … >`).
    pub ty: String,
}

/// A parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Repo-relative path of the defining file (set by the engine).
    pub file: String,
    /// The function name.
    pub name: String,
    /// The `impl`/`trait` type the function belongs to, if any.
    pub owner: Option<String>,
    /// Whether the function takes a `self` receiver.
    pub has_self: bool,
    /// Non-`self` parameters, in order.
    pub params: Vec<Param>,
    /// The function body.
    pub body: Block,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the function sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A block: statements plus an optional tail expression.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// The trailing expression (the block's value), if any (boxed to
    /// break the `Block` ↔ `Expr` layout cycle).
    pub tail: Option<Box<Expr>>,
}

/// One match arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Names bound by the arm pattern.
    pub binds: Vec<String>,
    /// Flattened pattern text.
    pub pat_text: String,
    /// The arm guard (`if …`), if any.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Block,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let pat = init;` (with optional diverging `else` block).
    Let {
        /// Names bound by the pattern.
        binds: Vec<String>,
        /// The initializer, if present.
        init: Option<Expr>,
        /// Line of the `let`.
        line: u32,
    },
    /// `place = value;` or a compound assignment.
    Assign {
        /// Flattened place text (e.g. `self . est_vect`).
        place: String,
        /// The assigned value.
        value: Expr,
        /// `true` for `+=`-style compound assignment.
        compound: bool,
        /// Line of the assignment.
        line: u32,
    },
    /// `if`/`if let` with optional `else`.
    If {
        /// The condition (for `if let`, the matched expression).
        cond: Expr,
        /// Names bound by an `if let` pattern.
        binds: Vec<String>,
        /// The `then` block.
        then_b: Block,
        /// The `else` block (an `else if` chain nests here).
        else_b: Option<Block>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Expr,
        /// The arms, in order.
        arms: Vec<Arm>,
    },
    /// `while`/`while let`.
    While {
        /// The loop condition.
        cond: Expr,
        /// Names bound by a `while let` pattern.
        binds: Vec<String>,
        /// The loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `for pat in iter { … }`.
    For {
        /// Names bound by the loop pattern.
        binds: Vec<String>,
        /// The iterated expression.
        iter: Expr,
        /// The loop body.
        body: Block,
    },
    /// `return [expr];`
    Return {
        /// The returned value, if any.
        value: Option<Expr>,
    },
    /// `break`/`continue` (conservatively treated as fallthrough).
    Jump,
    /// A bare expression statement.
    Expr(Expr),
}

/// An expression: a structural kind plus its flattened source text.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The structural shape.
    pub kind: ExprKind,
    /// Flattened source text of the expression.
    pub text: String,
    /// Line the expression starts on.
    pub line: u32,
}

/// The structural shape of an expression.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// A path: `x`, `self`, `Core :: Next`, …
    Path(Vec<String>),
    /// A literal.
    Lit,
    /// Field access `base . name` (tuple indices included).
    Field {
        /// The accessed base.
        base: Box<Expr>,
        /// The field name.
        name: String,
    },
    /// Method call `recv . name ( args )`.
    Method {
        /// The receiver.
        recv: Box<Expr>,
        /// The method name.
        name: String,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// Call `callee ( args )`.
    Call {
        /// The called expression (usually a path).
        callee: Box<Expr>,
        /// The arguments.
        args: Vec<Expr>,
    },
    /// Struct literal `Path { fields }`.
    Struct {
        /// The struct path segments.
        path: Vec<String>,
        /// `(name, value)` pairs; shorthand fields get a path value.
        fields: Vec<(String, Expr)>,
    },
    /// Macro invocation `name ! ( args )` (name is kept in `text`).
    Macro {
        /// The comma-split arguments.
        args: Vec<Expr>,
    },
    /// Closure `| params | body`.
    Closure {
        /// The parameter names.
        params: Vec<String>,
        /// The body expression.
        body: Box<Expr>,
    },
    /// Expression-position `if`.
    IfExpr {
        /// The condition.
        cond: Box<Expr>,
        /// Names bound by an `if let` pattern.
        binds: Vec<String>,
        /// The `then` block.
        then_b: Block,
        /// The `else` block.
        else_b: Option<Block>,
    },
    /// Expression-position `match`.
    MatchExpr {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms.
        arms: Vec<Arm>,
    },
    /// A bare `{ … }` block in expression position.
    BlockExpr(Block),
    /// Tuple or array literal (taint-equivalent: union of elements).
    Tuple(Vec<Expr>),
    /// Indexing `base [ index ]`.
    Index {
        /// The indexed base.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Operator chain; operands only, operators live in `text`.
    Bin(Vec<Expr>),
    /// Anything the parser could not shape (text preserved).
    Opaque,
}

/// Parses a source file into its function definitions.
pub fn parse_file(source: &str) -> Vec<FnDef> {
    let lexed = lex(source);
    let toks = fuse(&lexed);
    let trees = build_trees(&toks);
    let mut fns = Vec::new();
    parse_items(&trees, None, &mut fns);
    fns
}

fn parse_items(trees: &[Tree], owner: Option<&str>, out: &mut Vec<FnDef>) {
    let mut i = 0;
    while i < trees.len() {
        match trees[i].word_text() {
            Some("fn") => {
                i = parse_fn(trees, i, owner, out);
            }
            Some("impl") => {
                let (name, body_at) = parse_impl_header(trees, i + 1);
                if let Some(Tree::Group {
                    delim: '{',
                    trees: body,
                    ..
                }) = trees.get(body_at)
                {
                    parse_items(body, name.as_deref(), out);
                }
                i = body_at + 1;
            }
            Some("trait") => {
                let name = trees.get(i + 1).and_then(Tree::word_text).map(String::from);
                let mut j = i + 1;
                while j < trees.len()
                    && !trees[j].is_group('{')
                    && trees[j].leaf_text() != Some(";")
                {
                    j += 1;
                }
                if let Some(Tree::Group { trees: body, .. }) = trees.get(j) {
                    parse_items(body, name.as_deref(), out);
                }
                i = j + 1;
            }
            Some("mod") => {
                let mut j = i + 1;
                while j < trees.len()
                    && !trees[j].is_group('{')
                    && trees[j].leaf_text() != Some(";")
                {
                    j += 1;
                }
                if let Some(Tree::Group { trees: body, .. }) = trees.get(j) {
                    parse_items(body, owner, out);
                }
                i = j + 1;
            }
            Some("pub") => {
                i += 1;
                if trees.get(i).is_some_and(|t| t.is_group('(')) {
                    i += 1;
                }
            }
            _ => {
                if trees[i].leaf_text() == Some("#") {
                    i += 1;
                    if trees.get(i).and_then(Tree::leaf_text) == Some("!") {
                        i += 1;
                    }
                    if trees.get(i).is_some_and(|t| t.is_group('[')) {
                        i += 1;
                    }
                } else {
                    i = skip_item(trees, i);
                }
            }
        }
    }
}

/// Skips one non-`fn` item: everything up to and including the next
/// top-level `;` or `{…}` group.
fn skip_item(trees: &[Tree], mut i: usize) -> usize {
    while i < trees.len() {
        if trees[i].leaf_text() == Some(";") || trees[i].is_group('{') {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Skips a `<…>` generic-argument run starting at a `<` leaf.
fn skip_angles(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < trees.len() {
        match trees[i].leaf_text() {
            Some("<") => depth += 1,
            Some(">") => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_impl_header(trees: &[Tree], mut i: usize) -> (Option<String>, usize) {
    if trees.get(i).and_then(Tree::leaf_text) == Some("<") {
        i = skip_angles(trees, i);
    }
    let (mut name, mut j) = parse_type_path(trees, i);
    if trees.get(j).and_then(Tree::word_text) == Some("for") {
        let (n2, j2) = parse_type_path(trees, j + 1);
        name = n2;
        j = j2;
    }
    while j < trees.len() && !trees[j].is_group('{') && trees[j].leaf_text() != Some(";") {
        j += 1;
    }
    (name, j)
}

/// Parses a type path, returning its last word segment.
fn parse_type_path(trees: &[Tree], mut i: usize) -> (Option<String>, usize) {
    let mut last = None;
    while i < trees.len() {
        match trees[i].leaf_text() {
            Some("<") => i = skip_angles(trees, i),
            Some("::") => i += 1,
            _ => match trees[i].word_text() {
                Some("for" | "where") | None => break,
                Some(w) => {
                    last = Some(w.to_string());
                    i += 1;
                }
            },
        }
    }
    (last, i)
}

fn parse_fn(trees: &[Tree], at: usize, owner: Option<&str>, out: &mut Vec<FnDef>) -> usize {
    let (line, in_test) = match &trees[at] {
        Tree::Leaf(t) => (t.line, t.in_test),
        Tree::Group { line, .. } => (*line, false),
    };
    let Some(name) = trees.get(at + 1).and_then(Tree::word_text) else {
        return at + 1;
    };
    let mut j = at + 2;
    if trees.get(j).and_then(Tree::leaf_text) == Some("<") {
        j = skip_angles(trees, j);
    }
    let Some(Tree::Group {
        delim: '(',
        trees: param_trees,
        ..
    }) = trees.get(j)
    else {
        return at + 1;
    };
    let (has_self, params) = parse_params(param_trees);
    j += 1;
    // Skip return type and where clause up to the body.
    while j < trees.len() {
        if trees[j].is_group('{') {
            let Tree::Group { trees: body, .. } = &trees[j] else {
                unreachable!()
            };
            out.push(FnDef {
                file: String::new(),
                name: name.to_string(),
                owner: owner.map(String::from),
                has_self,
                params,
                body: parse_block(body),
                line,
                in_test,
            });
            return j + 1;
        }
        if trees[j].leaf_text() == Some(";") {
            return j + 1; // trait method signature, no body
        }
        j += 1;
    }
    j
}

fn parse_params(trees: &[Tree]) -> (bool, Vec<Param>) {
    let mut has_self = false;
    let mut params = Vec::new();
    for slice in split_top_level(trees, ",") {
        if slice.is_empty() {
            continue;
        }
        if slice.iter().any(|t| t.word_text() == Some("self")) {
            has_self = true;
            continue;
        }
        let colon = find_top_level(slice, &[":"]);
        let (pat, ty) = match colon {
            Some(c) => (&slice[..c], flatten(&slice[c + 1..])),
            None => (slice, String::new()),
        };
        let mut binds = Vec::new();
        collect_binds(pat, &mut binds);
        params.push(Param { binds, ty });
    }
    (has_self, params)
}

/// Splits trees on a top-level separator leaf, tracking angle depth and
/// closure pipes so commas inside `<…>` or `|a, b|` never split.
fn split_top_level<'a>(trees: &'a [Tree], sep: &str) -> Vec<&'a [Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut angle = 0i32;
    let mut in_pipes = false;
    for (i, t) in trees.iter().enumerate() {
        match t.leaf_text() {
            Some("<") => angle += 1,
            Some(">") => angle = (angle - 1).max(0),
            Some("|") => in_pipes = !in_pipes,
            Some(s) if s == sep && angle == 0 && !in_pipes => {
                out.push(&trees[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

/// Finds the first top-level occurrence of any of `needles`, tracking
/// angle depth.
fn find_top_level(trees: &[Tree], needles: &[&str]) -> Option<usize> {
    let mut angle = 0i32;
    for (i, t) in trees.iter().enumerate() {
        match t.leaf_text() {
            Some("<") => angle += 1,
            Some(">") => angle = (angle - 1).max(0),
            Some(s) if angle == 0 && needles.contains(&s) => return Some(i),
            _ => {}
        }
    }
    None
}

const BIND_KEYWORDS: [&str; 9] = [
    "mut", "ref", "box", "move", "if", "in", "else", "true", "false",
];

/// Collects pattern-bound names: lowercase/underscore-initial words that
/// are neither path segments (preceded by `::`) nor struct-pattern field
/// names (followed by `:`).
pub fn collect_binds(trees: &[Tree], out: &mut Vec<String>) {
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Leaf(tok) if tok.word => {
                let starts_lower = tok
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_');
                if !starts_lower
                    || tok.text == "_"
                    || tok.text == "self"
                    || BIND_KEYWORDS.contains(&tok.text.as_str())
                {
                    continue;
                }
                let after_path = i > 0 && trees[i - 1].leaf_text() == Some("::");
                let field_name = trees.get(i + 1).and_then(Tree::leaf_text) == Some(":");
                if !after_path && !field_name {
                    out.push(tok.text.clone());
                }
            }
            Tree::Group { trees: inner, .. } => collect_binds(inner, out),
            Tree::Leaf(_) => {}
        }
    }
}

/// Parses the trees of a `{…}` body into a block.
pub fn parse_block(trees: &[Tree]) -> Block {
    let mut stmts = Vec::new();
    let mut tail = None;
    let mut i = 0;
    while i < trees.len() {
        if trees[i].leaf_text() == Some(";") {
            i += 1;
            continue;
        }
        match trees[i].word_text() {
            Some("let") => i = parse_let(trees, i, &mut stmts),
            Some("if") => {
                let (stmt, ni) = parse_if(trees, i);
                stmts.push(stmt);
                i = ni;
            }
            Some("match") => {
                let (stmt, ni) = parse_match(trees, i);
                stmts.push(stmt);
                i = ni;
            }
            Some("while") => {
                let (stmt, ni) = parse_while(trees, i);
                stmts.push(stmt);
                i = ni;
            }
            Some("loop") => {
                if let Some(Tree::Group { trees: body, .. }) = trees.get(i + 1) {
                    stmts.push(Stmt::Loop {
                        body: parse_block(body),
                    });
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Some("for") => {
                let (stmt, ni) = parse_for(trees, i);
                stmts.push(stmt);
                i = ni;
            }
            Some("return") => {
                let end = stmt_end(trees, i);
                let value = if end > i + 1 {
                    Some(parse_expr_all(&trees[i + 1..end]))
                } else {
                    None
                };
                stmts.push(Stmt::Return { value });
                i = end + 1;
            }
            Some("break" | "continue") => {
                stmts.push(Stmt::Jump);
                i = stmt_end(trees, i) + 1;
            }
            Some("fn") => {
                // Nested function: skip (not part of this body's flow).
                i = skip_item(trees, i);
            }
            Some("use" | "const" | "static" | "struct" | "enum" | "type" | "impl" | "mod") => {
                i = skip_item(trees, i);
            }
            _ => {
                if trees[i].leaf_text() == Some("#") {
                    i += 1;
                    if trees.get(i).is_some_and(|t| t.is_group('[')) {
                        i += 1;
                    }
                    continue;
                }
                let end = stmt_end(trees, i);
                let slice = &trees[i..end];
                if let Some(k) = find_assign_op(slice) {
                    let op = slice[k].leaf_text().unwrap_or("=");
                    stmts.push(Stmt::Assign {
                        place: flatten(&slice[..k]),
                        value: parse_expr_all(&slice[k + 1..]),
                        compound: op != "=",
                        line: slice[0].line(),
                    });
                } else if !slice.is_empty() {
                    let e = parse_expr_all(slice);
                    if end < trees.len() {
                        stmts.push(Stmt::Expr(e));
                    } else {
                        tail = Some(Box::new(e));
                    }
                }
                i = end + 1;
            }
        }
    }
    Block { stmts, tail }
}

/// Index just past the statement starting at `i`: the next top-level `;`,
/// or the end of the slice.
fn stmt_end(trees: &[Tree], mut i: usize) -> usize {
    while i < trees.len() && trees[i].leaf_text() != Some(";") {
        i += 1;
    }
    i
}

const ASSIGN_OPS: [&str; 9] = ["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|="];

fn find_assign_op(slice: &[Tree]) -> Option<usize> {
    let mut angle = 0i32;
    for (i, t) in slice.iter().enumerate() {
        match t.leaf_text() {
            Some("<") => angle += 1,
            Some(">") => angle = (angle - 1).max(0),
            Some(s) if angle == 0 && ASSIGN_OPS.contains(&s) => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_let(trees: &[Tree], at: usize, stmts: &mut Vec<Stmt>) -> usize {
    let line = trees[at].line();
    let end = stmt_end(trees, at);
    let slice = &trees[at + 1..end];
    let eq = find_top_level(slice, &["="]);
    let (pat_ty, mut init_slice) = match eq {
        Some(e) => (&slice[..e], &slice[e + 1..]),
        None => (slice, &slice[0..0]),
    };
    // Strip a trailing diverging `else { … }`.
    if init_slice.len() >= 2
        && init_slice[init_slice.len() - 1].is_group('{')
        && init_slice[init_slice.len() - 2].word_text() == Some("else")
    {
        init_slice = &init_slice[..init_slice.len() - 2];
    }
    let pat = match find_top_level(pat_ty, &[":"]) {
        Some(c) => &pat_ty[..c],
        None => pat_ty,
    };
    let mut binds = Vec::new();
    collect_binds(pat, &mut binds);
    let init = if init_slice.is_empty() {
        None
    } else {
        Some(parse_expr_all(init_slice))
    };
    stmts.push(Stmt::Let { binds, init, line });
    end + 1
}

/// Parses an `if`/`if let` header starting at the `if` keyword; returns
/// condition, pattern binds, then-block, else-block and the next index.
fn parse_if_parts(trees: &[Tree], at: usize) -> (Expr, Vec<String>, Block, Option<Block>, usize) {
    let mut i = at + 1;
    let mut binds = Vec::new();
    if trees.get(i).and_then(Tree::word_text) == Some("let") {
        i += 1;
        // Pattern runs to the top-level `=` (comparison operators are
        // fused, so a bare `=` is unambiguous).
        let rest = &trees[i..];
        if let Some(eq) = find_top_level(rest, &["="]) {
            collect_binds(&rest[..eq], &mut binds);
            i += eq + 1;
        }
    }
    let cond_start = i;
    while i < trees.len() && !trees[i].is_group('{') {
        i += 1;
    }
    let cond = parse_expr_all(&trees[cond_start..i]);
    let then_b = match trees.get(i) {
        Some(Tree::Group { trees: body, .. }) => {
            i += 1;
            parse_block(body)
        }
        _ => Block::default(),
    };
    let mut else_b = None;
    if trees.get(i).and_then(Tree::word_text) == Some("else") {
        i += 1;
        if trees.get(i).and_then(Tree::word_text) == Some("if") {
            let (stmt, ni) = parse_if(trees, i);
            else_b = Some(Block {
                stmts: vec![stmt],
                tail: None,
            });
            i = ni;
        } else if let Some(Tree::Group { trees: body, .. }) = trees.get(i) {
            else_b = Some(parse_block(body));
            i += 1;
        }
    }
    (cond, binds, then_b, else_b, i)
}

fn parse_if(trees: &[Tree], at: usize) -> (Stmt, usize) {
    let (cond, binds, then_b, else_b, i) = parse_if_parts(trees, at);
    (
        Stmt::If {
            cond,
            binds,
            then_b,
            else_b,
        },
        i,
    )
}

fn parse_match(trees: &[Tree], at: usize) -> (Stmt, usize) {
    let mut i = at + 1;
    let start = i;
    while i < trees.len() && !trees[i].is_group('{') {
        i += 1;
    }
    let scrutinee = parse_expr_all(&trees[start..i]);
    let arms = match trees.get(i) {
        Some(Tree::Group { trees: body, .. }) => {
            i += 1;
            parse_arms(body)
        }
        _ => Vec::new(),
    };
    (Stmt::Match { scrutinee, arms }, i)
}

fn parse_arms(trees: &[Tree]) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        if matches!(trees[i].leaf_text(), Some("," | "|")) {
            i += 1;
            continue;
        }
        // Pattern (and optional guard) up to the top-level `=>`.
        let pat_start = i;
        while i < trees.len() && trees[i].leaf_text() != Some("=>") {
            i += 1;
        }
        if i >= trees.len() {
            break;
        }
        let pat_slice = &trees[pat_start..i];
        i += 1; // past `=>`
        let (pat, guard) = match find_top_level(pat_slice, &["if"]) {
            Some(g) => (&pat_slice[..g], Some(parse_expr_all(&pat_slice[g + 1..]))),
            None => (pat_slice, None),
        };
        let mut binds = Vec::new();
        collect_binds(pat, &mut binds);
        // Body: a `{…}` block, or an expression up to the top-level `,`.
        let body = if trees.get(i).is_some_and(|t| t.is_group('{')) {
            let Some(Tree::Group { trees: b, .. }) = trees.get(i) else {
                unreachable!()
            };
            i += 1;
            parse_block(b)
        } else {
            let body_start = i;
            let mut angle = 0i32;
            while i < trees.len() {
                match trees[i].leaf_text() {
                    Some("<") => angle += 1,
                    Some(">") => angle = (angle - 1).max(0),
                    Some(",") if angle == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            parse_block(&trees[body_start..i])
        };
        arms.push(Arm {
            binds,
            pat_text: flatten(pat),
            guard,
            body,
        });
    }
    arms
}

fn parse_while(trees: &[Tree], at: usize) -> (Stmt, usize) {
    let (cond, binds, body, _, i) = parse_if_parts(trees, at);
    (Stmt::While { cond, binds, body }, i)
}

fn parse_for(trees: &[Tree], at: usize) -> (Stmt, usize) {
    let mut i = at + 1;
    let pat_start = i;
    while i < trees.len() && trees[i].word_text() != Some("in") {
        i += 1;
    }
    let mut binds = Vec::new();
    collect_binds(&trees[pat_start..i.min(trees.len())], &mut binds);
    i = (i + 1).min(trees.len()); // past `in`
    let iter_start = i;
    while i < trees.len() && !trees[i].is_group('{') {
        i += 1;
    }
    let iter = parse_expr_all(&trees[iter_start..i]);
    let body = match trees.get(i) {
        Some(Tree::Group { trees: b, .. }) => {
            i += 1;
            parse_block(b)
        }
        _ => Block::default(),
    };
    (Stmt::For { binds, iter, body }, i)
}

/// Parses a complete tree slice as one expression, wrapping any
/// unconsumable residue into the operand list so nothing is lost.
pub fn parse_expr_all(slice: &[Tree]) -> Expr {
    let line = slice.first().map_or(0, Tree::line);
    let text = flatten(slice);
    let mut pos = 0;
    let mut parts = Vec::new();
    while pos < slice.len() {
        let before = pos;
        if let Some(e) = parse_bin(slice, &mut pos) {
            parts.push(e);
        }
        if pos == before {
            pos += 1; // skip an unconsumable tree, keep going
        }
    }
    match parts.len() {
        0 => Expr {
            kind: ExprKind::Opaque,
            text,
            line,
        },
        1 => {
            let mut e = parts.pop().unwrap_or(Expr {
                kind: ExprKind::Opaque,
                text: String::new(),
                line,
            });
            e.text = text;
            e
        }
        _ => Expr {
            kind: ExprKind::Bin(parts),
            text,
            line,
        },
    }
}

const BIN_OPS: [&str; 16] = [
    "+", "-", "*", "/", "%", "==", "!=", "<", ">", "&&", "||", "&", "|", "^", "..", "..=",
];

fn parse_bin(slice: &[Tree], pos: &mut usize) -> Option<Expr> {
    let start = *pos;
    let first = parse_operand(slice, pos)?;
    let mut parts = vec![first];
    loop {
        match slice.get(*pos).and_then(Tree::leaf_text) {
            Some(op) if BIN_OPS.contains(&op) => {
                *pos += 1;
                if let Some(e) = parse_operand(slice, pos) {
                    parts.push(e);
                } else {
                    break; // trailing operator (e.g. `drain(..)`)
                }
            }
            _ => match slice.get(*pos).and_then(Tree::word_text) {
                Some("as") => {
                    *pos += 1;
                    // Consume the cast target type.
                    while matches!(slice.get(*pos).and_then(Tree::leaf_text), Some("::"))
                        || slice.get(*pos).is_some_and(|t| t.word_text().is_some())
                    {
                        *pos += 1;
                    }
                }
                _ => break,
            },
        }
    }
    if parts.len() == 1 {
        parts.pop()
    } else {
        Some(Expr {
            kind: ExprKind::Bin(parts),
            text: flatten(&slice[start..*pos]),
            line: slice[start].line(),
        })
    }
}

const PREFIX_OPS: [&str; 7] = ["&", "&&", "*", "!", "-", "mut", "move"];

#[allow(clippy::too_many_lines)]
fn parse_operand(slice: &[Tree], pos: &mut usize) -> Option<Expr> {
    while slice
        .get(*pos)
        .and_then(Tree::leaf_text)
        .is_some_and(|t| PREFIX_OPS.contains(&t))
    {
        // `!` before a group is never a prefix here (macro bangs follow a
        // path, handled in postfix); `-`/`*`/`&` before nothing ends it.
        *pos += 1;
    }
    let start = *pos;
    let t = slice.get(*pos)?;
    let line = t.line();
    let base = match t {
        Tree::Leaf(tok) if tok.word => match tok.text.as_str() {
            "if" => {
                let (cond, binds, then_b, else_b, ni) = parse_if_parts(slice, *pos);
                *pos = ni;
                Expr {
                    kind: ExprKind::IfExpr {
                        cond: Box::new(cond),
                        binds,
                        then_b,
                        else_b,
                    },
                    text: flatten(&slice[start..*pos]),
                    line,
                }
            }
            "match" => {
                let (stmt, ni) = parse_match(slice, *pos);
                *pos = ni;
                let Stmt::Match { scrutinee, arms } = stmt else {
                    unreachable!()
                };
                Expr {
                    kind: ExprKind::MatchExpr {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    },
                    text: flatten(&slice[start..*pos]),
                    line,
                }
            }
            "return" | "break" | "continue" => {
                *pos += 1;
                return if *pos < slice.len() {
                    parse_bin(slice, pos)
                } else {
                    Some(Expr {
                        kind: ExprKind::Opaque,
                        text: tok.text.clone(),
                        line,
                    })
                };
            }
            _ => {
                // Path: word (`::` word | `::` `<…>`)* .
                let mut segs = vec![tok.text.clone()];
                *pos += 1;
                while slice.get(*pos).and_then(Tree::leaf_text) == Some("::") {
                    if let Some(w) = slice.get(*pos + 1).and_then(Tree::word_text) {
                        segs.push(w.to_string());
                        *pos += 2;
                    } else if slice.get(*pos + 1).and_then(Tree::leaf_text) == Some("<") {
                        *pos = skip_angles(slice, *pos + 1); // turbofish
                    } else {
                        *pos += 1;
                        break;
                    }
                }
                Expr {
                    kind: ExprKind::Path(segs),
                    text: flatten(&slice[start..*pos]),
                    line,
                }
            }
        },
        Tree::Leaf(tok) if tok.text == "|" || tok.text == "||" => {
            // Closure.
            let mut params = Vec::new();
            if tok.text == "|" {
                *pos += 1;
                let p_start = *pos;
                while *pos < slice.len() && slice[*pos].leaf_text() != Some("|") {
                    *pos += 1;
                }
                collect_binds(
                    &slice[p_start..*pos.min(&mut slice.len().clone())],
                    &mut params,
                );
                *pos = (*pos + 1).min(slice.len());
            } else {
                *pos += 1;
            }
            let body = if slice.get(*pos).is_some_and(|t| t.is_group('{')) {
                let Some(Tree::Group { trees: b, .. }) = slice.get(*pos) else {
                    unreachable!()
                };
                *pos += 1;
                Expr {
                    kind: ExprKind::BlockExpr(parse_block(b)),
                    text: flatten(b),
                    line,
                }
            } else {
                parse_bin(slice, pos).unwrap_or(Expr {
                    kind: ExprKind::Opaque,
                    text: String::new(),
                    line,
                })
            };
            return Some(Expr {
                kind: ExprKind::Closure {
                    params,
                    body: Box::new(body),
                },
                text: flatten(&slice[start..*pos]),
                line,
            });
        }
        Tree::Leaf(tok) => {
            if tok.word || tok.text.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                *pos += 1;
                Expr {
                    kind: ExprKind::Lit,
                    text: tok.text.clone(),
                    line,
                }
            } else {
                return None; // operator or stray punctuation: caller decides
            }
        }
        Tree::Group {
            delim: '(', trees, ..
        } => {
            *pos += 1;
            let parts = split_top_level(trees, ",");
            if parts.len() <= 1 {
                let mut inner = parse_expr_all(trees);
                inner.line = line;
                inner
            } else {
                Expr {
                    kind: ExprKind::Tuple(parts.iter().map(|p| parse_expr_all(p)).collect()),
                    text: flatten(trees),
                    line,
                }
            }
        }
        Tree::Group {
            delim: '[', trees, ..
        } => {
            *pos += 1;
            Expr {
                kind: ExprKind::Tuple(
                    split_top_level(trees, ",")
                        .iter()
                        .map(|p| parse_expr_all(p))
                        .collect(),
                ),
                text: flatten(trees),
                line,
            }
        }
        Tree::Group {
            delim: '{', trees, ..
        } => {
            *pos += 1;
            Expr {
                kind: ExprKind::BlockExpr(parse_block(trees)),
                text: flatten(trees),
                line,
            }
        }
        Tree::Group { .. } => {
            return None;
        }
    };
    Some(parse_postfix(base, slice, pos, start))
}

fn parse_postfix(mut e: Expr, slice: &[Tree], pos: &mut usize, start: usize) -> Expr {
    loop {
        let line = e.line;
        match slice.get(*pos) {
            Some(Tree::Leaf(tok)) if tok.text == "." => {
                let Some(next) = slice.get(*pos + 1) else {
                    *pos += 1;
                    break;
                };
                let name = match next {
                    Tree::Leaf(n) => n.text.clone(),
                    Tree::Group { .. } => {
                        *pos += 1;
                        break;
                    }
                };
                if let Some(Tree::Group {
                    delim: '(',
                    trees: arg_trees,
                    ..
                }) = slice.get(*pos + 2)
                {
                    let args = split_top_level(arg_trees, ",")
                        .iter()
                        .filter(|p| !p.is_empty())
                        .map(|p| parse_expr_all(p))
                        .collect();
                    *pos += 3;
                    e = Expr {
                        kind: ExprKind::Method {
                            recv: Box::new(e),
                            name,
                            args,
                        },
                        text: flatten(&slice[start..*pos]),
                        line,
                    };
                } else {
                    *pos += 2;
                    e = Expr {
                        kind: ExprKind::Field {
                            base: Box::new(e),
                            name,
                        },
                        text: flatten(&slice[start..*pos]),
                        line,
                    };
                }
            }
            Some(Tree::Leaf(tok)) if tok.text == "?" => {
                *pos += 1;
            }
            Some(Tree::Leaf(tok)) if tok.text == "!" => {
                // Macro bang: only after a path, followed by a group.
                let (
                    ExprKind::Path(_),
                    Some(Tree::Group {
                        trees: arg_trees, ..
                    }),
                ) = (&e.kind, slice.get(*pos + 1))
                else {
                    break;
                };
                let args = split_top_level(arg_trees, ",")
                    .iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| parse_expr_all(p))
                    .collect();
                *pos += 2;
                e = Expr {
                    kind: ExprKind::Macro { args },
                    text: flatten(&slice[start..*pos]),
                    line,
                };
            }
            Some(Tree::Group {
                delim: '(',
                trees: arg_trees,
                ..
            }) => {
                let args = split_top_level(arg_trees, ",")
                    .iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| parse_expr_all(p))
                    .collect();
                *pos += 1;
                e = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    text: flatten(&slice[start..*pos]),
                    line,
                };
            }
            Some(Tree::Group {
                delim: '{',
                trees: field_trees,
                ..
            }) => {
                // Struct literal: only after an uppercase-initial path.
                let ExprKind::Path(segs) = &e.kind else { break };
                let upper = segs
                    .last()
                    .and_then(|s| s.chars().next())
                    .is_some_and(char::is_uppercase);
                if !upper {
                    break;
                }
                let path = segs.clone();
                let mut fields = Vec::new();
                for part in split_top_level(field_trees, ",") {
                    if part.is_empty() {
                        continue;
                    }
                    if part[0].leaf_text() == Some("..") {
                        fields.push(("..".to_string(), parse_expr_all(&part[1..])));
                        continue;
                    }
                    let Some(name) = part[0].word_text().map(String::from) else {
                        continue;
                    };
                    if part.get(1).and_then(Tree::leaf_text) == Some(":") {
                        fields.push((name, parse_expr_all(&part[2..])));
                    } else {
                        // Shorthand: the field reads the same-named local.
                        fields.push((name.clone(), parse_expr_all(&part[..1])));
                    }
                }
                *pos += 1;
                e = Expr {
                    kind: ExprKind::Struct { path, fields },
                    text: flatten(&slice[start..*pos]),
                    line,
                };
            }
            Some(Tree::Group {
                delim: '[',
                trees: idx_trees,
                ..
            }) => {
                *pos += 1;
                e = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(parse_expr_all(idx_trees)),
                    },
                    text: flatten(&slice[start..*pos]),
                    line,
                };
            }
            _ => break,
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> FnDef {
        let fns = parse_file(src);
        assert_eq!(fns.len(), 1, "expected one fn in {src}");
        fns.into_iter().next().unwrap()
    }

    #[test]
    fn fuses_composite_operators() {
        let toks = fuse(&lex("a != b; c => d; e..=f; g.."));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"!="));
        assert!(texts.contains(&"=>"));
        assert!(texts.contains(&"..="));
        assert!(texts.contains(&".."));
    }

    #[test]
    fn does_not_fuse_angle_comparisons() {
        let toks = fuse(&lex("let x: Vec<u64> = v; if a >= b {}"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(!texts.contains(&">="), "`>=` must stay `>` `=`: {texts:?}");
    }

    #[test]
    fn parses_impl_methods_with_owner() {
        let f = parse_one(
            "impl<P: Proto> ReplicatedLog<P> { fn advance(&mut self, decided: Vec<u64>) { self.log.push(decided); } }",
        );
        assert_eq!(f.name, "advance");
        assert_eq!(f.owner.as_deref(), Some("ReplicatedLog"));
        assert!(f.has_self);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].binds, vec!["decided"]);
    }

    #[test]
    fn trait_impls_take_the_implementing_type() {
        let f = parse_one("impl Actor<Core, V> for HrActor { fn on_start(&mut self) {} }");
        assert_eq!(f.owner.as_deref(), Some("HrActor"));
    }

    #[test]
    fn let_with_generic_type_annotation_parses() {
        let f = parse_one("fn f() { let x: BTreeMap<String, Vec<u64>> = make(); x.len(); }");
        let Stmt::Let { binds, init, .. } = &f.body.stmts[0] else {
            panic!("expected let: {:?}", f.body.stmts[0]);
        };
        assert_eq!(binds, &["x"]);
        assert!(init.is_some());
    }

    #[test]
    fn match_arms_carry_binds_and_guards() {
        let f = parse_one(
            "fn f(e: E) { match e.core() { Core::Current { round, vector } => go(vector), Core::Next { round } if round > 0 => {} , _ => {} } }",
        );
        let Stmt::Match { arms, .. } = &f.body.stmts[0] else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].binds, vec!["round", "vector"]);
        assert!(arms[1].guard.is_some());
        assert!(arms[0].pat_text.contains("Core :: Current"));
    }

    #[test]
    fn struct_literals_and_shorthand_fields() {
        let f = parse_one("fn f(round: u64) { send(Core::Decide { round, vector: v.clone() }); }");
        let Stmt::Expr(e) = &f.body.stmts[0] else {
            panic!("expected expr stmt");
        };
        let ExprKind::Call { args, .. } = &e.kind else {
            panic!("expected call: {e:?}");
        };
        let ExprKind::Struct { path, fields } = &args[0].kind else {
            panic!("expected struct literal: {:?}", args[0]);
        };
        assert_eq!(path.last().map(String::as_str), Some("Decide"));
        assert_eq!(fields[0].0, "round");
        assert_eq!(fields[0].1.text, "round");
        assert_eq!(fields[1].0, "vector");
    }

    #[test]
    fn if_let_binds_from_condition() {
        let f = parse_one("fn f() { if let Some(b) = self.builder.as_mut() { b.absorb(); } }");
        let Stmt::If { binds, .. } = &f.body.stmts[0] else {
            panic!("expected if");
        };
        assert_eq!(binds, &["b"]);
    }

    #[test]
    fn multi_param_closures_do_not_split_args() {
        let f =
            parse_one("fn f() { self.drive(ctx, |inner, ictx| inner.on_message(from, ictx)); }");
        let Stmt::Expr(e) = &f.body.stmts[0] else {
            panic!("expected expr");
        };
        let ExprKind::Method { name, args, .. } = &e.kind else {
            panic!("expected method: {e:?}");
        };
        assert_eq!(name, "drive");
        assert_eq!(args.len(), 2, "closure comma must not split args");
        let ExprKind::Closure { params, .. } = &args[1].kind else {
            panic!("expected closure: {:?}", args[1]);
        };
        assert_eq!(params, &["inner", "ictx"]);
    }

    #[test]
    fn assignment_statements_are_detected() {
        let f = parse_one("fn f(v: V) { self.est_vect = v.clone(); self.r += 1; }");
        let Stmt::Assign {
            place, compound, ..
        } = &f.body.stmts[0]
        else {
            panic!("expected assign");
        };
        assert_eq!(place, "self . est_vect");
        assert!(!compound);
        let Stmt::Assign { compound, .. } = &f.body.stmts[1] else {
            panic!("expected compound assign");
        };
        assert!(compound);
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let fns = parse_file("fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { let x = 1; } }");
        assert_eq!(fns.len(), 2);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn empty_closure_params_via_fused_pipes() {
        let f = parse_one("fn f() { let mut draw = || 0u64; draw(); }");
        let Stmt::Let { init, .. } = &f.body.stmts[0] else {
            panic!("expected let");
        };
        let Some(Expr {
            kind: ExprKind::Closure { params, .. },
            ..
        }) = init
        else {
            panic!("expected closure: {init:?}");
        };
        assert!(params.is_empty());
    }
}
