//! The analysis driver: file discovery, pass orchestration, scoping.
//!
//! The gating (`scoped`) analysis covers exactly the code whose behavior
//! the paper's transformation constrains: the Byzantine actors, the
//! crash→Byzantine transform tables, and the certification layer. The
//! non-gating `--deep` mode widens to the whole workspace; its extra
//! findings (e.g. the crash actors trusting their transport, which they
//! do *by design*) are informative, so CI runs deep mode weekly without
//! failing on it.

use crate::ast::{parse_file, FnDef};
use crate::report::FlowFinding;
use crate::sends::{conform, extract, SendSite};
use crate::taint;
use ftm_core::spec::ProtocolSpec;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Path prefixes covered by the gating analysis.
pub const SCOPE: [&str; 3] = [
    "crates/core/src/byzantine/",
    "crates/core/src/transform/",
    "crates/certify/src/",
];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 2] = ["target", "fixtures"];

/// The extracted send table of one actor file (for the report).
#[derive(Debug)]
pub struct ActorTable {
    /// Repo-relative path of the actor file.
    pub file: String,
    /// The extracted send sites, in source order.
    pub sites: Vec<SendSite>,
}

/// The combined result of both passes over one file set.
#[derive(Debug)]
pub struct Analysis {
    /// Number of files analyzed.
    pub files_scanned: u64,
    /// All findings, unsorted and unwaived.
    pub findings: Vec<FlowFinding>,
    /// Per-actor send tables (conformance targets only).
    pub sends: Vec<ActorTable>,
}

/// Which spec a file is checked against, by path suffix.
fn conformance_target(path: &str) -> Option<(ProtocolSpec, bool)> {
    if path.ends_with("byzantine/protocol.rs") {
        Some((ProtocolSpec::transformed(), true))
    } else if path.ends_with("byzantine/chandra_toueg.rs") {
        Some((ProtocolSpec::transformed_ct(), false))
    } else {
        None
    }
}

/// Runs both passes over `(path, source)` pairs.
///
/// Paths are virtual: fixtures use the real actor paths so scoping and
/// conformance-target selection behave identically in tests.
pub fn analyze_sources(files: &[(String, String)], deep: bool) -> Analysis {
    let mut all_fns: Vec<FnDef> = Vec::new();
    let mut sends = Vec::new();
    let mut findings = Vec::new();
    for (path, source) in files {
        let mut fns = parse_file(source);
        for f in &mut fns {
            f.file.clone_from(path);
        }
        // Pass F2: spec conformance of the actor's send behavior.
        if let Some((spec, hr_sigs)) = conformance_target(path) {
            let table = extract(&fns);
            for sf in conform(&table, &spec, hr_sigs) {
                findings.push(FlowFinding {
                    pass: "F2",
                    file: path.clone(),
                    line: sf.line,
                    message: sf.message,
                    path: Vec::new(),
                });
            }
            sends.push(ActorTable {
                file: path.clone(),
                sites: table.sites,
            });
        }
        all_fns.extend(fns);
    }
    // Pass F1: interprocedural certification taint over the whole set.
    for hit in taint::analyze(&all_fns, deep).hits {
        findings.push(FlowFinding {
            pass: "F1",
            file: hit.file,
            line: hit.line,
            message: format!(
                "adversary-controlled data ({}) reaches replicated state `{}` without passing a certification API",
                hit.origin, hit.sink
            ),
            path: hit.path,
        });
    }
    Analysis {
        files_scanned: files.len() as u64,
        findings,
        sends,
    }
}

/// Scans the workspace rooted at `root` and runs both passes.
///
/// The walk is deterministic (sorted), skips `target/`, `fixtures/` and
/// hidden directories, and — unless `deep` — restricts analysis to the
/// [`SCOPE`] prefixes.
pub fn scan_workspace(root: &Path, deep: bool) -> io::Result<Analysis> {
    let mut paths = BTreeSet::new();
    collect_rs_files(root, root, &mut paths)?;
    let mut files = Vec::new();
    for rel in paths {
        if !deep && !SCOPE.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let source = fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    Ok(analyze_sources(&files, deep))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut BTreeSet<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.insert(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_targets_resolve_by_suffix() {
        assert!(conformance_target("crates/core/src/byzantine/protocol.rs").is_some());
        assert!(conformance_target("crates/core/src/byzantine/chandra_toueg.rs").is_some());
        assert!(conformance_target("crates/core/src/byzantine/log.rs").is_none());
        assert!(conformance_target("crates/core/src/crash/protocol.rs").is_none());
    }

    #[test]
    fn scope_prefixes_cover_the_transformation_layers() {
        for p in [
            "crates/core/src/byzantine/protocol.rs",
            "crates/core/src/transform/mod.rs",
            "crates/certify/src/analyzer.rs",
        ] {
            assert!(
                SCOPE.iter().any(|s| p.starts_with(s)),
                "{p} must be in scope"
            );
        }
        assert!(!SCOPE.iter().any(|s| "crates/sim/src/lib.rs".starts_with(s)));
    }
}
