//! Deterministic flow reports: allowlist application, JSON, text.
//!
//! The report machinery mirrors `ftm-lint`'s: findings are split into
//! active and waived by the shared allowlist grammar
//! ([`ftm_lint::parse_allowlist_with`] with the `F1`/`F2` vocabulary),
//! stale waivers gate, and the `--json` document is rendered on
//! [`ftm_sim::report::Json`] so it is byte-stable across platforms and
//! runs — CI diffs it, so no floats, no hash-map order, no timestamps.

use crate::engine::{ActorTable, Analysis};
use crate::sends::{RoundDelta, Route};
use ftm_lint::Entry;
use ftm_sim::report::Json;
use std::collections::BTreeMap;

/// The finding vocabulary of this analyzer.
pub const PASS_IDS: [&str; 2] = ["F1", "F2"];

/// One flow finding (either pass).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowFinding {
    /// `"F1"` (certification taint) or `"F2"` (spec conformance).
    pub pass: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-indexed line (0 for whole-file obligations).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// For F1: the source-to-sink propagation path.
    pub path: Vec<String>,
}

/// A complete flow report: findings split by the allowlist plus the
/// extracted send tables.
#[derive(Debug)]
pub struct FlowReport {
    /// `"scoped"` or `"deep"`.
    pub mode: &'static str,
    /// Number of files analyzed.
    pub files_scanned: u64,
    /// Findings not waived — these gate.
    pub active: Vec<FlowFinding>,
    /// Findings waived by an allowlist entry.
    pub waived: Vec<FlowFinding>,
    /// Allowlist entries that matched nothing — these also gate.
    pub unused: Vec<Entry>,
    /// Extracted per-actor send tables.
    pub sends: Vec<ActorTable>,
}

impl FlowReport {
    /// Builds a report from an analysis and parsed allowlist entries.
    pub fn new(analysis: Analysis, entries: &[Entry], deep: bool) -> Self {
        let mut findings = analysis.findings;
        findings.sort();
        findings.dedup();
        let mut used = vec![false; entries.len()];
        let mut active = Vec::new();
        let mut waived = Vec::new();
        for finding in findings {
            // Probe the shared matcher with a lint-shaped finding.
            let probe = ftm_lint::Finding {
                lint: finding.pass,
                file: finding.file.clone(),
                line: finding.line,
                message: String::new(),
            };
            let mut hit = false;
            for (i, entry) in entries.iter().enumerate() {
                if entry.matches(&probe) {
                    used[i] = true;
                    hit = true;
                }
            }
            if hit {
                waived.push(finding);
            } else {
                active.push(finding);
            }
        }
        let unused = entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect();
        FlowReport {
            mode: if deep { "deep" } else { "scoped" },
            files_scanned: analysis.files_scanned,
            active,
            waived,
            unused,
            sends: analysis.sends,
        }
    }

    /// Whether the gate passes: no active findings, no stale waivers.
    pub fn ok(&self) -> bool {
        self.active.is_empty() && self.unused.is_empty()
    }

    /// Active findings per pass id (all ids always present).
    pub fn counts(&self) -> BTreeMap<String, u64> {
        let mut counts: BTreeMap<String, u64> =
            PASS_IDS.iter().map(|id| ((*id).to_string(), 0)).collect();
        for f in &self.active {
            *counts.entry(f.pass.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// The byte-stable JSON document.
    pub fn to_json(&self) -> Json {
        let finding_obj = |f: &FlowFinding, waived: bool| {
            Json::Obj(vec![
                ("pass".to_string(), Json::Str(f.pass.to_string())),
                ("file".to_string(), Json::Str(f.file.clone())),
                ("line".to_string(), Json::U64(u64::from(f.line))),
                ("message".to_string(), Json::Str(f.message.clone())),
                (
                    "path".to_string(),
                    Json::Arr(f.path.iter().map(|s| Json::Str(s.clone())).collect()),
                ),
                ("waived".to_string(), Json::Bool(waived)),
            ])
        };
        let mut findings: Vec<Json> = Vec::new();
        for f in &self.active {
            findings.push(finding_obj(f, false));
        }
        for f in &self.waived {
            findings.push(finding_obj(f, true));
        }
        let sends = Json::Obj(
            self.sends
                .iter()
                .map(|t| {
                    let sites = t
                        .sites
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("kind".to_string(), Json::Str(s.kind.clone())),
                                (
                                    "route".to_string(),
                                    Json::Str(
                                        match s.route {
                                            Route::Broadcast => "broadcast",
                                            Route::Unicast => "unicast",
                                        }
                                        .to_string(),
                                    ),
                                ),
                                (
                                    "round".to_string(),
                                    Json::Str(
                                        match s.round {
                                            RoundDelta::Same => "same",
                                            RoundDelta::Jump => "jump",
                                            RoundDelta::Relayed => "relayed",
                                            RoundDelta::NoRound => "none",
                                        }
                                        .to_string(),
                                    ),
                                ),
                                ("fn".to_string(), Json::Str(s.in_fn.clone())),
                                ("line".to_string(), Json::U64(u64::from(s.line))),
                            ])
                        })
                        .collect();
                    (t.file.clone(), Json::Arr(sites))
                })
                .collect(),
        );
        Json::Obj(vec![
            ("version".to_string(), Json::U64(1)),
            ("mode".to_string(), Json::Str(self.mode.to_string())),
            ("files_scanned".to_string(), Json::U64(self.files_scanned)),
            (
                "counts".to_string(),
                Json::Obj(
                    self.counts()
                        .into_iter()
                        .map(|(k, v)| (k, Json::U64(v)))
                        .collect(),
                ),
            ),
            ("findings".to_string(), Json::Arr(findings)),
            ("sends".to_string(), sends),
            (
                "allowlist_unused".to_string(),
                Json::Arr(self.unused.iter().map(|e| Json::Str(e.render())).collect()),
            ),
            ("ok".to_string(), Json::Bool(self.ok())),
        ])
    }

    /// The human-readable rendering (one line per finding plus paths).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.active {
            out.push_str(&format!(
                "{}: {}:{}: {}\n",
                f.pass, f.file, f.line, f.message
            ));
            for step in &f.path {
                out.push_str(&format!("    -> {step}\n"));
            }
        }
        for f in &self.waived {
            out.push_str(&format!(
                "{}: {}:{}: {} (waived)\n",
                f.pass, f.file, f.line, f.message
            ));
        }
        for e in &self.unused {
            out.push_str(&format!("stale allowlist entry: {}\n", e.render()));
        }
        out.push_str(&format!(
            "ftm-flow [{}]: {} files, {} active finding(s), {} waived, {} stale waiver(s): {}\n",
            self.mode,
            self.files_scanned,
            self.active.len(),
            self.waived.len(),
            self.unused.len(),
            if self.ok() { "ok" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_lint::parse_allowlist_with;

    fn finding(pass: &'static str, file: &str, line: u32) -> FlowFinding {
        FlowFinding {
            pass,
            file: file.to_string(),
            line,
            message: "m".to_string(),
            path: vec!["a".to_string()],
        }
    }

    fn analysis(findings: Vec<FlowFinding>) -> Analysis {
        Analysis {
            files_scanned: 1,
            findings,
            sends: Vec::new(),
        }
    }

    #[test]
    fn allowlist_waives_and_tracks_stale_entries() {
        let entries =
            parse_allowlist_with("F1 a.rs 5 # audited\nF2 b.rs # never\n", &PASS_IDS).unwrap();
        let report = FlowReport::new(
            analysis(vec![finding("F1", "a.rs", 5), finding("F1", "a.rs", 6)]),
            &entries,
            false,
        );
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.active.len(), 1);
        assert_eq!(report.unused.len(), 1);
        assert!(!report.ok(), "stale waiver must gate");
    }

    #[test]
    fn counts_always_contain_both_passes() {
        let report = FlowReport::new(analysis(Vec::new()), &[], false);
        let counts = report.counts();
        assert_eq!(counts.get("F1"), Some(&0));
        assert_eq!(counts.get("F2"), Some(&0));
        assert!(report.ok());
    }

    #[test]
    fn json_is_byte_stable() {
        let report = FlowReport::new(analysis(vec![finding("F2", "x.rs", 9)]), &[], true);
        let a = report.to_json().render();
        let b = report.to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"mode\": \"deep\""));
        assert!(a.contains("\"ok\": false"));
    }
}
