//! Control-flow graphs over the simplified AST.
//!
//! Each function body lowers to a graph of basic blocks whose steps are
//! expression evaluations, bindings, assignments and returns. Branching
//! constructs (`if`, `match`) become diamonds / n-way splits so the taint
//! pass can require a sanitizer on *every* route from source to sink, not
//! just one. Loops get a back edge plus an exit edge; `break`/`continue`
//! are conservatively treated as fallthrough (sound for taint: extra
//! edges only add paths, they never hide one).

use crate::ast::{Block, Expr, Stmt};

/// One step inside a basic block.
#[derive(Debug)]
pub enum Step<'a> {
    /// Evaluate an expression for effect.
    Eval(&'a Expr),
    /// Bind names, optionally from an initializer.
    Bind {
        /// The names being bound.
        binds: &'a [String],
        /// The initializer whose taint flows into the binds.
        from: Option<&'a Expr>,
        /// Source line of the binding.
        line: u32,
    },
    /// Assign a value into a place.
    Assign {
        /// Flattened place text (e.g. `self . est_vect`).
        place: &'a str,
        /// The assigned value.
        value: &'a Expr,
        /// Whether the assignment is compound (`+=` etc.).
        compound: bool,
        /// Source line of the assignment.
        line: u32,
    },
    /// Return from the function.
    Ret(Option<&'a Expr>),
}

/// A basic block: straight-line steps plus successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock<'a> {
    /// The steps executed in order.
    pub steps: Vec<Step<'a>>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A function's control-flow graph.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// The basic blocks; indices are stable identifiers.
    pub blocks: Vec<BasicBlock<'a>>,
    /// The entry block index.
    pub entry: usize,
    /// The exit block index (every return edge lands here).
    pub exit: usize,
}

impl<'a> Cfg<'a> {
    /// Lowers a function body to its CFG.
    pub fn build(body: &'a Block) -> Self {
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            exit: 1,
        };
        let last = b.lower_block(body, 0, true);
        b.edge(last, b.exit);
        Cfg {
            blocks: b.blocks,
            entry: 0,
            exit: 1,
        }
    }
}

struct Builder<'a> {
    blocks: Vec<BasicBlock<'a>>,
    exit: usize,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push(&mut self, block: usize, step: Step<'a>) {
        self.blocks[block].steps.push(step);
    }

    /// Lowers a block starting in `cur`; returns the block where control
    /// continues. When `is_fn_body`, the tail expression becomes a return.
    fn lower_block(&mut self, body: &'a Block, mut cur: usize, is_fn_body: bool) -> usize {
        for stmt in &body.stmts {
            cur = self.lower_stmt(stmt, cur);
        }
        if let Some(tail) = &body.tail {
            if is_fn_body {
                self.push(cur, Step::Ret(Some(tail.as_ref())));
            } else {
                self.push(cur, Step::Eval(tail.as_ref()));
            }
        }
        cur
    }

    #[allow(clippy::too_many_lines)]
    fn lower_stmt(&mut self, stmt: &'a Stmt, cur: usize) -> usize {
        match stmt {
            Stmt::Let { binds, init, line } => {
                self.push(
                    cur,
                    Step::Bind {
                        binds,
                        from: init.as_ref(),
                        line: *line,
                    },
                );
                cur
            }
            Stmt::Assign {
                place,
                value,
                compound,
                line,
            } => {
                self.push(
                    cur,
                    Step::Assign {
                        place,
                        value,
                        compound: *compound,
                        line: *line,
                    },
                );
                cur
            }
            Stmt::If {
                cond,
                binds,
                then_b,
                else_b,
            } => {
                self.push(cur, Step::Eval(cond));
                let then_entry = self.fresh();
                self.edge(cur, then_entry);
                // `if let` binds are live only on the then-branch.
                if !binds.is_empty() {
                    self.push(
                        then_entry,
                        Step::Bind {
                            binds,
                            from: Some(cond),
                            line: cond.line,
                        },
                    );
                }
                let then_end = self.lower_block(then_b, then_entry, false);
                let join = self.fresh();
                self.edge(then_end, join);
                if let Some(eb) = else_b {
                    let else_entry = self.fresh();
                    self.edge(cur, else_entry);
                    let else_end = self.lower_block(eb, else_entry, false);
                    self.edge(else_end, join);
                } else {
                    self.edge(cur, join);
                }
                join
            }
            Stmt::Match { scrutinee, arms } => {
                self.push(cur, Step::Eval(scrutinee));
                let join = self.fresh();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let entry = self.fresh();
                    self.edge(cur, entry);
                    if !arm.binds.is_empty() {
                        self.push(
                            entry,
                            Step::Bind {
                                binds: &arm.binds,
                                from: Some(scrutinee),
                                line: scrutinee.line,
                            },
                        );
                    }
                    if let Some(g) = &arm.guard {
                        self.push(entry, Step::Eval(g));
                    }
                    let end = self.lower_block(&arm.body, entry, false);
                    self.edge(end, join);
                }
                join
            }
            Stmt::While { cond, binds, body } => {
                let header = self.fresh();
                self.edge(cur, header);
                self.push(header, Step::Eval(cond));
                let body_entry = self.fresh();
                self.edge(header, body_entry);
                if !binds.is_empty() {
                    self.push(
                        body_entry,
                        Step::Bind {
                            binds,
                            from: Some(cond),
                            line: cond.line,
                        },
                    );
                }
                let body_end = self.lower_block(body, body_entry, false);
                self.edge(body_end, header); // back edge
                let after = self.fresh();
                self.edge(header, after);
                after
            }
            Stmt::Loop { body } => {
                let header = self.fresh();
                self.edge(cur, header);
                let body_end = self.lower_block(body, header, false);
                self.edge(body_end, header);
                let after = self.fresh();
                // `break` is modeled as fallthrough, so the loop must be
                // escapable from its header.
                self.edge(header, after);
                after
            }
            Stmt::For { binds, iter, body } => {
                self.push(cur, Step::Eval(iter));
                let header = self.fresh();
                self.edge(cur, header);
                let body_entry = self.fresh();
                self.edge(header, body_entry);
                if !binds.is_empty() {
                    self.push(
                        body_entry,
                        Step::Bind {
                            binds,
                            from: Some(iter),
                            line: iter.line,
                        },
                    );
                }
                let body_end = self.lower_block(body, body_entry, false);
                self.edge(body_end, header);
                let after = self.fresh();
                self.edge(header, after);
                after
            }
            Stmt::Return { value, .. } => {
                self.push(cur, Step::Ret(value.as_ref()));
                self.edge(cur, self.exit);
                // Code after a return is dead; give it a fresh island.
                self.fresh()
            }
            Stmt::Jump => cur,
            Stmt::Expr(e) => {
                self.push(cur, Step::Eval(e));
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn cfg_of(src: &str) -> (Vec<crate::ast::FnDef>, usize) {
        let fns = parse_file(src);
        assert!(!fns.is_empty());
        (fns, 0)
    }

    #[test]
    fn if_without_else_has_skip_edge() {
        let (fns, i) = cfg_of("fn f(x: u64) { if x > 0 { touch(x); } after(); }");
        let cfg = Cfg::build(&fns[i].body);
        // Entry must have two successors: the then-branch and the join.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn match_produces_one_branch_per_arm() {
        let (fns, i) =
            cfg_of("fn f(e: E) { match e { E::A => a(), E::B => b(), _ => {} } done(); }");
        let cfg = Cfg::build(&fns[i].body);
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 3);
    }

    #[test]
    fn return_edges_reach_exit() {
        let (fns, i) = cfg_of("fn f(x: u64) -> u64 { if x > 0 { return 1; } 0 }");
        let cfg = Cfg::build(&fns[i].body);
        let reaches_exit = cfg
            .blocks
            .iter()
            .filter(|b| b.succs.contains(&cfg.exit))
            .count();
        assert!(reaches_exit >= 2, "both the return and the tail must exit");
    }

    #[test]
    fn while_loop_has_back_edge() {
        let (fns, i) = cfg_of("fn f() { while go() { step(); } end(); }");
        let cfg = Cfg::build(&fns[i].body);
        let mut has_back_edge = false;
        for (bi, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                if s < bi {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge);
    }
}
