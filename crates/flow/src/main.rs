//! Command-line front end for `ftm-flow`.
//!
//! ```text
//! ftm-flow [--root DIR] [--allowlist FILE] [--json] [--deep]
//! ```
//!
//! Exit codes: `0` clean, `1` active findings or stale allowlist entries,
//! `2` usage or I/O error. `--json` prints the byte-stable report to
//! stdout (the human summary goes to stderr so the JSON stays clean).
//! `--deep` widens from the transformation layers to the whole workspace
//! and additionally treats the crash actors' message parameters as
//! ingress — informative, not gating.

use std::path::PathBuf;
use std::process::ExitCode;

use ftm_flow::report::{FlowReport, PASS_IDS};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: bool,
    deep: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist = None;
    let mut json = false;
    let mut deep = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deep" => deep = true,
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: ftm-flow [--root DIR] [--allowlist FILE] [--json] [--deep]".to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        root,
        allowlist,
        json,
        deep,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let allowlist_path = args
        .allowlist
        .unwrap_or_else(|| args.root.join("crates/flow/allowlist.txt"));
    let entries = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => ftm_lint::parse_allowlist_with(&text, &PASS_IDS)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", allowlist_path.display())),
    };
    let analysis = ftm_flow::scan_workspace(&args.root, args.deep)
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;
    let report = FlowReport::new(analysis, &entries, args.deep);
    if args.json {
        print!("{}", report.to_json().render());
        eprint!("{}", report.to_text());
    } else {
        print!("{}", report.to_text());
    }
    Ok(report.ok())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ftm-flow: {msg}");
            ExitCode::from(2)
        }
    }
}
