//! Mutation-kill coverage for pass F1 on the *real* actor code: disabling
//! any production sanitizer call site (renaming it to a name the analyzer
//! does not recognise) must produce at least one F1 finding in that file.
//! This proves the certification-before-use obligation is enforced by the
//! analysis, not satisfied vacuously.

use ftm_flow::analyze_sources;
use std::fs;
use std::path::{Path, PathBuf};

/// `(file, sanitizer call token, disabled replacement)` — one case per
/// production certification gate inside the gating scope.
const CASES: [(&str, &str, &str); 3] = [
    (
        "crates/core/src/byzantine/protocol.rs",
        ".admit(",
        ".unchecked_admit(",
    ),
    (
        "crates/core/src/byzantine/chandra_toueg.rs",
        ".admit(",
        ".unchecked_admit(",
    ),
    (
        "crates/core/src/byzantine/log.rs",
        ".check_envelope(",
        ".unchecked_envelope(",
    ),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn read(rel: &str) -> String {
    fs::read_to_string(workspace_root().join(rel)).expect(rel)
}

#[test]
fn disabling_each_production_sanitizer_yields_an_f1_finding() {
    for (rel, token, replacement) in CASES {
        let pristine = read(rel);
        assert!(
            pristine.contains(token),
            "{rel}: expected sanitizer call {token:?}"
        );

        let base = analyze_sources(&[(rel.to_string(), pristine.clone())], false);
        assert!(
            base.findings.is_empty(),
            "{rel}: pristine file must be clean: {:#?}",
            base.findings
        );

        let mutated = pristine.replace(token, replacement);
        let analysis = analyze_sources(&[(rel.to_string(), mutated)], false);
        let f1: Vec<_> = analysis
            .findings
            .iter()
            .filter(|f| f.pass == "F1")
            .collect();
        assert!(
            !f1.is_empty(),
            "{rel}: disabling {token:?} must be caught by F1"
        );
        for f in &f1 {
            assert_eq!(f.file, rel);
        }
    }
}
