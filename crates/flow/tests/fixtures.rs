//! The fixture corpus contract: the clean miniature actor produces zero
//! findings, every mutant is caught by exactly its intended pass, the
//! real workspace is clean under the gating scope, the extracted send
//! tables cover the spec bijectively, and the JSON report is byte-stable.

use ftm_flow::report::{FlowReport, PASS_IDS};
use ftm_flow::{analyze_sources, scan_workspace, Analysis};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Fixtures impersonate the HR actor so scoping and conformance-target
/// selection behave exactly as on the real tree.
const VIRTUAL_PATH: &str = "crates/core/src/byzantine/protocol.rs";

/// `(fixture file, pass expected to catch it)`.
const MUTANTS: [(&str, &str); 5] = [
    ("m_drop_sanitizer.rs", "F1"),
    ("m_kind_swap.rs", "F2"),
    ("m_round_jump.rs", "F2"),
    ("m_unicast.rs", "F2"),
    ("m_missing_send.rs", "F2"),
];

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn analyze_fixture(name: &str) -> Analysis {
    let source = fs::read_to_string(fixture_dir().join(name)).expect(name);
    analyze_sources(&[(VIRTUAL_PATH.to_string(), source)], false)
}

#[test]
fn clean_fixture_produces_no_findings() {
    let analysis = analyze_fixture("clean_hr.rs");
    assert!(
        analysis.findings.is_empty(),
        "clean fixture must be clean: {:#?}",
        analysis.findings
    );
    // And not vacuously: all four kinds must actually be extracted.
    let kinds: Vec<&str> = analysis.sends[0]
        .sites
        .iter()
        .map(|s| s.kind.as_str())
        .collect();
    for kind in ["Init", "Current", "Next", "Decide"] {
        assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
    }
}

#[test]
fn every_mutant_is_caught_by_exactly_its_pass() {
    for (name, expected_pass) in MUTANTS {
        let analysis = analyze_fixture(name);
        assert!(
            !analysis.findings.is_empty(),
            "{name}: mutant must be caught"
        );
        for f in &analysis.findings {
            assert_eq!(
                f.pass, expected_pass,
                "{name}: finding from wrong pass: {f:#?}"
            );
        }
    }
}

#[test]
fn fixture_corpus_is_complete_and_minimal() {
    let mut on_disk: Vec<String> = fs::read_dir(fixture_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("m_"))
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = MUTANTS.iter().map(|(n, _)| (*n).to_string()).collect();
    listed.sort();
    assert_eq!(on_disk, listed, "every mutant on disk must be tested");
}

#[test]
fn real_workspace_is_clean_under_the_gating_scope() {
    let analysis = scan_workspace(&workspace_root(), false).expect("scan");
    assert!(analysis.files_scanned > 0);
    assert!(
        analysis.findings.is_empty(),
        "gating scope must be clean: {:#?}",
        analysis.findings
    );
}

#[test]
fn extracted_send_tables_cover_both_specs_bijectively() {
    let analysis = scan_workspace(&workspace_root(), false).expect("scan");
    let mut by_file: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    for table in &analysis.sends {
        let counts = by_file.entry(table.file.as_str()).or_default();
        for site in &table.sites {
            *counts.entry(site.kind.as_str()).or_insert(0) += 1;
        }
    }
    // HR: 5 sites discharge 7 obligations (CURRENT ×2 by guard
    // bijection, NEXT ×1 literal expanded over its 3 call sites).
    let hr = &by_file["crates/core/src/byzantine/protocol.rs"];
    assert_eq!(hr["Init"], 1);
    assert_eq!(hr["Current"], 2);
    assert_eq!(hr["Next"], 1);
    assert_eq!(hr["Decide"], 1);
    // CT: 6 sites, one per obligation.
    let ct = &by_file["crates/core/src/byzantine/chandra_toueg.rs"];
    for kind in ["Init", "Estimate", "Propose", "Ack", "Nack", "Decide"] {
        assert_eq!(ct[kind], 1, "CT {kind}");
    }
    // Bijectivity itself is what pass F2 checks: with zero findings
    // (asserted above) every obligation paired with exactly one site.
}

#[test]
fn json_report_is_byte_stable_across_scans() {
    let root = workspace_root();
    let render = || {
        let analysis = scan_workspace(&root, false).expect("scan");
        FlowReport::new(analysis, &[], false).to_json().render()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "JSON report must be byte-stable");
    assert!(a.contains("\"ok\": true"));
}

#[test]
fn allowlist_vocabulary_matches_the_passes() {
    assert_eq!(PASS_IDS, ["F1", "F2"]);
    let entries =
        ftm_lint::parse_allowlist_with("F2 crates/x.rs 3 # reviewed\n", &PASS_IDS).expect("parse");
    assert_eq!(entries.len(), 1);
    assert!(ftm_lint::parse_allowlist_with("D1 crates/x.rs # wrong\n", &PASS_IDS).is_err());
}
