//! The non-muteness failure detection module a process embeds.
//!
//! One [`Observer`] per process: it owns one [`PeerAutomaton`] per peer,
//! the certificate analyzer, and the evidence log. Every incoming envelope
//! flows through [`Observer::observe`], which implements the paper's
//! receive pipeline (Fig. 1): identity check → signature check → syntax →
//! timing automaton → certificate predicates. Any failure convicts the
//! sender: it enters the observer's `faulty` set, which the protocol module
//! may only read.
//!
//! The module is *reliable* in the paper's sense: if a correct process
//! declares `q` faulty, `q` did exhibit an incorrect behavior — every
//! conviction is backed by a [`FaultRecord`] holding the failed check.

use std::collections::BTreeSet;

use ftm_certify::analyzer::{CertChecker, NextTrigger};
use ftm_certify::{CertifyError, Envelope, FaultClass, MessageKind};
use ftm_sim::{ProcessId, VirtualTime};

use crate::automaton::{PeerAutomaton, PeerPhase, ProtocolTable, Requirement};
use crate::predicates::round_entry_justified;

/// One conviction with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The convicted process.
    pub culprit: ProcessId,
    /// The paper's failure class.
    pub class: FaultClass,
    /// The failed check.
    pub reason: &'static str,
    /// When the observer convicted it.
    pub at: VirtualTime,
}

/// Which checks the observer runs — all on by default.
///
/// Exists for the ablation experiment (E8): disabling one module at a time
/// shows each is load-bearing. Production use keeps the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checks {
    /// Identity and core-signature verification (the signature module).
    pub signatures: bool,
    /// Certificate item signatures and per-kind well-formedness (the
    /// reliable certification module / `PF` predicates).
    pub certificates: bool,
    /// The per-peer timing automaton (out-of-order detection).
    pub timing: bool,
}

impl Default for Checks {
    fn default() -> Self {
        Checks {
            signatures: true,
            certificates: true,
            timing: true,
        }
    }
}

/// Per-process non-muteness failure detection module.
///
/// # Example
///
/// ```
/// use ftm_certify::analyzer::CertChecker;
/// use ftm_certify::{Certificate, Core, Envelope};
/// use ftm_detect::Observer;
/// use ftm_sim::{ProcessId, VirtualTime};
///
/// let mut rng = ftm_crypto::rng_from_seed(4);
/// let (dir, keys) = ftm_crypto::keydir::KeyDirectory::generate(&mut rng, 4, 128);
/// let mut obs = Observer::new(CertChecker::new(4, 1, dir));
/// let env = Envelope::make(ProcessId(2), Core::Init { value: 7 },
///                          Certificate::new(), &keys[2]);
/// assert!(obs.observe(ProcessId(2), &env, VirtualTime::ZERO).is_ok());
/// assert!(obs.faulty_set().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Observer {
    checker: CertChecker,
    automata: Vec<PeerAutomaton>,
    faults: Vec<FaultRecord>,
    checks: Checks,
}

impl Observer {
    /// Creates an observer for all `n` peers of `checker`, with the
    /// automaton table of the checker's protocol.
    pub fn new(checker: CertChecker) -> Self {
        let table = ProtocolTable::for_protocol(checker.protocol());
        let automata = (0..checker.n() as u32)
            .map(|i| PeerAutomaton::new_for(table, ProcessId(i)))
            .collect();
        Observer {
            checker,
            automata,
            faults: Vec::new(),
            checks: Checks::default(),
        }
    }

    /// Creates an observer with some checks disabled (ablation only).
    pub fn with_checks(checker: CertChecker, checks: Checks) -> Self {
        let mut o = Observer::new(checker);
        o.checks = checks;
        o
    }

    /// The analyzer this observer validates against.
    pub fn checker(&self) -> &CertChecker {
        &self.checker
    }

    /// Runs the full receive pipeline on an envelope arriving over the
    /// channel from `from`.
    ///
    /// Returns the NEXT trigger classification for NEXT messages (`None`
    /// for other kinds) so the embedding protocol knows *why* the peer
    /// votes NEXT.
    ///
    /// # Errors
    ///
    /// Any failed check: the sender is convicted, the evidence logged, and
    /// the message must be discarded by the caller.
    pub fn observe(
        &mut self,
        from: ProcessId,
        env: &Envelope,
        now: VirtualTime,
    ) -> Result<Option<NextTrigger>, CertifyError> {
        // 1. Identity: the claimed sender must be the channel source
        //    (channels are point-to-point; claiming another identity is the
        //    paper's "falsified identity" fault, pinned on the source).
        if self.checks.signatures {
            if env.sender() != from {
                return Err(self.convict(
                    CertifyError::new(
                        from,
                        FaultClass::BadSignature,
                        "claimed sender differs from channel source",
                    ),
                    now,
                ));
            }
            // 2. Signature over the core.
            if let Err(e) = env.signed.verify(self.checker.dir()) {
                return Err(self.convict(e, now));
            }
        }
        // 3. Syntax.
        if let Err(e) = self.checker.check_syntax(env) {
            return Err(self.convict(e, now));
        }
        // 4. Timing: is this receipt event enabled in SM_p(q)? With the
        // signature module on, the claimed sender IS the channel source;
        // ablated, the receiver can only trust the claim (see Checks).
        let subject = if self.checks.signatures {
            from
        } else {
            env.sender()
        };
        let subject_idx = subject.index().min(self.automata.len() - 1);
        // Checkpoints are slot-compaction metadata, not round votes: they
        // sit outside the per-round automaton alphabet (a decided peer may
        // legitimately emit one), so the timing check does not apply.
        let requirement = if self.checks.timing && env.kind() != MessageKind::Checkpoint {
            match self.automata[subject_idx].on_message(env) {
                Ok(req) => req,
                Err(e) => return Err(self.record(e, now)),
            }
        } else {
            Requirement::Standard
        };
        if !self.checks.certificates {
            return Ok(None);
        }
        // 5. Certificate item signatures.
        if let Err(e) = self.checker.check_cert_signatures(env) {
            return Err(self.convict(e, now));
        }
        // 6. Per-kind certificate predicates (the PF family).
        let trigger = match env.kind() {
            MessageKind::Init => {
                if let Err(e) = self.checker.check_init(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Current => {
                if let Err(e) = self.checker.check_current(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Next => match self.checker.check_next(env) {
                Ok(t) => Some(t),
                Err(e) => return Err(self.convict(e, now)),
            },
            MessageKind::Decide => {
                if let Err(e) = self.checker.check_decide(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Estimate => {
                if let Err(e) = self.checker.check_estimate(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Propose => {
                if let Err(e) = self.checker.check_propose(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Ack => {
                if let Err(e) = self.checker.check_ack(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Nack => {
                if let Err(e) = self.checker.check_nack(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
            MessageKind::Checkpoint => {
                if let Err(e) = self.checker.check_checkpoint(env) {
                    return Err(self.convict(e, now));
                }
                None
            }
        };
        // 7. Round-entry evidence when the automaton asked for it.
        if let Requirement::RoundEntry(r) = requirement {
            if let Err(e) = round_entry_justified(&self.checker, env, r) {
                return Err(self.convict(e, now));
            }
        }
        Ok(trigger)
    }

    fn convict(&mut self, e: CertifyError, now: VirtualTime) -> CertifyError {
        let idx = e.culprit.index().min(self.automata.len() - 1);
        self.automata[idx].convict();
        self.record(e, now)
    }

    fn record(&mut self, e: CertifyError, now: VirtualTime) -> CertifyError {
        self.faults.push(FaultRecord {
            culprit: e.culprit,
            class: e.class,
            reason: e.reason,
            at: now,
        });
        e
    }

    /// The convicted processes (the paper's `faulty_i` set).
    pub fn faulty_set(&self) -> BTreeSet<ProcessId> {
        self.faults.iter().map(|f| f.culprit).collect()
    }

    /// Whether `p` is convicted.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.automata
            .get(p.index())
            .is_some_and(super::automaton::PeerAutomaton::is_faulty)
    }

    /// The evidence log, in conviction order.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// Phase the observer believes `p` is in.
    pub fn phase_of(&self, p: ProcessId) -> PeerPhase {
        self.automata[p.index()].phase()
    }

    /// Round the observer believes `p` is in.
    pub fn round_of(&self, p: ProcessId) -> u64 {
        self.automata[p.index()].round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_certify::{Certificate, Core, ValueVector};
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;

    const N: usize = 4;

    fn fixture() -> (Observer, Vec<KeyPair>) {
        let mut rng = ftm_crypto::rng_from_seed(81);
        let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
        (Observer::new(CertChecker::new(N, 1, dir)), keys)
    }

    fn init(keys: &[KeyPair], s: u32, v: u64) -> Envelope {
        Envelope::make(
            ProcessId(s),
            Core::Init { value: v },
            Certificate::new(),
            &keys[s as usize],
        )
    }

    #[test]
    fn honest_messages_pass_and_no_convictions() {
        let (mut obs, keys) = fixture();
        for s in 0..N as u32 {
            assert!(obs
                .observe(ProcessId(s), &init(&keys, s, s as u64), VirtualTime::ZERO)
                .is_ok());
        }
        assert!(obs.faulty_set().is_empty());
        assert_eq!(obs.phase_of(ProcessId(0)), PeerPhase::Q0);
    }

    #[test]
    fn identity_falsification_blames_channel_source() {
        let (mut obs, keys) = fixture();
        // p3 sends over its channel a message claiming to be p1, even with
        // p1's genuine core signature (a replayed statement).
        let env = init(&keys, 1, 9);
        let err = obs
            .observe(ProcessId(3), &env, VirtualTime::at(4))
            .unwrap_err();
        assert_eq!(err.culprit, ProcessId(3));
        assert_eq!(err.class, FaultClass::BadSignature);
        assert!(obs.is_faulty(ProcessId(3)));
        assert!(!obs.is_faulty(ProcessId(1)));
        assert_eq!(obs.faults().len(), 1);
        assert_eq!(obs.faults()[0].at, VirtualTime::at(4));
    }

    #[test]
    fn forged_signature_convicts() {
        let (mut obs, keys) = fixture();
        // p2 signs with p3's key (stolen/broken key model).
        let env = Envelope::make(
            ProcessId(2),
            Core::Init { value: 5 },
            Certificate::new(),
            &keys[3],
        );
        let err = obs
            .observe(ProcessId(2), &env, VirtualTime::ZERO)
            .unwrap_err();
        assert_eq!(err.class, FaultClass::BadSignature);
        assert!(obs.is_faulty(ProcessId(2)));
    }

    #[test]
    fn out_of_order_convicts_via_automaton() {
        let (mut obs, keys) = fixture();
        let env = Envelope::make(
            ProcessId(1),
            Core::Next { round: 1 },
            Certificate::new(),
            &keys[1],
        );
        // First message is not INIT.
        let err = obs
            .observe(ProcessId(1), &env, VirtualTime::ZERO)
            .unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(obs.is_faulty(ProcessId(1)));
    }

    #[test]
    fn bad_certificate_convicts_after_timing_passes() {
        let (mut obs, keys) = fixture();
        obs.observe(ProcessId(0), &init(&keys, 0, 1), VirtualTime::ZERO)
            .unwrap();
        // p0 (round-1 coordinator) sends CURRENT with an unwitnessed vector.
        let mut vect = ValueVector::empty(N);
        vect.set(0, 1);
        vect.set(1, 2);
        vect.set(2, 3);
        let env = Envelope::make(
            ProcessId(0),
            Core::Current {
                round: 1,
                vector: vect,
            },
            Certificate::new(), // no INIT backing at all
            &keys[0],
        );
        let err = obs
            .observe(ProcessId(0), &env, VirtualTime::at(7))
            .unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
        assert!(obs.is_faulty(ProcessId(0)));
    }

    #[test]
    fn next_trigger_is_surfaced() {
        let (mut obs, keys) = fixture();
        obs.observe(ProcessId(1), &init(&keys, 1, 1), VirtualTime::ZERO)
            .unwrap();
        let env = Envelope::make(
            ProcessId(1),
            Core::Next { round: 1 },
            Certificate::new(),
            &keys[1],
        );
        let trigger = obs.observe(ProcessId(1), &env, VirtualTime::at(1)).unwrap();
        assert_eq!(trigger, Some(NextTrigger::Suspicion));
        assert_eq!(obs.phase_of(ProcessId(1)), PeerPhase::Q2);
    }

    #[test]
    fn faulty_set_accumulates_distinct_culprits() {
        let (mut obs, keys) = fixture();
        for s in [1u32, 2] {
            let env = Envelope::make(
                ProcessId(s),
                Core::Next { round: 1 },
                Certificate::new(),
                &keys[s as usize],
            );
            let _ = obs.observe(ProcessId(s), &env, VirtualTime::ZERO);
        }
        let set = obs.faulty_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains(&ProcessId(1)) && set.contains(&ProcessId(2)));
    }
}
