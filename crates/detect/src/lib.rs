//! Non-muteness failure detection: per-peer state machines.
//!
//! Under the paper's assumption that every process knows the program text of
//! every other, each process `p` builds one state machine `SM_p(q)` per peer
//! `q`, modeling the behavior a correct `q` must exhibit (paper Fig. 4).
//! Transitions fire on messages received from `q` (FIFO channels guarantee
//! `p` sees `q`'s messages in send order). A message whose receipt event is
//! not enabled is **out-of-order**; an enabled message failing the
//! syntactic check or whose certificate is not well-formed is a **wrong
//! expected message**. Both drive the automaton into the terminal `faulty`
//! state, and `q` joins the observer's `faulty` set — which the protocol
//! module may read (alongside the muteness detector's `suspected` set) but
//! never write.
//!
//! * [`automaton`] — the per-peer automaton: phases `start, q0, q1, q2,
//!   final, faulty`, round tracking, transition rules.
//! * [`predicates`] — the `PF_{a,b}` predicates: certificate analysis
//!   specialized per transition (round entry, relays, decides).
//! * [`observer`] — the module that owns one automaton per peer plus the
//!   evidence log; this is what the transformed protocol embeds.

pub mod automaton;
pub mod observer;
pub mod predicates;

pub use automaton::{PeerAutomaton, PeerPhase, ProtocolTable, Requirement};
pub use observer::{FaultRecord, Observer};
