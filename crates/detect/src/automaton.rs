//! The per-peer observer automaton (paper Fig. 4).
//!
//! `SM_p(q)` tracks what a correct `q` may send next over the FIFO channel
//! `q → p`. Because every correct process sends, per round, at most one
//! CURRENT followed by at most one NEXT — and always a NEXT before leaving
//! the round (Fig. 3 line 31) — the legal per-round patterns are:
//!
//! ```text
//! start ──INIT──▶ q0(r=1)
//! q0 ──CURRENT(r)──▶ q1      q0 ──NEXT(r)──▶ q2
//! q1 ──NEXT(r)──▶ q2         q2 ──msg(r+1)──▶ q0(r+1) (re-dispatched)
//! any ──DECIDE──▶ final
//! anything else ──▶ faulty   (terminal)
//! ```
//!
//! The automaton checks *timing* (enabled receipt events); content and
//! certificate checks (`PF` predicates) are the
//! [`ftm_certify::CertChecker`]'s and [`crate::predicates`]'s job and are
//! run by the [`crate::Observer`] before the transition is applied.

use std::fmt;

use ftm_certify::{CertifyError, Envelope, FaultClass, MessageKind, Round};
use ftm_sim::ProcessId;

/// Observer-side phases of a peer, mirroring the protocol automaton's
/// states plus the observer-specific `start`, `final` and `faulty`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerPhase {
    /// Nothing received yet; an INIT is expected.
    Start,
    /// In a round, no vote seen yet.
    Q0,
    /// Voted CURRENT in this round.
    Q1,
    /// Voted NEXT in this round.
    Q2,
    /// Decided (DECIDE seen); nothing further may arrive.
    Final,
    /// Convicted: a fault was observed. Terminal.
    Faulty,
}

impl fmt::Display for PeerPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PeerPhase::Start => "start",
            PeerPhase::Q0 => "q0",
            PeerPhase::Q1 => "q1",
            PeerPhase::Q2 => "q2",
            PeerPhase::Final => "final",
            PeerPhase::Faulty => "faulty",
        };
        f.write_str(s)
    }
}

/// What the automaton asks the observer to verify before committing a
/// transition (the `PF` predicate family to evaluate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requirement {
    /// Message is in-pattern for the current round; the standard
    /// per-kind certificate check suffices.
    Standard,
    /// Message opens round `new_round` for this peer: additionally check
    /// round-entry evidence ([`crate::predicates::round_entry_justified`]).
    RoundEntry(Round),
}

/// The timing automaton for one peer.
///
/// # Example
///
/// ```
/// use ftm_detect::{PeerAutomaton, PeerPhase};
/// use ftm_sim::ProcessId;
/// let a = PeerAutomaton::new(ProcessId(1));
/// assert_eq!(a.phase(), PeerPhase::Start);
/// assert_eq!(a.round(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PeerAutomaton {
    peer: ProcessId,
    phase: PeerPhase,
    round: Round,
}

impl PeerAutomaton {
    /// Creates the automaton in `start`, before any receipt.
    pub fn new(peer: ProcessId) -> Self {
        PeerAutomaton {
            peer,
            phase: PeerPhase::Start,
            round: 0,
        }
    }

    /// Creates the automaton in an arbitrary `(phase, round)` state.
    ///
    /// This exists for *static analysis*: `ftm-verify` enumerates the
    /// transition function state by state, which requires placing the
    /// automaton in each state directly instead of replaying a history
    /// that reaches it. Protocol code should use [`PeerAutomaton::new`].
    pub fn at(peer: ProcessId, phase: PeerPhase, round: Round) -> Self {
        PeerAutomaton { peer, phase, round }
    }

    /// The observed peer.
    pub fn peer(&self) -> ProcessId {
        self.peer
    }

    /// Current phase.
    pub fn phase(&self) -> PeerPhase {
        self.phase
    }

    /// The round the peer is believed to be in (0 until its INIT arrives).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Returns `true` once the peer is convicted.
    pub fn is_faulty(&self) -> bool {
        self.phase == PeerPhase::Faulty
    }

    fn fault(&mut self, reason: &'static str) -> Result<Requirement, CertifyError> {
        self.phase = PeerPhase::Faulty;
        Err(CertifyError::new(self.peer, FaultClass::OutOfOrder, reason))
    }

    /// Checks whether `env`'s receipt event is enabled, and advances the
    /// phase if so. Returns the extra verification the observer must run
    /// (certificate predicates) — the observer calls this *after* the
    /// content checks passed, with `env` already trusted syntactically.
    ///
    /// # Errors
    ///
    /// An out-of-order receipt convicts the peer (phase becomes `Faulty`)
    /// and returns the classification.
    pub fn on_message(&mut self, env: &Envelope) -> Result<Requirement, CertifyError> {
        // Note: `env.sender()` normally equals `self.peer`; when the
        // signature module is ablated (experiment E8) the observer routes
        // by the *claimed* sender, so an impersonator's messages land here
        // and frame the victim — which is the point of that experiment.
        self.step(env.kind(), env.round())
    }

    /// The bare transition function: classifies the receipt of a message
    /// of `kind` carrying round `r` and advances the phase.
    ///
    /// [`PeerAutomaton::on_message`] is a thin wrapper over this; the
    /// symbol-level entry point exists so `ftm-verify` can model-check the
    /// automaton over its whole alphabet without fabricating signed
    /// envelopes.
    ///
    /// # Errors
    ///
    /// Same contract as [`PeerAutomaton::on_message`].
    pub fn step(&mut self, kind: MessageKind, r: Round) -> Result<Requirement, CertifyError> {
        match self.phase {
            PeerPhase::Faulty => Err(CertifyError::new(
                self.peer,
                FaultClass::OutOfOrder,
                "message from an already convicted peer",
            )),
            PeerPhase::Final => self.fault("message after DECIDE (halted process spoke)"),
            PeerPhase::Start => match kind {
                MessageKind::Init => {
                    self.phase = PeerPhase::Q0;
                    self.round = 1;
                    Ok(Requirement::Standard)
                }
                // A process that decides before sending INIT never ran the
                // vector-certification phase — but relayed DECIDEs are
                // possible only after INIT, since the protocol starts with
                // the INIT broadcast. Anything but INIT first is faulty.
                _ => self.fault("first message is not INIT"),
            },
            PeerPhase::Q0 | PeerPhase::Q1 | PeerPhase::Q2 => {
                if kind == MessageKind::Decide {
                    // DECIDE is enabled from any in-round phase (a process
                    // may relay a DECIDE it received at any time).
                    self.phase = PeerPhase::Final;
                    return Ok(Requirement::Standard);
                }
                if kind == MessageKind::Init {
                    return self.fault("duplicate INIT");
                }
                if r < self.round {
                    return self.fault("message for a past round (replay or duplication)");
                }
                if r > self.round {
                    // FIFO: the peer left its round without our seeing the
                    // mandatory NEXT unless it was in q2; and correct
                    // processes advance one round at a time.
                    if self.phase != PeerPhase::Q2 {
                        return self.fault("left round without sending NEXT");
                    }
                    if r != self.round + 1 {
                        return self.fault("skipped a round");
                    }
                    // Round advance: re-enter q0 and re-dispatch.
                    self.round = r;
                    self.phase = PeerPhase::Q0;
                    return match kind {
                        MessageKind::Current => {
                            self.phase = PeerPhase::Q1;
                            Ok(Requirement::RoundEntry(r))
                        }
                        MessageKind::Next => {
                            self.phase = PeerPhase::Q2;
                            Ok(Requirement::RoundEntry(r))
                        }
                        _ => unreachable!("INIT/DECIDE handled above"),
                    };
                }
                // Same round.
                match (self.phase, kind) {
                    (PeerPhase::Q0, MessageKind::Current) => {
                        self.phase = PeerPhase::Q1;
                        Ok(Requirement::Standard)
                    }
                    (PeerPhase::Q0, MessageKind::Next) => {
                        self.phase = PeerPhase::Q2;
                        Ok(Requirement::Standard)
                    }
                    (PeerPhase::Q1, MessageKind::Next) => {
                        self.phase = PeerPhase::Q2;
                        Ok(Requirement::Standard)
                    }
                    (PeerPhase::Q1, MessageKind::Current) => {
                        self.fault("duplicate CURRENT in one round")
                    }
                    (PeerPhase::Q2, MessageKind::Next) => self.fault("duplicate NEXT in one round"),
                    (PeerPhase::Q2, MessageKind::Current) => {
                        self.fault("CURRENT after NEXT in one round")
                    }
                    _ => unreachable!("all kinds covered"),
                }
            }
        }
    }

    /// Convicts the peer from outside the timing rules (the observer calls
    /// this when a content/certificate predicate failed).
    pub fn convict(&mut self) {
        self.phase = PeerPhase::Faulty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_certify::{Certificate, Core, ValueVector};
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;

    fn keys() -> Vec<KeyPair> {
        let mut rng = ftm_crypto::rng_from_seed(71);
        KeyDirectory::generate(&mut rng, 4, 128).1
    }

    fn env(keys: &[KeyPair], sender: u32, core: Core) -> Envelope {
        Envelope::make(
            ProcessId(sender),
            core,
            Certificate::new(),
            &keys[sender as usize],
        )
    }

    fn vect() -> ValueVector {
        ValueVector::empty(4)
    }

    #[test]
    fn honest_round_sequence_is_accepted() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        assert!(a.on_message(&env(&ks, 1, Core::Init { value: 1 })).is_ok());
        assert_eq!(a.phase(), PeerPhase::Q0);
        assert!(a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 1,
                    vector: vect()
                }
            ))
            .is_ok());
        assert_eq!(a.phase(), PeerPhase::Q1);
        assert!(a.on_message(&env(&ks, 1, Core::Next { round: 1 })).is_ok());
        assert_eq!(a.phase(), PeerPhase::Q2);
        // Round advance with a CURRENT(2) asks for round-entry evidence.
        let req = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 2,
                    vector: vect(),
                },
            ))
            .unwrap();
        assert_eq!(req, Requirement::RoundEntry(2));
        assert_eq!(a.phase(), PeerPhase::Q1);
        assert_eq!(a.round(), 2);
        // Decide from q1.
        assert!(a
            .on_message(&env(
                &ks,
                1,
                Core::Decide {
                    round: 2,
                    vector: vect()
                }
            ))
            .is_ok());
        assert_eq!(a.phase(), PeerPhase::Final);
    }

    #[test]
    fn skipping_the_mandatory_next_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(
            &ks,
            1,
            Core::Current {
                round: 1,
                vector: vect(),
            },
        ))
        .unwrap();
        // Jumps to round 2 from q1 — never sent NEXT(1).
        let err = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 2,
                    vector: vect(),
                },
            ))
            .unwrap_err();
        assert!(err.reason.contains("without sending NEXT"));
        assert!(a.is_faulty());
    }

    #[test]
    fn duplicate_votes_are_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(
            &ks,
            1,
            Core::Current {
                round: 1,
                vector: vect(),
            },
        ))
        .unwrap();
        let err = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 1,
                    vector: vect(),
                },
            ))
            .unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(err.reason.contains("duplicate CURRENT"));
    }

    #[test]
    fn duplicate_next_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        assert!(a.on_message(&env(&ks, 1, Core::Next { round: 1 })).is_err());
        assert!(a.is_faulty());
    }

    #[test]
    fn past_round_replay_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 2 })).unwrap();
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 1 }))
            .unwrap_err();
        assert!(err.reason.contains("past round"));
    }

    #[test]
    fn round_skip_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 3 }))
            .unwrap_err();
        assert!(err.reason.contains("skipped a round"));
    }

    #[test]
    fn missing_init_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 1 }))
            .unwrap_err();
        assert!(err.reason.contains("first message is not INIT"));
    }

    #[test]
    fn duplicate_init_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        assert!(a.on_message(&env(&ks, 1, Core::Init { value: 1 })).is_err());
    }

    #[test]
    fn speaking_after_decide_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(
            &ks,
            1,
            Core::Decide {
                round: 1,
                vector: vect(),
            },
        ))
        .unwrap();
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 1 }))
            .unwrap_err();
        assert!(err.reason.contains("after DECIDE"));
    }

    #[test]
    fn current_after_next_same_round_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        let err = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 1,
                    vector: vect(),
                },
            ))
            .unwrap_err();
        assert!(err.reason.contains("CURRENT after NEXT"));
    }

    #[test]
    fn decide_received_in_final_is_caught() {
        // A second DECIDE after the first: the halted process spoke again.
        // Regression guard — DECIDE is enabled from every in-round phase,
        // so it is easy to accidentally enable it from Final too.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Final, 2);
        let err = a.step(MessageKind::Decide, 2).unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(err.reason.contains("after DECIDE"));
        assert!(a.is_faulty());
    }

    #[test]
    fn round_jump_at_q2_re_dispatches_next_into_q2() {
        // At q2(r), NEXT(r+1) is the round-advance path: the message must
        // be re-dispatched into the NEW round (landing in q2 again) and the
        // observer must be asked for round-entry evidence — not Standard.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Q2, 3);
        let req = a.step(MessageKind::Next, 4).unwrap();
        assert_eq!(req, Requirement::RoundEntry(4));
        assert_eq!(a.phase(), PeerPhase::Q2);
        assert_eq!(a.round(), 4);
        // The advanced automaton keeps advancing: NEXT(5) is legal again.
        assert_eq!(
            a.step(MessageKind::Next, 5).unwrap(),
            Requirement::RoundEntry(5)
        );
        assert_eq!(a.round(), 5);
    }

    #[test]
    fn duplicate_current_in_q1_is_caught_at_the_step_level() {
        // Same divergence as `duplicate_votes_are_caught`, but pinned at
        // the bare transition function: q1(r) + CURRENT(r) must convict
        // regardless of envelope plumbing.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Q1, 2);
        let err = a.step(MessageKind::Current, 2).unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(err.reason.contains("duplicate CURRENT"));
        assert!(a.is_faulty());
    }

    #[test]
    fn convicted_peer_stays_convicted() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.convict();
        assert!(a.is_faulty());
        assert!(a.on_message(&env(&ks, 1, Core::Init { value: 1 })).is_err());
    }
}
