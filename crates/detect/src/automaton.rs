//! The per-peer observer automaton (paper Fig. 4), table-driven.
//!
//! `SM_p(q)` tracks what a correct `q` may send next over the FIFO channel
//! `q → p`. The *shape* of the automaton is per-protocol data — a
//! [`ProtocolTable`] names the opening kind, the ordered per-round send
//! slots (each mandatory or optional) and the terminal kind — while the
//! transition logic is generic: slots fire in order at most once per
//! round, a round may only be left once every remaining mandatory slot was
//! sent, and rounds advance one at a time.
//!
//! For Hurfin–Raynal (slots `[CURRENT?, NEXT!]`) this instantiates to the
//! paper's Fig. 4:
//!
//! ```text
//! start ──INIT──▶ q0(r=1)
//! q0 ──CURRENT(r)──▶ q1      q0 ──NEXT(r)──▶ q2
//! q1 ──NEXT(r)──▶ q2         q2 ──msg(r+1)──▶ q0(r+1) (re-dispatched)
//! any ──DECIDE──▶ final
//! anything else ──▶ faulty   (terminal)
//! ```
//!
//! For Chandra–Toueg (slots `[ESTIMATE!, PROPOSE?, ACK?, NACK?]`) the same
//! logic yields a five-position round automaton in which a PROPOSE before
//! the sender's own ESTIMATE, or a round entered without one, convicts.
//!
//! The automaton checks *timing* (enabled receipt events); content and
//! certificate checks (`PF` predicates) are the
//! [`ftm_certify::CertChecker`]'s and [`crate::predicates`]'s job and are
//! run by the [`crate::Observer`] before the transition is applied.

use std::fmt;

use ftm_certify::{CertifyError, Envelope, FaultClass, MessageKind, ProtocolId, Round};
use ftm_sim::ProcessId;

/// The per-protocol shape of the observer automaton: which kind opens a
/// peer's lifetime, which kinds it may send per round and in what order
/// (each at most once; `true` marks a mandatory slot), and which kind
/// terminates it.
///
/// The table is static data maintained next to the automaton, mirrored by
/// `ftm_core::spec::ProtocolSpec`'s `round_slots`; `ftm-verify` diffs the
/// two artifacts edge-by-edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolTable {
    /// The protocol this table describes.
    pub protocol: ProtocolId,
    /// The kind that opens a peer's lifetime (sent exactly once).
    pub opening: MessageKind,
    /// Ordered per-round send slots as `(kind, mandatory)`.
    pub slots: &'static [(MessageKind, bool)],
    /// The kind that terminates a peer's lifetime (relayable any time).
    pub terminal: MessageKind,
}

static HR_TABLE: ProtocolTable = ProtocolTable {
    protocol: ProtocolId::HurfinRaynal,
    opening: MessageKind::Init,
    slots: &[(MessageKind::Current, false), (MessageKind::Next, true)],
    terminal: MessageKind::Decide,
};

static CT_TABLE: ProtocolTable = ProtocolTable {
    protocol: ProtocolId::ChandraToueg,
    opening: MessageKind::Init,
    slots: &[
        (MessageKind::Estimate, true),
        (MessageKind::Propose, false),
        (MessageKind::Ack, false),
        (MessageKind::Nack, false),
    ],
    terminal: MessageKind::Decide,
};

impl ProtocolTable {
    /// The transformed Hurfin–Raynal table (paper Fig. 4).
    pub fn hurfin_raynal() -> &'static ProtocolTable {
        &HR_TABLE
    }

    /// The transformed Chandra–Toueg table (coordinator-echo rounds).
    pub fn chandra_toueg() -> &'static ProtocolTable {
        &CT_TABLE
    }

    /// The table of the given protocol.
    pub fn for_protocol(protocol: ProtocolId) -> &'static ProtocolTable {
        match protocol {
            ProtocolId::HurfinRaynal => &HR_TABLE,
            ProtocolId::ChandraToueg => &CT_TABLE,
        }
    }

    /// The slot index of `kind`, or `None` for non-slot kinds.
    pub fn slot_of(&self, kind: MessageKind) -> Option<usize> {
        self.slots.iter().position(|(k, _)| *k == kind)
    }

    /// `true` when a correct peer may leave the round from slot progress
    /// `pos`: every remaining slot is optional.
    pub fn advance_ready(&self, pos: usize) -> bool {
        self.slots[pos.min(self.slots.len())..]
            .iter()
            .all(|(_, mandatory)| !mandatory)
    }

    /// `true` when a vote may land on slot `j` directly from progress
    /// `from`: every slot in between is optional.
    pub fn entry_legal(&self, from: usize, j: usize) -> bool {
        self.slots[from..j].iter().all(|(_, mandatory)| !mandatory)
    }

    /// The first mandatory slot kind at or after `pos` (what a peer still
    /// owes the round before leaving it).
    pub fn first_mandatory_from(&self, pos: usize) -> Option<MessageKind> {
        self.slots[pos.min(self.slots.len())..]
            .iter()
            .find(|(_, mandatory)| *mandatory)
            .map(|(k, _)| *k)
    }
}

/// Observer-side phases of a peer, mirroring the protocol automaton's
/// states plus the observer-specific `start`, `final` and `faulty`.
///
/// `InRound(i)` means the peer is believed in-round with the first `i`
/// send slots passed; the paper's `q0`/`q1`/`q2` for Hurfin–Raynal are
/// [`PeerPhase::Q0`]/[`PeerPhase::Q1`]/[`PeerPhase::Q2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeerPhase {
    /// Nothing received yet; the opening kind is expected.
    Start,
    /// In a round with the first `i` send slots passed.
    InRound(usize),
    /// Decided (the terminal kind seen); nothing further may arrive.
    Final,
    /// Convicted: a fault was observed. Terminal.
    Faulty,
}

impl PeerPhase {
    /// The paper's `q0`: in-round, no vote seen yet.
    pub const Q0: PeerPhase = PeerPhase::InRound(0);
    /// The paper's `q1` (HR): voted CURRENT in this round.
    pub const Q1: PeerPhase = PeerPhase::InRound(1);
    /// The paper's `q2` (HR): voted NEXT in this round.
    pub const Q2: PeerPhase = PeerPhase::InRound(2);
}

impl fmt::Display for PeerPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerPhase::Start => f.write_str("start"),
            PeerPhase::InRound(i) => write!(f, "q{i}"),
            PeerPhase::Final => f.write_str("final"),
            PeerPhase::Faulty => f.write_str("faulty"),
        }
    }
}

/// What the automaton asks the observer to verify before committing a
/// transition (the `PF` predicate family to evaluate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requirement {
    /// Message is in-pattern for the current round; the standard
    /// per-kind certificate check suffices.
    Standard,
    /// Message opens round `new_round` for this peer: additionally check
    /// round-entry evidence ([`crate::predicates::round_entry_justified`]).
    RoundEntry(Round),
}

/// "duplicate {kind}" / "duplicate {kind} in one round" per kind, kept as
/// static strings so convictions stay allocation-free.
fn duplicate_reason(kind: MessageKind) -> &'static str {
    match kind {
        MessageKind::Init => "duplicate INIT",
        MessageKind::Current => "duplicate CURRENT in one round",
        MessageKind::Next => "duplicate NEXT in one round",
        MessageKind::Decide => "duplicate DECIDE in one round",
        MessageKind::Estimate => "duplicate ESTIMATE in one round",
        MessageKind::Propose => "duplicate PROPOSE in one round",
        MessageKind::Ack => "duplicate ACK in one round",
        MessageKind::Nack => "duplicate NACK in one round",
        // Unreachable in practice: checkpoints bypass the timing automaton
        // (they are slot-compaction metadata, not round votes).
        MessageKind::Checkpoint => "duplicate CHECKPOINT",
    }
}

/// "{kind} after {last}" for the realizable backwards-slot pairs.
fn order_reason(kind: MessageKind, last: MessageKind) -> &'static str {
    use MessageKind::{Ack, Current, Estimate, Nack, Next, Propose};
    match (kind, last) {
        (Current, Next) => "CURRENT after NEXT in one round",
        (Estimate, Propose) => "ESTIMATE after PROPOSE in one round",
        (Estimate, Ack) => "ESTIMATE after ACK in one round",
        (Estimate, Nack) => "ESTIMATE after NACK in one round",
        (Propose, Ack) => "PROPOSE after ACK in one round",
        (Propose, Nack) => "PROPOSE after NACK in one round",
        (Ack, Nack) => "ACK after NACK in one round",
        _ => "vote out of slot order in one round",
    }
}

/// "left round without sending {kind}" for the mandatory slot kinds.
fn left_round_reason(owed: MessageKind) -> &'static str {
    match owed {
        MessageKind::Next => "left round without sending NEXT",
        MessageKind::Estimate => "left round without sending ESTIMATE",
        _ => "left round without a mandatory vote",
    }
}

/// Same-round vote landing past an unsent mandatory slot.
fn skip_mandatory_reason(owed: MessageKind) -> &'static str {
    match owed {
        MessageKind::Estimate => "vote before the mandatory ESTIMATE in one round",
        MessageKind::Next => "vote before the mandatory NEXT in one round",
        _ => "vote skips a mandatory slot in one round",
    }
}

/// New round opened with a vote past an unsent mandatory slot.
fn entry_past_mandatory_reason(owed: MessageKind) -> &'static str {
    match owed {
        MessageKind::Estimate => "round entered without its mandatory ESTIMATE",
        MessageKind::Next => "round entered without its mandatory NEXT",
        _ => "round entered past a mandatory slot",
    }
}

/// The timing automaton for one peer.
///
/// # Example
///
/// ```
/// use ftm_detect::{PeerAutomaton, PeerPhase};
/// use ftm_sim::ProcessId;
/// let a = PeerAutomaton::new(ProcessId(1));
/// assert_eq!(a.phase(), PeerPhase::Start);
/// assert_eq!(a.round(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PeerAutomaton {
    peer: ProcessId,
    phase: PeerPhase,
    round: Round,
    table: &'static ProtocolTable,
}

impl PeerAutomaton {
    /// Creates the automaton in `start`, before any receipt, with the
    /// Hurfin–Raynal table (see [`PeerAutomaton::new_for`]).
    pub fn new(peer: ProcessId) -> Self {
        PeerAutomaton::new_for(ProtocolTable::hurfin_raynal(), peer)
    }

    /// Creates the automaton in `start` with an explicit protocol table.
    pub fn new_for(table: &'static ProtocolTable, peer: ProcessId) -> Self {
        PeerAutomaton {
            peer,
            phase: PeerPhase::Start,
            round: 0,
            table,
        }
    }

    /// Creates a Hurfin–Raynal automaton in an arbitrary `(phase, round)`
    /// state.
    ///
    /// This exists for *static analysis*: `ftm-verify` enumerates the
    /// transition function state by state, which requires placing the
    /// automaton in each state directly instead of replaying a history
    /// that reaches it. Protocol code should use [`PeerAutomaton::new`].
    pub fn at(peer: ProcessId, phase: PeerPhase, round: Round) -> Self {
        PeerAutomaton::at_for(ProtocolTable::hurfin_raynal(), peer, phase, round)
    }

    /// [`PeerAutomaton::at`] with an explicit protocol table.
    pub fn at_for(
        table: &'static ProtocolTable,
        peer: ProcessId,
        phase: PeerPhase,
        round: Round,
    ) -> Self {
        PeerAutomaton {
            peer,
            phase,
            round,
            table,
        }
    }

    /// The observed peer.
    pub fn peer(&self) -> ProcessId {
        self.peer
    }

    /// The protocol table driving this automaton.
    pub fn table(&self) -> &'static ProtocolTable {
        self.table
    }

    /// Current phase.
    pub fn phase(&self) -> PeerPhase {
        self.phase
    }

    /// The round the peer is believed to be in (0 until its opening
    /// message arrives).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Returns `true` once the peer is convicted.
    pub fn is_faulty(&self) -> bool {
        self.phase == PeerPhase::Faulty
    }

    fn fault(&mut self, reason: &'static str) -> Result<Requirement, CertifyError> {
        self.phase = PeerPhase::Faulty;
        Err(CertifyError::new(self.peer, FaultClass::OutOfOrder, reason))
    }

    /// Checks whether `env`'s receipt event is enabled, and advances the
    /// phase if so. Returns the extra verification the observer must run
    /// (certificate predicates) — the observer calls this *after* the
    /// content checks passed, with `env` already trusted syntactically.
    ///
    /// # Errors
    ///
    /// An out-of-order receipt convicts the peer (phase becomes `Faulty`)
    /// and returns the classification.
    pub fn on_message(&mut self, env: &Envelope) -> Result<Requirement, CertifyError> {
        // Note: `env.sender()` normally equals `self.peer`; when the
        // signature module is ablated (experiment E8) the observer routes
        // by the *claimed* sender, so an impersonator's messages land here
        // and frame the victim — which is the point of that experiment.
        self.step(env.kind(), env.round())
    }

    /// The bare transition function: classifies the receipt of a message
    /// of `kind` carrying round `r` and advances the phase.
    ///
    /// [`PeerAutomaton::on_message`] is a thin wrapper over this; the
    /// symbol-level entry point exists so `ftm-verify` can model-check the
    /// automaton over its whole alphabet without fabricating signed
    /// envelopes.
    ///
    /// # Errors
    ///
    /// Same contract as [`PeerAutomaton::on_message`].
    pub fn step(&mut self, kind: MessageKind, r: Round) -> Result<Requirement, CertifyError> {
        match self.phase {
            PeerPhase::Faulty => Err(CertifyError::new(
                self.peer,
                FaultClass::OutOfOrder,
                "message from an already convicted peer",
            )),
            PeerPhase::Final => self.fault("message after DECIDE (halted process spoke)"),
            PeerPhase::Start => {
                if kind == self.table.opening {
                    self.phase = PeerPhase::InRound(0);
                    self.round = 1;
                    Ok(Requirement::Standard)
                } else {
                    // A process that decides before sending the opening
                    // never ran the vector-certification phase — relayed
                    // DECIDEs are possible only after INIT, since the
                    // protocol starts with the INIT broadcast.
                    self.fault("first message is not INIT")
                }
            }
            PeerPhase::InRound(pos) => {
                if kind == self.table.terminal {
                    // The terminal kind is enabled from any in-round phase
                    // (a process may relay a DECIDE it received any time).
                    self.phase = PeerPhase::Final;
                    return Ok(Requirement::Standard);
                }
                if kind == self.table.opening {
                    return self.fault(duplicate_reason(self.table.opening));
                }
                let Some(j) = self.table.slot_of(kind) else {
                    // A kind the protocol's program text never produces.
                    return self.fault("message kind outside the protocol's alphabet");
                };
                if r < self.round {
                    return self.fault("message for a past round (replay or duplication)");
                }
                if r > self.round {
                    // FIFO: the peer left its round without our seeing
                    // every mandatory slot, or skipped ahead — correct
                    // processes advance one round at a time.
                    if !self.table.advance_ready(pos) {
                        // Not advance-ready implies an owed mandatory slot;
                        // if the table disagrees, the round exit itself is
                        // the violation.
                        let Some(owed) = self.table.first_mandatory_from(pos) else {
                            return self.fault("left the round against the slot table");
                        };
                        return self.fault(left_round_reason(owed));
                    }
                    if r != self.round + 1 {
                        return self.fault("skipped a round");
                    }
                    if !self.table.entry_legal(0, j) {
                        let Some(owed) = self.table.first_mandatory_from(0) else {
                            return self.fault("entered the round against the slot table");
                        };
                        return self.fault(entry_past_mandatory_reason(owed));
                    }
                    // Round advance: re-enter the new round at slot j.
                    self.round = r;
                    self.phase = PeerPhase::InRound(j + 1);
                    return Ok(Requirement::RoundEntry(r));
                }
                // Same round: slots fire in order, at most once.
                if j < pos {
                    if j + 1 == pos {
                        return self.fault(duplicate_reason(kind));
                    }
                    let (last, _) = self.table.slots[pos - 1];
                    return self.fault(order_reason(kind, last));
                }
                if !self.table.entry_legal(pos, j) {
                    let Some(owed) = self.table.first_mandatory_from(pos) else {
                        return self.fault("skipped ahead against the slot table");
                    };
                    return self.fault(skip_mandatory_reason(owed));
                }
                self.phase = PeerPhase::InRound(j + 1);
                Ok(Requirement::Standard)
            }
        }
    }

    /// Convicts the peer from outside the timing rules (the observer calls
    /// this when a content/certificate predicate failed).
    pub fn convict(&mut self) {
        self.phase = PeerPhase::Faulty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_certify::{Certificate, Core, ValueVector};
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;

    fn keys() -> Vec<KeyPair> {
        let mut rng = ftm_crypto::rng_from_seed(71);
        KeyDirectory::generate(&mut rng, 4, 128).1
    }

    fn env(keys: &[KeyPair], sender: u32, core: Core) -> Envelope {
        Envelope::make(
            ProcessId(sender),
            core,
            Certificate::new(),
            &keys[sender as usize],
        )
    }

    fn vect() -> ValueVector {
        ValueVector::empty(4)
    }

    #[test]
    fn honest_round_sequence_is_accepted() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        assert!(a.on_message(&env(&ks, 1, Core::Init { value: 1 })).is_ok());
        assert_eq!(a.phase(), PeerPhase::Q0);
        assert!(a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 1,
                    vector: vect()
                }
            ))
            .is_ok());
        assert_eq!(a.phase(), PeerPhase::Q1);
        assert!(a.on_message(&env(&ks, 1, Core::Next { round: 1 })).is_ok());
        assert_eq!(a.phase(), PeerPhase::Q2);
        // Round advance with a CURRENT(2) asks for round-entry evidence.
        let req = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 2,
                    vector: vect(),
                },
            ))
            .unwrap();
        assert_eq!(req, Requirement::RoundEntry(2));
        assert_eq!(a.phase(), PeerPhase::Q1);
        assert_eq!(a.round(), 2);
        // Decide from q1.
        assert!(a
            .on_message(&env(
                &ks,
                1,
                Core::Decide {
                    round: 2,
                    vector: vect()
                }
            ))
            .is_ok());
        assert_eq!(a.phase(), PeerPhase::Final);
    }

    #[test]
    fn skipping_the_mandatory_next_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(
            &ks,
            1,
            Core::Current {
                round: 1,
                vector: vect(),
            },
        ))
        .unwrap();
        // Jumps to round 2 from q1 — never sent NEXT(1).
        let err = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 2,
                    vector: vect(),
                },
            ))
            .unwrap_err();
        assert!(err.reason.contains("without sending NEXT"));
        assert!(a.is_faulty());
    }

    #[test]
    fn duplicate_votes_are_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(
            &ks,
            1,
            Core::Current {
                round: 1,
                vector: vect(),
            },
        ))
        .unwrap();
        let err = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 1,
                    vector: vect(),
                },
            ))
            .unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(err.reason.contains("duplicate CURRENT"));
    }

    #[test]
    fn duplicate_next_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        assert!(a.on_message(&env(&ks, 1, Core::Next { round: 1 })).is_err());
        assert!(a.is_faulty());
    }

    #[test]
    fn past_round_replay_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 2 })).unwrap();
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 1 }))
            .unwrap_err();
        assert!(err.reason.contains("past round"));
    }

    #[test]
    fn round_skip_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 3 }))
            .unwrap_err();
        assert!(err.reason.contains("skipped a round"));
    }

    #[test]
    fn missing_init_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 1 }))
            .unwrap_err();
        assert!(err.reason.contains("first message is not INIT"));
    }

    #[test]
    fn duplicate_init_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        assert!(a.on_message(&env(&ks, 1, Core::Init { value: 1 })).is_err());
    }

    #[test]
    fn speaking_after_decide_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(
            &ks,
            1,
            Core::Decide {
                round: 1,
                vector: vect(),
            },
        ))
        .unwrap();
        let err = a
            .on_message(&env(&ks, 1, Core::Next { round: 1 }))
            .unwrap_err();
        assert!(err.reason.contains("after DECIDE"));
    }

    #[test]
    fn current_after_next_same_round_is_caught() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.on_message(&env(&ks, 1, Core::Init { value: 1 })).unwrap();
        a.on_message(&env(&ks, 1, Core::Next { round: 1 })).unwrap();
        let err = a
            .on_message(&env(
                &ks,
                1,
                Core::Current {
                    round: 1,
                    vector: vect(),
                },
            ))
            .unwrap_err();
        assert!(err.reason.contains("CURRENT after NEXT"));
    }

    #[test]
    fn decide_received_in_final_is_caught() {
        // A second DECIDE after the first: the halted process spoke again.
        // Regression guard — DECIDE is enabled from every in-round phase,
        // so it is easy to accidentally enable it from Final too.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Final, 2);
        let err = a.step(MessageKind::Decide, 2).unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(err.reason.contains("after DECIDE"));
        assert!(a.is_faulty());
    }

    #[test]
    fn round_jump_at_q2_re_dispatches_next_into_q2() {
        // At q2(r), NEXT(r+1) is the round-advance path: the message must
        // be re-dispatched into the NEW round (landing in q2 again) and the
        // observer must be asked for round-entry evidence — not Standard.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Q2, 3);
        let req = a.step(MessageKind::Next, 4).unwrap();
        assert_eq!(req, Requirement::RoundEntry(4));
        assert_eq!(a.phase(), PeerPhase::Q2);
        assert_eq!(a.round(), 4);
        // The advanced automaton keeps advancing: NEXT(5) is legal again.
        assert_eq!(
            a.step(MessageKind::Next, 5).unwrap(),
            Requirement::RoundEntry(5)
        );
        assert_eq!(a.round(), 5);
    }

    #[test]
    fn duplicate_current_in_q1_is_caught_at_the_step_level() {
        // Same divergence as `duplicate_votes_are_caught`, but pinned at
        // the bare transition function: q1(r) + CURRENT(r) must convict
        // regardless of envelope plumbing.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Q1, 2);
        let err = a.step(MessageKind::Current, 2).unwrap_err();
        assert_eq!(err.class, FaultClass::OutOfOrder);
        assert!(err.reason.contains("duplicate CURRENT"));
        assert!(a.is_faulty());
    }

    #[test]
    fn convicted_peer_stays_convicted() {
        let ks = keys();
        let mut a = PeerAutomaton::new(ProcessId(1));
        a.convict();
        assert!(a.is_faulty());
        assert!(a.on_message(&env(&ks, 1, Core::Init { value: 1 })).is_err());
    }

    #[test]
    fn foreign_kind_convicts() {
        // An HR observer receiving a CT vote: the program text of HR never
        // produces an ESTIMATE, so the sender is convicted on timing.
        let mut a = PeerAutomaton::at(ProcessId(1), PeerPhase::Q0, 1);
        let err = a.step(MessageKind::Estimate, 1).unwrap_err();
        assert!(err.reason.contains("outside the protocol's alphabet"));
        assert!(a.is_faulty());
    }

    fn ct() -> &'static ProtocolTable {
        ProtocolTable::chandra_toueg()
    }

    #[test]
    fn ct_honest_coordinator_round_is_accepted() {
        // Coordinator: ESTIMATE, PROPOSE, ACK, then advance into round 2.
        let mut a = PeerAutomaton::new_for(ct(), ProcessId(0));
        assert!(a.step(MessageKind::Init, 0).is_ok());
        assert_eq!(a.phase(), PeerPhase::InRound(0));
        assert_eq!(a.round(), 1);
        assert!(a.step(MessageKind::Estimate, 1).is_ok());
        assert_eq!(a.phase(), PeerPhase::InRound(1));
        assert!(a.step(MessageKind::Propose, 1).is_ok());
        assert_eq!(a.phase(), PeerPhase::InRound(2));
        assert!(a.step(MessageKind::Ack, 1).is_ok());
        assert_eq!(a.phase(), PeerPhase::InRound(3));
        let req = a.step(MessageKind::Estimate, 2).unwrap();
        assert_eq!(req, Requirement::RoundEntry(2));
        assert_eq!(a.phase(), PeerPhase::InRound(1));
        assert_eq!(a.round(), 2);
        assert!(a.step(MessageKind::Decide, 2).is_ok());
        assert_eq!(a.phase(), PeerPhase::Final);
    }

    #[test]
    fn ct_non_coordinator_skips_propose() {
        // A replica: ESTIMATE then ACK (slot 2) directly — PROPOSE is an
        // optional slot, so skipping it is legal.
        let mut a = PeerAutomaton::at_for(ct(), ProcessId(1), PeerPhase::InRound(0), 1);
        assert!(a.step(MessageKind::Estimate, 1).is_ok());
        assert!(a.step(MessageKind::Ack, 1).is_ok());
        assert_eq!(a.phase(), PeerPhase::InRound(3));
    }

    #[test]
    fn ct_propose_before_estimate_convicts() {
        // The coordinator-echo discipline: even the coordinator opens with
        // its own ESTIMATE; a PROPOSE first skips the mandatory slot.
        let mut a = PeerAutomaton::at_for(ct(), ProcessId(0), PeerPhase::InRound(0), 1);
        let err = a.step(MessageKind::Propose, 1).unwrap_err();
        assert!(err.reason.contains("mandatory ESTIMATE"), "{}", err.reason);
        assert!(a.is_faulty());
    }

    #[test]
    fn ct_ack_after_nack_convicts() {
        let mut a = PeerAutomaton::at_for(ct(), ProcessId(1), PeerPhase::InRound(0), 1);
        a.step(MessageKind::Estimate, 1).unwrap();
        a.step(MessageKind::Nack, 1).unwrap();
        assert_eq!(a.phase(), PeerPhase::InRound(4));
        let err = a.step(MessageKind::Ack, 1).unwrap_err();
        assert!(err.reason.contains("ACK after NACK"), "{}", err.reason);
    }

    #[test]
    fn ct_round_left_without_estimate_convicts() {
        // A peer in q0 of round 1 jumping to round 2 never sent its
        // mandatory ESTIMATE(1).
        let mut a = PeerAutomaton::at_for(ct(), ProcessId(1), PeerPhase::InRound(0), 1);
        let err = a.step(MessageKind::Estimate, 2).unwrap_err();
        assert!(
            err.reason.contains("without sending ESTIMATE"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn ct_round_entered_past_estimate_convicts() {
        // Advance-ready in round 1, but the first message of round 2 is an
        // ACK — the peer's own ESTIMATE(2) must come first (FIFO).
        let mut a = PeerAutomaton::at_for(ct(), ProcessId(1), PeerPhase::InRound(4), 1);
        let err = a.step(MessageKind::Ack, 2).unwrap_err();
        assert!(
            err.reason.contains("without its mandatory ESTIMATE"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn ct_duplicate_estimate_convicts() {
        let mut a = PeerAutomaton::at_for(ct(), ProcessId(1), PeerPhase::InRound(0), 1);
        a.step(MessageKind::Estimate, 1).unwrap();
        let err = a.step(MessageKind::Estimate, 1).unwrap_err();
        assert!(err.reason.contains("duplicate ESTIMATE"), "{}", err.reason);
    }

    #[test]
    fn table_helpers_expose_slot_structure() {
        let t = ProtocolTable::chandra_toueg();
        assert_eq!(t.slot_of(MessageKind::Estimate), Some(0));
        assert_eq!(t.slot_of(MessageKind::Nack), Some(3));
        assert_eq!(t.slot_of(MessageKind::Current), None);
        assert!(!t.advance_ready(0));
        assert!(t.advance_ready(1));
        assert!(t.entry_legal(1, 3));
        assert!(!t.entry_legal(0, 1));
        assert_eq!(t.first_mandatory_from(0), Some(MessageKind::Estimate));
        assert_eq!(t.first_mandatory_from(1), None);
        assert_eq!(
            ProtocolTable::for_protocol(ProtocolId::HurfinRaynal)
                .slots
                .len(),
            2
        );
    }
}
