//! The `PF_{a,b}` predicates: per-transition certificate analysis.
//!
//! In the paper, a transition of the observer automaton from state `a` to
//! state `b` on a message of some kind is guarded by `PF_{a,b}(kind)`:
//! the message must not be an out-of-order message (checked by the
//! automaton's enabled-receipt rule) and must not be a wrong expected
//! message (checked here — syntax plus certificate well-formedness for the
//! claimed transition).

use ftm_certify::analyzer::CertChecker;
use ftm_certify::{CertifyError, Envelope, FaultClass, MessageKind, ProtocolId, Round};

/// Checks that an envelope justifies the peer *entering* `round`.
///
/// A correct process's first message of round `r > 1` can prove its round
/// entry in one of three protocol-specific ways. Under Hurfin–Raynal:
///
/// 1. a NEXT-portion of `n−F` signed `NEXT(r−1)` (it saw the previous
///    round end — coordinators must use this form, enforced separately by
///    [`CertChecker::check_current`]);
/// 2. the round-`r` coordinator's own signed `CURRENT(r)` (the coordinator
///    vouches for the round — the relayed-CURRENT case);
/// 3. a full quorum of `NEXT(r)` items (others are already leaving `r`,
///    which subsumes the evidence that `r` started).
///
/// Under Chandra–Toueg the same three shapes read: `n−F` signed
/// `ACK/NACK(r−1)`; the round-`r` coordinator's own signed `PROPOSE(r)`;
/// a full quorum of `ACK/NACK(r)`.
///
/// # Errors
///
/// Returns a [`FaultClass::BadCertificate`] error when none applies.
pub fn round_entry_justified(
    checker: &CertChecker,
    env: &Envelope,
    round: Round,
) -> Result<(), CertifyError> {
    if round <= 1 {
        return Ok(());
    }
    let coord = checker.coordinator(round);
    match checker.protocol() {
        ProtocolId::HurfinRaynal => {
            // (1) n−F NEXT(round−1).
            if checker
                .next_portion_well_formed(&env.cert, round, env.sender())
                .is_ok()
            {
                return Ok(());
            }
            // (2) the coordinator's signed CURRENT for this round.
            let coord_current = env
                .cert
                .iter_kind_round(MessageKind::Current, round)
                .any(|i| i.sender() == coord);
            if coord_current {
                return Ok(());
            }
            // (3) a NEXT(round) quorum.
            if env.cert.count(MessageKind::Next, round) >= checker.quorum() {
                return Ok(());
            }
        }
        ProtocolId::ChandraToueg => {
            // (1) n−F ACK/NACK(round−1).
            if checker
                .ct_round_entry_well_formed(&env.cert, round, env.sender())
                .is_ok()
            {
                return Ok(());
            }
            // (2) the coordinator's signed PROPOSE for this round.
            let coord_propose = env
                .cert
                .iter_kind_round(MessageKind::Propose, round)
                .any(|i| i.sender() == coord);
            if coord_propose {
                return Ok(());
            }
            // (3) an ACK/NACK(round) quorum.
            if env.cert.ct_votes(round).len() >= checker.quorum() {
                return Ok(());
            }
        }
    }
    Err(CertifyError::new(
        env.sender(),
        FaultClass::BadCertificate,
        "first message of a new round carries no round-entry evidence",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_certify::{Certificate, Core, MessageCore, SignedCore, ValueVector};
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;
    use ftm_sim::ProcessId;

    const N: usize = 4;

    fn fixture() -> (CertChecker, Vec<KeyPair>) {
        let mut rng = ftm_crypto::rng_from_seed(61);
        let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
        (CertChecker::new(N, 1, dir), keys)
    }

    fn signed(keys: &[KeyPair], sender: u32, core: Core) -> SignedCore {
        SignedCore::sign(
            MessageCore::new(ProcessId(sender), core),
            &keys[sender as usize],
        )
    }

    fn next_env(keys: &[KeyPair], sender: u32, round: Round, cert: Certificate) -> Envelope {
        Envelope::make(
            ProcessId(sender),
            Core::Next { round },
            cert,
            &keys[sender as usize],
        )
    }

    #[test]
    fn round_one_needs_nothing() {
        let (checker, keys) = fixture();
        let env = next_env(&keys, 3, 1, Certificate::new());
        assert!(round_entry_justified(&checker, &env, 1).is_ok());
    }

    #[test]
    fn next_quorum_of_previous_round_justifies() {
        let (checker, keys) = fixture();
        let cert =
            Certificate::from_items((0..3u32).map(|s| signed(&keys, s, Core::Next { round: 1 })));
        let env = next_env(&keys, 3, 2, cert);
        assert!(round_entry_justified(&checker, &env, 2).is_ok());
    }

    #[test]
    fn coordinator_voucher_justifies() {
        let (checker, keys) = fixture();
        // Round 2's coordinator is p1.
        let cert = Certificate::from_items([signed(
            &keys,
            1,
            Core::Current {
                round: 2,
                vector: ValueVector::empty(N),
            },
        )]);
        let env = next_env(&keys, 3, 2, cert);
        assert!(round_entry_justified(&checker, &env, 2).is_ok());
    }

    #[test]
    fn same_round_next_quorum_justifies() {
        let (checker, keys) = fixture();
        let cert =
            Certificate::from_items((0..3u32).map(|s| signed(&keys, s, Core::Next { round: 2 })));
        let env = next_env(&keys, 3, 2, cert);
        assert!(round_entry_justified(&checker, &env, 2).is_ok());
    }

    #[test]
    fn bare_round_jump_is_rejected() {
        let (checker, keys) = fixture();
        let env = next_env(&keys, 3, 2, Certificate::new());
        let err = round_entry_justified(&checker, &env, 2).unwrap_err();
        assert_eq!(err.class, FaultClass::BadCertificate);
        assert!(err.reason.contains("round-entry"));
    }

    fn ct_fixture() -> (CertChecker, Vec<KeyPair>) {
        let mut rng = ftm_crypto::rng_from_seed(61);
        let (dir, keys) = KeyDirectory::generate(&mut rng, N, 128);
        (
            CertChecker::new_for(ftm_certify::ProtocolId::ChandraToueg, N, 1, dir),
            keys,
        )
    }

    #[test]
    fn ct_ack_nack_quorum_of_previous_round_justifies() {
        let (checker, keys) = ct_fixture();
        let cert = Certificate::from_items([
            signed(
                &keys,
                0,
                Core::Ack {
                    round: 1,
                    vector: ValueVector::empty(N),
                },
            ),
            signed(&keys, 1, Core::Nack { round: 1 }),
            signed(&keys, 2, Core::Nack { round: 1 }),
        ]);
        let env = Envelope::make(
            ProcessId(3),
            Core::Estimate {
                round: 2,
                vector: ValueVector::empty(N),
                ts: 0,
            },
            cert,
            &keys[3],
        );
        assert!(round_entry_justified(&checker, &env, 2).is_ok());
    }

    #[test]
    fn ct_coordinator_propose_vouches() {
        let (checker, keys) = ct_fixture();
        // Round 2's coordinator is p1.
        let cert = Certificate::from_items([signed(
            &keys,
            1,
            Core::Propose {
                round: 2,
                vector: ValueVector::empty(N),
            },
        )]);
        let env = Envelope::make(
            ProcessId(3),
            Core::Ack {
                round: 2,
                vector: ValueVector::empty(N),
            },
            cert,
            &keys[3],
        );
        assert!(round_entry_justified(&checker, &env, 2).is_ok());
    }

    #[test]
    fn ct_bare_round_jump_is_rejected() {
        let (checker, keys) = ct_fixture();
        let env = Envelope::make(
            ProcessId(3),
            Core::Nack { round: 2 },
            Certificate::new(),
            &keys[3],
        );
        let err = round_entry_justified(&checker, &env, 2).unwrap_err();
        assert!(err.reason.contains("round-entry"));
    }

    #[test]
    fn non_coordinator_current_is_not_a_voucher() {
        let (checker, keys) = fixture();
        // p3's CURRENT(2) does not vouch — only the round-2 coordinator p1.
        let cert = Certificate::from_items([signed(
            &keys,
            3,
            Core::Current {
                round: 2,
                vector: ValueVector::empty(N),
            },
        )]);
        let env = next_env(&keys, 0, 2, cert);
        assert!(round_entry_justified(&checker, &env, 2).is_err());
    }
}
