//! Static mutation analysis: detection completeness of the automaton.
//!
//! Soundness ([`crate::soundness`]) proves compliant senders are never
//! convicted; this module attacks the other direction. Every compliant
//! trace up to a bound is mutated with one *single-divergence* operator —
//! kind swap, phase skip (message deletion), duplicate send, round jump,
//! send-after-decide — and the mutant is replayed against the hand-written
//! automaton. A mutant that is still spec-compliant (e.g. deleting an
//! optional CURRENT, or a swap that lands on another legal vote) is
//! *equivalent* and filtered out by the derived automaton; every genuinely
//! divergent mutant must be convicted — a surviving mutant is a concrete
//! cheating trace the detector would let through.
//!
//! The muteness caveat applies by construction: deletion mutants whose
//! remainder is a compliant prefix are equivalent here, because silence is
//! the muteness detector's domain (paper §3), not the automaton's.

use std::collections::BTreeSet;

use ftm_certify::{MessageKind, Round};
use ftm_core::spec::ProtocolSpec;
use ftm_detect::PeerAutomaton;
use ftm_sim::ProcessId;

use crate::derived::{DerivedAutomaton, Outcome};
use crate::soundness::{compliant_traces, trace_label, Trace};

/// The single-divergence mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Operator {
    /// Replace one message's kind, keeping its position and round.
    KindSwap,
    /// Delete one message (a skipped phase; FIFO hides nothing else).
    PhaseSkip,
    /// Send one message twice.
    DuplicateSend,
    /// Move one message's round number ahead.
    RoundJump,
    /// Keep talking after the terminal announcement.
    SendAfterDecide,
}

impl Operator {
    /// All operators, in report order.
    pub fn all() -> [Operator; 5] {
        [
            Operator::KindSwap,
            Operator::PhaseSkip,
            Operator::DuplicateSend,
            Operator::RoundJump,
            Operator::SendAfterDecide,
        ]
    }

    /// Stable kebab-case label.
    pub fn label(&self) -> &'static str {
        match self {
            Operator::KindSwap => "kind-swap",
            Operator::PhaseSkip => "phase-skip",
            Operator::DuplicateSend => "duplicate-send",
            Operator::RoundJump => "round-jump",
            Operator::SendAfterDecide => "send-after-decide",
        }
    }

    /// Generates every mutant this operator derives from `base`.
    fn mutants(&self, spec: &ProtocolSpec, base: &Trace, kinds: &[MessageKind]) -> Vec<Trace> {
        let opening = spec.opening;
        let mut out = Vec::new();
        match self {
            Operator::KindSwap => {
                for p in 0..base.len() {
                    let (orig, r) = base[p];
                    for &k in kinds {
                        if k == orig {
                            continue;
                        }
                        let mut t = base.clone();
                        // The opening's wire round is structurally 0;
                        // anything swapped in at position 0 claims round 1,
                        // and an opening swapped in mid-trace claims its
                        // fixed 0.
                        t[p] = (k, if Some(k) == opening { 0 } else { r.max(1) });
                        out.push(t);
                    }
                }
            }
            Operator::PhaseSkip => {
                for p in 0..base.len() {
                    let mut t = base.clone();
                    t.remove(p);
                    if !t.is_empty() {
                        out.push(t);
                    }
                }
            }
            Operator::DuplicateSend => {
                for p in 0..base.len() {
                    let mut t = base.clone();
                    t.insert(p + 1, base[p]);
                    out.push(t);
                }
            }
            Operator::RoundJump => {
                for p in 0..base.len() {
                    let (k, r) = base[p];
                    if Some(k) == opening {
                        continue; // the opening carries no round to jump
                    }
                    for jump in [1, 4] {
                        let mut t = base.clone();
                        t[p] = (k, r + jump);
                        out.push(t);
                    }
                }
            }
            Operator::SendAfterDecide => {
                if let Some(&(last, r)) = base.last() {
                    if last == spec.terminal {
                        for &k in kinds {
                            let mut t = base.clone();
                            t.push((k, if Some(k) == opening { 0 } else { r }));
                            out.push(t);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Kill statistics for one operator.
#[derive(Debug, Clone, Default)]
pub struct OperatorStats {
    /// Distinct mutants generated.
    pub generated: u64,
    /// Mutants that are still spec-compliant (no divergence to detect).
    pub equivalent: u64,
    /// Divergent mutants the automaton convicted.
    pub killed: u64,
    /// Divergent mutants that escaped conviction. Must be zero.
    pub survived: u64,
}

/// The full mutation report: the kill matrix plus surviving traces.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Round bound the base traces were enumerated to.
    pub max_rounds: u64,
    /// Base traces mutated.
    pub bases: u64,
    /// Per-operator kill statistics, in [`Operator::all`] order.
    pub operators: Vec<(Operator, OperatorStats)>,
    /// Surviving mutants, rendered (empty = 100% kill rate).
    pub survivors: Vec<String>,
}

impl MutationReport {
    /// Total divergent mutants across operators.
    pub fn divergent(&self) -> u64 {
        self.operators
            .iter()
            .map(|(_, s)| s.killed + s.survived)
            .sum()
    }

    /// `true` when every divergent mutant was killed and the run was not
    /// vacuous.
    pub fn all_killed(&self) -> bool {
        self.survivors.is_empty() && self.divergent() > 0
    }
}

/// `true` when the derived automaton accepts the whole trace — the mutant
/// is equivalent to compliant behavior and carries nothing to detect.
fn spec_compliant(auto: &DerivedAutomaton, trace: &Trace) -> bool {
    let (mut st, mut round) = auto.initial();
    for &(kind, r) in trace {
        let (outcome, next_state, next_round) = auto.classify(st, round, kind, r);
        if matches!(outcome, Outcome::Convict { .. }) {
            return false;
        }
        st = next_state;
        round = next_round;
    }
    true
}

/// `true` when the hand-written automaton of `spec`'s protocol convicts
/// somewhere in the trace.
fn hand_kills(spec: &ProtocolSpec, trace: &Trace) -> bool {
    let table = ftm_detect::ProtocolTable::for_protocol(spec.protocol);
    let mut hand = PeerAutomaton::new_for(table, ProcessId(0));
    for &(kind, r) in trace {
        if hand.step(kind, r).is_err() {
            return true;
        }
    }
    false
}

/// Runs the full mutation analysis: every operator over every compliant
/// base trace up to `max_rounds`, deduplicated per operator.
pub fn check_mutations(auto: &DerivedAutomaton, max_rounds: Round) -> MutationReport {
    let spec = auto.spec();
    let mut kinds: Vec<MessageKind> = Vec::new();
    if let Some(k) = spec.opening {
        kinds.push(k);
    }
    kinds.extend(spec.round_slots.iter().map(|s| s.kind));
    kinds.push(spec.terminal);
    let bases = compliant_traces(spec, max_rounds);
    let mut report = MutationReport {
        max_rounds,
        bases: bases.len() as u64,
        ..MutationReport::default()
    };

    for op in Operator::all() {
        let mut stats = OperatorStats::default();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for base in &bases {
            for mutant in op.mutants(spec, base, &kinds) {
                if !seen.insert(trace_label(&mutant)) {
                    continue; // the same mutant arises from several bases
                }
                stats.generated += 1;
                if spec_compliant(auto, &mutant) {
                    stats.equivalent += 1;
                } else if hand_kills(spec, &mutant) {
                    stats.killed += 1;
                } else {
                    stats.survived += 1;
                    report
                        .survivors
                        .push(format!("{}: {}", op.label(), trace_label(&mutant)));
                }
            }
        }
        report.operators.push((op, stats));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_divergent_mutant_is_killed() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed());
        let report = check_mutations(&auto, 3);
        assert!(
            report.survivors.is_empty(),
            "surviving mutants:\n{}",
            report.survivors.join("\n")
        );
        assert!(report.all_killed());
        for (op, stats) in &report.operators {
            assert!(stats.generated > 0, "{} generated no mutants", op.label());
            assert_eq!(
                stats.generated,
                stats.equivalent + stats.killed + stats.survived,
                "{} stats do not decompose",
                op.label()
            );
        }
    }

    #[test]
    fn deleting_an_optional_current_is_equivalent_not_survived() {
        // INIT C(1) N(1) with the CURRENT deleted is a legal NEXT-only
        // round: the equivalence filter must classify it, not count it as
        // a surviving mutant.
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed());
        let mutant = vec![(MessageKind::Init, 0), (MessageKind::Next, 1)];
        assert!(spec_compliant(&auto, &mutant));
        assert!(!hand_kills(auto.spec(), &mutant));
    }

    #[test]
    fn known_divergences_are_killed_directly() {
        let cases: Vec<Trace> = vec![
            // Duplicate CURRENT.
            vec![
                (MessageKind::Init, 0),
                (MessageKind::Current, 1),
                (MessageKind::Current, 1),
            ],
            // Round jump without NEXT.
            vec![
                (MessageKind::Init, 0),
                (MessageKind::Current, 1),
                (MessageKind::Current, 2),
            ],
            // Send after decide.
            vec![
                (MessageKind::Init, 0),
                (MessageKind::Decide, 1),
                (MessageKind::Next, 1),
            ],
            // Opening skipped.
            vec![(MessageKind::Current, 1)],
        ];
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed());
        for t in cases {
            assert!(!spec_compliant(&auto, &t), "{}", trace_label(&t));
            assert!(
                hand_kills(auto.spec(), &t),
                "not killed: {}",
                trace_label(&t)
            );
        }
    }

    #[test]
    fn chandra_toueg_divergent_mutants_are_killed() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed_ct());
        let report = check_mutations(&auto, 2);
        assert!(
            report.survivors.is_empty(),
            "surviving CT mutants:\n{}",
            report.survivors.join("\n")
        );
        assert!(report.all_killed());
        // A CT-specific divergence: ACK before the mandatory ESTIMATE.
        let t: Trace = vec![
            (MessageKind::Init, 0),
            (MessageKind::Ack, 1),
            (MessageKind::Estimate, 1),
        ];
        assert!(!spec_compliant(&auto, &t));
        assert!(hand_kills(auto.spec(), &t));
    }
}
