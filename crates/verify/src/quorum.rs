//! Exhaustive verification of the quorum algebra in `ftm-quorum`.
//!
//! The whole transformation leans on one arithmetic fact: two quorums of
//! size `quorum_size(n, f) = n - f` overlap in at least `n - 2f`
//! processes, which is
//!
//! - `>= f + 1` (a certified majority survives any Byzantine coalition)
//!   **exactly when** `f <= floor((n-1)/3)`, and
//! - `>= 1` (quorums cannot tell disjoint stories) **exactly when**
//!   `f <= floor((n-1)/2)` — the paper's resilience bound
//!   `F <= min(floor((n-1)/2), C)`.
//!
//! This module proves both equivalences — as equivalences, not one-way
//! implications — over the full grid `n <= 64`, `0 <= f < n`:
//!
//! 1. **Closed form vs. adversarial construction.** For every `(n, f)`
//!    the overlap of the two extremal quorums `{0..q-1}` and `{n-q..n-1}`
//!    must equal `intersection_margin(n, f)`, and no pair may do worse.
//! 2. **Exhaustive pair enumeration** for `n <= 10`: every pair of
//!    `q`-subsets of `{0..n-1}` (bitmask enumeration) is intersected and
//!    the minimum over all pairs compared against the closed form, so the
//!    construction in (1) is proven worst-case, not assumed.
//! 3. **Zone equivalences.** Each grid point is classified by its margin
//!    (`certified` / `degraded` / `broken`) and the classification must
//!    match the `f`-bound predicates exactly, both directions.
//! 4. **Bracha thresholds.** For `n >= bracha_min_n(f)`, two echo quorums
//!    of size `bracha_echo_quorum(n, f)` must overlap in `>= f + 1`
//!    processes, and `bracha_ready_quorum(f)` must exceed `f` yet fit in
//!    the correct-process count `n - f`.
//!
//! Points past a bound are *expected* to fail the stronger property; the
//! report keeps a capped, deterministic list of those counterexample
//! witnesses — they document the bounds' tightness. Any mismatch between
//! prediction and enumeration, in either direction, is a finding.

use ftm_core::quorum::{
    bracha_echo_quorum, bracha_min_n, bracha_ready_quorum, default_cert_capacity,
    intersection_margin, max_faults, quorum_size,
};

/// Largest `n` for which every pair of quorums is enumerated exhaustively
/// (stage 2). `C(10, 5)^2 = 63_504` pairs at the widest point — cheap.
pub const EXHAUSTIVE_N: usize = 10;

/// Cap on recorded counterexample witnesses (the grid is scanned in
/// `(n, f)` order, so the retained prefix is deterministic).
pub const WITNESS_CAP: usize = 8;

/// What the exhaustive quorum-algebra check established.
#[derive(Debug, Clone)]
pub struct QuorumReport {
    /// Grid points `(n, f)` checked against the closed form.
    pub pairs: u64,
    /// Quorum pairs enumerated exhaustively for `n <=` [`EXHAUSTIVE_N`].
    pub exhaustive_pairs: u64,
    /// Grid points with margin `>= f + 1` (certified-majority zone,
    /// `f <= floor((n-1)/3)`).
    pub certified_zone: u64,
    /// Grid points with `1 <= margin <= f` (overlap exists but a
    /// Byzantine coalition could own it — certification is load-bearing).
    pub degraded_zone: u64,
    /// Grid points with margin `0` (past the paper's bound; quorums can
    /// be disjoint).
    pub broken_zone: u64,
    /// Capped `margin < f + 1` witnesses just past the one-third bound.
    pub cert_witnesses: Vec<String>,
    /// Capped `margin = 0` witnesses past the one-half bound.
    pub disjoint_witnesses: Vec<String>,
    /// Violations: any point where prediction and enumeration disagree.
    pub mismatches: Vec<String>,
}

impl QuorumReport {
    /// `true` when the algebra held everywhere and nothing was vacuous.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
            && self.pairs > 0
            && self.exhaustive_pairs > 0
            && self.certified_zone > 0
            && self.degraded_zone > 0
            && self.broken_zone > 0
            && !self.cert_witnesses.is_empty()
            && !self.disjoint_witnesses.is_empty()
    }
}

fn push_capped(list: &mut Vec<String>, msg: String) {
    if list.len() < WITNESS_CAP {
        list.push(msg);
    }
}

/// Minimum overlap over *all* pairs of `q`-subsets of `{0..n-1}`, by
/// bitmask enumeration. Only called for small `n`.
fn min_overlap_exhaustive(n: usize, q: usize, pair_counter: &mut u64) -> usize {
    let masks: Vec<u32> = (0u32..1 << n)
        .filter(|m| m.count_ones() as usize == q)
        .collect();
    let mut min = usize::MAX;
    for &a in &masks {
        for &b in &masks {
            *pair_counter += 1;
            min = min.min((a & b).count_ones() as usize);
        }
    }
    min
}

/// Runs the full grid check up to `max_n`.
pub fn check_quorums(max_n: usize) -> QuorumReport {
    let mut report = QuorumReport {
        pairs: 0,
        exhaustive_pairs: 0,
        certified_zone: 0,
        degraded_zone: 0,
        broken_zone: 0,
        cert_witnesses: Vec::new(),
        disjoint_witnesses: Vec::new(),
        mismatches: Vec::new(),
    };

    for n in 1..=max_n {
        for f in 0..n {
            report.pairs += 1;
            let q = quorum_size(n, f);
            let margin = intersection_margin(n, f);

            // Stage 1: the extremal construction {0..q-1} vs {n-q..n-1}
            // realises exactly the closed-form margin.
            let constructed = (2 * q).saturating_sub(n);
            if constructed != margin {
                report.mismatches.push(format!(
                    "n={n} f={f}: extremal overlap {constructed} != margin {margin}"
                ));
            }

            // Stage 2: for small n, *every* pair of q-subsets.
            if n <= EXHAUSTIVE_N {
                let min = min_overlap_exhaustive(n, q, &mut report.exhaustive_pairs);
                if min != margin {
                    report.mismatches.push(format!(
                        "n={n} f={f}: exhaustive min overlap {min} != margin {margin}"
                    ));
                }
            }

            // Stage 3: zone classification must match the f-bounds exactly.
            let in_cert_zone = margin > f;
            let in_live_zone = margin >= 1;
            if in_cert_zone != (f <= default_cert_capacity(n)) {
                report.mismatches.push(format!(
                    "n={n} f={f}: margin {margin} vs f+1 disagrees with the one-third bound"
                ));
            }
            if in_live_zone != (f <= max_faults(n)) {
                report.mismatches.push(format!(
                    "n={n} f={f}: margin {margin} vs 1 disagrees with the one-half bound"
                ));
            }
            if in_cert_zone {
                report.certified_zone += 1;
            } else if in_live_zone {
                report.degraded_zone += 1;
                if f == default_cert_capacity(n) + 1 {
                    push_capped(
                        &mut report.cert_witnesses,
                        format!("n={n} f={f}: overlap {margin} < f+1={}", f + 1),
                    );
                }
            } else {
                report.broken_zone += 1;
                if f == max_faults(n) + 1 {
                    push_capped(
                        &mut report.disjoint_witnesses,
                        format!("n={n} f={f}: quorums of {q} can be disjoint"),
                    );
                }
            }

            // Stage 4: the Bracha thresholds used by ftm-rbcast.
            if n >= bracha_min_n(f) {
                let echo = bracha_echo_quorum(n, f);
                let echo_overlap = (2 * echo).saturating_sub(n);
                if echo_overlap < f + 1 {
                    report.mismatches.push(format!(
                        "n={n} f={f}: echo quorums of {echo} overlap only {echo_overlap}"
                    ));
                }
                let ready = bracha_ready_quorum(f);
                if ready <= f || ready > n - f {
                    report.mismatches.push(format!(
                        "n={n} f={f}: ready quorum {ready} outside (f, n-f]"
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_grid_verifies_clean() {
        let report = check_quorums(64);
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        assert!(report.ok());
        // 64 values of n, f ranging over 0..n: sum = 64*65/2.
        assert_eq!(report.pairs, 64 * 65 / 2);
        // Every zone is populated and the zones partition the grid.
        assert_eq!(
            report.certified_zone + report.degraded_zone + report.broken_zone,
            report.pairs
        );
    }

    #[test]
    fn witnesses_sit_exactly_past_their_bounds() {
        let report = check_quorums(16);
        assert!(report
            .cert_witnesses
            .iter()
            .all(|w| w.contains("overlap") && w.contains("f+1")));
        assert!(report
            .disjoint_witnesses
            .iter()
            .all(|w| w.contains("disjoint")));
        assert!(report.cert_witnesses.len() <= WITNESS_CAP);
        assert!(report.disjoint_witnesses.len() <= WITNESS_CAP);
    }

    #[test]
    fn exhaustive_enumeration_actually_ran() {
        let report = check_quorums(EXHAUSTIVE_N);
        // n=1..=10, each (n, f) enumerates C(n, q)^2 pairs — at minimum
        // one pair each, and far more in the middle of the range.
        assert!(
            report.exhaustive_pairs > 100_000,
            "{}",
            report.exhaustive_pairs
        );
    }

    #[test]
    fn a_wrong_margin_would_be_caught() {
        // Sanity-check the checker itself: the degraded zone is where the
        // naive `margin >= f + 1` claim fails, so it must be nonempty even
        // on small grids, and the classification is forced by arithmetic,
        // not by the functions under test agreeing with themselves.
        let report = check_quorums(7);
        assert!(report.degraded_zone > 0);
        for n in 1usize..=7 {
            for f in 0..n {
                let margin = intersection_margin(n, f);
                assert_eq!(margin, n.saturating_sub(2 * f));
            }
        }
    }
}
