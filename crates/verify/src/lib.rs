//! # ftm-verify — static protocol analyzer
//!
//! The paper's non-muteness module (§4, Fig. 4) is built "from the program
//! text": the per-peer observer automaton is a *static* artifact of the
//! protocol, not of any execution. Until now the repo validated it only
//! dynamically — simulation sweeps over fault scenarios. This crate checks
//! the static artifact statically, over the *whole* bounded behavior
//! space instead of the sampled one:
//!
//! 1. **Spec-derived extraction** ([`derived`]) — the observer automaton
//!    is derived mechanically from the declarative send discipline in
//!    [`ftm_core::spec::ProtocolSpec`], and [`diff`] cross-checks it
//!    against the hand-written [`ftm_detect::PeerAutomaton`] state by
//!    state, edge by edge.
//! 2. **Bounded model checking** — [`checks`] proves the derived relation
//!    deterministic and total over the receipt alphabet; [`soundness`]
//!    enumerates every compliant sender trace up to a round bound and
//!    proves none is convicted; [`mutation`] generates every
//!    single-divergence mutant (kind swap, phase skip, duplicate send,
//!    round jump, send-after-decide) and proves each is convicted,
//!    reporting the kill matrix.
//! 3. **Certificate-rule coverage** ([`coverage`]) — §5's obligation
//!    table: every conditional send in the spec is audited by a matching
//!    rule in `ftm-certify`, no rule is dead, and the only uncertifiable
//!    sends are initial values routed through vector certification.
//!
//! The `ftm-verify` binary runs everything and emits the same no-float,
//! byte-stable JSON as `ftm_sim::report`; CI treats a non-`ok` report as
//! a hard gate failure.
//!
//! # Example
//!
//! ```
//! use ftm_verify::{verify_transformed, Bounds};
//! let report = verify_transformed(&Bounds::default());
//! assert!(report.ok(), "{}", report.to_json().render());
//! ```

pub mod checks;
pub mod coverage;
pub mod derived;
pub mod diff;
pub mod mutation;
pub mod report;
pub mod soundness;
pub mod symbol;

pub use derived::DerivedAutomaton;
pub use report::VerifyReport;

use ftm_core::spec::ProtocolSpec;

/// Bounds for the exhaustive checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Round bound for the compliant-trace enumeration (soundness).
    pub soundness_rounds: u64,
    /// Round bound for mutation bases (mutants multiply fast; a smaller
    /// bound keeps the matrix readable while still covering every operator
    /// at every automaton state).
    pub mutation_rounds: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            soundness_rounds: 6,
            mutation_rounds: 3,
        }
    }
}

/// Runs every check against `spec`.
pub fn verify_spec(spec: &ProtocolSpec, bounds: &Bounds) -> VerifyReport {
    let auto = DerivedAutomaton::from_spec(spec);
    VerifyReport {
        determinism: checks::check_determinism(&auto),
        totality: checks::check_totality(&auto),
        diff: diff::diff_against_detect(&auto),
        soundness: soundness::check_soundness(&auto, bounds.soundness_rounds),
        mutation: mutation::check_mutations(&auto, bounds.mutation_rounds),
        coverage: coverage::check_coverage(spec),
    }
}

/// Runs every check against the transformed protocol (Fig. 3) — the
/// configuration the CI gate uses.
pub fn verify_transformed(bounds: &Bounds) -> VerifyReport {
    verify_spec(&ProtocolSpec::transformed(), bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_transformed_protocol_verifies_clean() {
        let report = verify_transformed(&Bounds::default());
        assert!(report.ok(), "{}", report.to_json().render());
    }

    #[test]
    fn report_json_is_reproducible_and_carries_every_section() {
        let report = verify_transformed(&Bounds {
            soundness_rounds: 3,
            mutation_rounds: 2,
        });
        let a = report.to_json().render();
        let b = report.to_json().render();
        assert_eq!(a, b);
        for key in [
            "determinism",
            "totality",
            "automaton-diff",
            "soundness",
            "mutation",
            "certificate-coverage",
            "kind-swap",
            "\"ok\": true",
        ] {
            assert!(a.contains(key), "report lost section {key}:\n{a}");
        }
    }
}
