//! # ftm-verify — static analyzer of the transformation itself
//!
//! The paper's non-muteness module (§4, Fig. 4) is built "from the program
//! text": the per-peer observer automaton is a *static* artifact of the
//! protocol, not of any execution. Until now the repo validated it only
//! dynamically — simulation sweeps over fault scenarios. This crate checks
//! the static artifact statically, over the *whole* bounded behavior
//! space instead of the sampled one — and, since the paper's whole point
//! is a *transformation*, it checks the transformation too, not just its
//! output:
//!
//! 1. **Spec-derived extraction** ([`derived`]) — the observer automaton
//!    is derived mechanically from the declarative send discipline in
//!    [`ftm_core::spec::ProtocolSpec`], and [`diff`] cross-checks it
//!    against the hand-written [`ftm_detect::PeerAutomaton`] state by
//!    state, edge by edge (for specs of the hand-written Fig. 3 shape).
//! 2. **Bounded model checking** — [`checks`] proves the derived relation
//!    deterministic and total over the receipt alphabet; [`soundness`]
//!    enumerates every compliant sender trace up to a round bound and
//!    proves none is convicted; [`mutation`] generates every
//!    single-divergence mutant (kind swap, phase skip, duplicate send,
//!    round jump, send-after-decide) and proves each is convicted,
//!    reporting the kill matrix.
//! 3. **Certificate-rule coverage** ([`coverage`]) — §5's obligation
//!    table: every conditional send in the spec is audited by a matching
//!    rule in `ftm-certify`, no rule is dead, and the only uncertifiable
//!    sends are initial values routed through vector certification.
//! 4. **Certificate-lineage flow** ([`lineage`]) — the global side of the
//!    same obligation: the justification graph over the send table has no
//!    dangling evidence, no dead route, no same-round cycle, and every
//!    value traces back to a vector-certified root.
//! 5. **Quorum algebra** ([`quorum`]) — the arithmetic everything above
//!    trusts: for every `(n, F)` with `n <= 64`, two `quorum_size(n, F)`
//!    quorums overlap in `>= F + 1` processes exactly when
//!    `F <= floor((n-1)/3)` and in `>= 1` exactly when
//!    `F <= floor((n-1)/2)` — proven by exhaustive subset-pair
//!    enumeration for small `n` and by the extremal construction beyond,
//!    with counterexample witnesses recorded past each bound.
//! 6. **Transformation refinement** ([`refinement`]) — the crash→Byzantine
//!    step itself: [`ftm_core::spec::transform`] applied to the crash spec
//!    must reproduce the hand-written transformed spec edge by edge; every
//!    compliant crash trace must lift to a compliant transformed trace
//!    (completeness); and a product walk of the two observers must show
//!    the transformed one convicts *strictly more*, never less
//!    (soundness gain), with machine-diffed witness traces.
//!
//! The `ftm-verify` binary runs everything over both protocols'
//! transformed, crash, and derived (`transform(crash)`) specs — six in
//! total, Hurfin–Raynal and Chandra–Toueg — plus one refinement section
//! per protocol, and emits the same no-float, byte-stable JSON as
//! `ftm_sim::report`; CI treats a non-`ok` report as a hard gate failure.
//!
//! # Example
//!
//! ```
//! use ftm_verify::{verify_all, Bounds};
//! let report = verify_all(&Bounds::default());
//! assert!(report.ok(), "{}", report.to_json().render());
//! ```

pub mod checks;
pub mod coverage;
pub mod derived;
pub mod diff;
pub mod lineage;
pub mod mutation;
pub mod perturb;
pub mod quorum;
pub mod refinement;
pub mod report;
pub mod soundness;
pub mod symbol;

pub use derived::DerivedAutomaton;
pub use report::{SpecReport, VerifyReport};

use ftm_certify::ProtocolId;
use ftm_core::spec::{transform, ProtocolSpec};

/// Trace budget governing the *effective* soundness bound per spec (see
/// [`Bounds::soundness_rounds_for`]): the round bound is lowered until the
/// compliant-trace enumeration fits this budget.
pub const SOUNDNESS_TRACE_CAP: usize = 150_000;

/// Bounds for the exhaustive checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Round bound for the compliant-trace enumerations (soundness and
    /// refinement).
    pub soundness_rounds: u64,
    /// Round bound for mutation bases (mutants multiply fast; a smaller
    /// bound keeps the matrix readable while still covering every operator
    /// at every automaton state).
    pub mutation_rounds: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            soundness_rounds: 6,
            mutation_rounds: 3,
        }
    }
}

impl Bounds {
    /// The effective soundness round bound for `spec`: the configured
    /// [`Bounds::soundness_rounds`], lowered (never below 1) until the
    /// compliant-trace count stays within [`SOUNDNESS_TRACE_CAP`].
    ///
    /// Per-round branching differs wildly between protocols — Hurfin–
    /// Raynal's `[CURRENT?, NEXT!]` discipline admits 2 vote chains per
    /// round, Chandra–Toueg's `[ESTIMATE!, PROPOSE?, ACK?, NACK?]` admits
    /// 8 — so a fixed round bound either starves the narrow protocol or
    /// explodes the wide one. Every automaton state and transition class
    /// is already exercised within the first two rounds; deeper rounds
    /// only re-walk the same structure, so trading depth for tractability
    /// on wide protocols loses no state coverage. The report records the
    /// bound actually used.
    pub fn soundness_rounds_for(&self, spec: &ProtocolSpec) -> u64 {
        let mut bound = 1;
        while bound < self.soundness_rounds
            && soundness::compliant_traces(spec, bound + 1).len() <= SOUNDNESS_TRACE_CAP
        {
            bound += 1;
        }
        bound
    }
}

/// The specs the driver knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecSelect {
    /// The hand-written transformed Hurfin–Raynal protocol (paper Fig. 3).
    Transformed,
    /// The un-transformed crash-model Hurfin–Raynal protocol (Fig. 1
    /// shape).
    Crash,
    /// `transform(crash_hr)` — the mechanically derived transformed spec.
    Derived,
    /// The hand-written transformed Chandra–Toueg protocol.
    TransformedCt,
    /// The un-transformed crash-model Chandra–Toueg protocol.
    CrashCt,
    /// `transform(crash_ct)` — the derived transformed CT spec.
    DerivedCt,
}

impl SpecSelect {
    /// Every spec, in report order.
    pub fn all() -> [SpecSelect; 6] {
        [
            SpecSelect::Transformed,
            SpecSelect::Crash,
            SpecSelect::Derived,
            SpecSelect::TransformedCt,
            SpecSelect::CrashCt,
            SpecSelect::DerivedCt,
        ]
    }

    /// Stable label, used as the JSON key and the CLI argument.
    pub fn label(&self) -> &'static str {
        match self {
            SpecSelect::Transformed => "transformed",
            SpecSelect::Crash => "crash",
            SpecSelect::Derived => "derived",
            SpecSelect::TransformedCt => "ct",
            SpecSelect::CrashCt => "crash-ct",
            SpecSelect::DerivedCt => "derived-ct",
        }
    }

    /// Parses a CLI `--spec` argument.
    pub fn parse(s: &str) -> Option<SpecSelect> {
        SpecSelect::all().into_iter().find(|x| x.label() == s)
    }

    /// Builds the selected spec.
    pub fn spec(&self) -> ProtocolSpec {
        match self {
            SpecSelect::Transformed => ProtocolSpec::transformed(),
            SpecSelect::Crash => ProtocolSpec::crash_hr(),
            SpecSelect::Derived => transform(&ProtocolSpec::crash_hr()),
            SpecSelect::TransformedCt => ProtocolSpec::transformed_ct(),
            SpecSelect::CrashCt => ProtocolSpec::crash_ct(),
            SpecSelect::DerivedCt => transform(&ProtocolSpec::crash_ct()),
        }
    }
}

/// Runs every applicable check against one `spec`.
///
/// The hand-written-reference checks (automaton diff and mutation
/// analysis, which uses the hand-written automaton as the killer) only run
/// when the spec projects onto the Fig. 3 shape
/// ([`diff::hand_reference_applies`]); for other specs those sections are
/// `None` and the derived automaton is the sole oracle.
pub fn verify_spec(spec: &ProtocolSpec, bounds: &Bounds) -> SpecReport {
    let auto = DerivedAutomaton::from_spec(spec);
    let hand = diff::hand_reference_applies(spec);
    SpecReport {
        determinism: checks::check_determinism(&auto),
        totality: checks::check_totality(&auto),
        diff: hand.then(|| diff::diff_against_detect(&auto)),
        soundness: soundness::check_soundness(&auto, bounds.soundness_rounds_for(spec)),
        mutation: hand.then(|| mutation::check_mutations(&auto, bounds.mutation_rounds)),
        coverage: coverage::check_coverage(spec),
        lineage: lineage::check_lineage(spec),
    }
}

/// Runs the crash→Byzantine refinement check for one protocol's spec
/// pair, at the effective bound of its crash spec.
pub fn refine_protocol(protocol: ProtocolId, bounds: &Bounds) -> refinement::RefinementReport {
    let crash = ProtocolSpec::crash_for(protocol);
    let transformed = ProtocolSpec::transformed_for(protocol);
    let bound = bounds.soundness_rounds_for(&crash);
    refinement::check_refinement(&crash, &transformed, bound)
}

/// Grid ceiling for the exhaustive quorum-algebra check: every `(n, F)`
/// with `n <=` this and `0 <= F < n` is verified.
pub const QUORUM_GRID_N: usize = 64;

/// Runs the per-spec checks for `selected` plus the cross-spec refinement
/// checks (which always compare every protocol's crash spec against its
/// transformed one, regardless of selection — the refinement is the point
/// of the tool) and the quorum-algebra grid check (also always present:
/// every threshold in the workspace routes through the algebra it proves).
pub fn verify_selected(selected: &[SpecSelect], bounds: &Bounds) -> VerifyReport {
    VerifyReport {
        specs: selected
            .iter()
            .map(|sel| (sel.label(), verify_spec(&sel.spec(), bounds)))
            .collect(),
        refinements: ProtocolId::all()
            .into_iter()
            .map(|p| (p.label(), refine_protocol(p, bounds)))
            .collect(),
        quorum: quorum::check_quorums(QUORUM_GRID_N),
    }
}

/// Runs every check against every spec — the configuration the CI gate
/// uses.
pub fn verify_all(bounds: &Bounds) -> VerifyReport {
    verify_selected(&SpecSelect::all(), bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_verifies_clean() {
        let report = verify_all(&Bounds::default());
        assert!(report.ok(), "{}", report.to_json().render());
        assert_eq!(report.specs.len(), 6);
        assert_eq!(report.refinements.len(), 2);
    }

    #[test]
    fn hand_reference_checks_run_only_where_they_apply() {
        let report = verify_all(&Bounds {
            soundness_rounds: 3,
            mutation_rounds: 2,
        });
        let transformed = report.spec("transformed").unwrap();
        assert!(transformed.diff.is_some());
        assert!(transformed.mutation.is_some());
        assert!(transformed.soundness.hand_checked);
        let crash = report.spec("crash").unwrap();
        assert!(crash.diff.is_none());
        assert!(crash.mutation.is_none());
        assert!(!crash.soundness.hand_checked);
        // The derived spec reproduces the Fig. 3 shape, so the hand
        // reference applies to it too — the strongest form of the
        // derivation check.
        let derived = report.spec("derived").unwrap();
        assert!(derived.diff.is_some());
        assert!(derived.mutation.is_some());
        // The same split holds for the Chandra–Toueg triple.
        let ct = report.spec("ct").unwrap();
        assert!(ct.diff.is_some());
        assert!(ct.mutation.is_some());
        assert!(ct.soundness.hand_checked);
        let crash_ct = report.spec("crash-ct").unwrap();
        assert!(crash_ct.diff.is_none());
        assert!(report.spec("derived-ct").unwrap().diff.is_some());
    }

    #[test]
    fn the_soundness_bound_scales_to_the_protocols_branching() {
        let bounds = Bounds::default();
        // HR's narrow per-round discipline keeps the full bound; CT's
        // eight vote chains per round would enumerate ~8^6 traces, so the
        // effective bound shrinks until the cap holds.
        assert_eq!(
            bounds.soundness_rounds_for(&ProtocolSpec::transformed()),
            bounds.soundness_rounds
        );
        let ct = bounds.soundness_rounds_for(&ProtocolSpec::transformed_ct());
        assert!(ct >= 3, "CT bound over-shrunk: {ct}");
        assert!(ct < bounds.soundness_rounds, "CT bound did not scale: {ct}");
        assert!(
            soundness::compliant_traces(&ProtocolSpec::transformed_ct(), ct).len()
                <= SOUNDNESS_TRACE_CAP
        );
    }

    #[test]
    fn report_json_is_reproducible_and_carries_every_section() {
        let report = verify_all(&Bounds {
            soundness_rounds: 3,
            mutation_rounds: 2,
        });
        let a = report.to_json().render();
        let b = report.to_json().render();
        assert_eq!(a, b);
        for key in [
            "\"specs\"",
            "\"transformed\"",
            "\"crash\"",
            "\"derived\"",
            "\"ct\"",
            "\"crash-ct\"",
            "\"derived-ct\"",
            "\"hr\"",
            "determinism",
            "totality",
            "automaton-diff",
            "soundness",
            "hand-checked",
            "mutation",
            "certificate-coverage",
            "lineage",
            "kind-swap",
            "\"refinement\"",
            "derivation",
            "completeness",
            "soundness-gain",
            "gain-witnesses",
            "\"quorum\"",
            "exhaustive-pairs",
            "cert-witnesses",
            "disjoint-witnesses",
            "\"ok\": true",
        ] {
            assert!(a.contains(key), "report lost section {key}:\n{a}");
        }
    }

    #[test]
    fn spec_selection_narrows_the_report_but_keeps_the_refinement() {
        let report = verify_selected(
            &[SpecSelect::Crash],
            &Bounds {
                soundness_rounds: 3,
                mutation_rounds: 2,
            },
        );
        assert_eq!(report.specs.len(), 1);
        assert!(report.spec("transformed").is_none());
        assert_eq!(report.refinements.len(), 2);
        assert!(report.refinement("hr").unwrap().ok());
        assert!(report.refinement("ct").unwrap().ok());
        assert!(report.ok());
    }

    #[test]
    fn spec_select_parses_its_own_labels() {
        for sel in SpecSelect::all() {
            assert_eq!(SpecSelect::parse(sel.label()), Some(sel));
        }
        assert_eq!(SpecSelect::parse("bogus"), None);
    }
}
