//! # ftm-verify — static analyzer of the transformation itself
//!
//! The paper's non-muteness module (§4, Fig. 4) is built "from the program
//! text": the per-peer observer automaton is a *static* artifact of the
//! protocol, not of any execution. Until now the repo validated it only
//! dynamically — simulation sweeps over fault scenarios. This crate checks
//! the static artifact statically, over the *whole* bounded behavior
//! space instead of the sampled one — and, since the paper's whole point
//! is a *transformation*, it checks the transformation too, not just its
//! output:
//!
//! 1. **Spec-derived extraction** ([`derived`]) — the observer automaton
//!    is derived mechanically from the declarative send discipline in
//!    [`ftm_core::spec::ProtocolSpec`], and [`diff`] cross-checks it
//!    against the hand-written [`ftm_detect::PeerAutomaton`] state by
//!    state, edge by edge (for specs of the hand-written Fig. 3 shape).
//! 2. **Bounded model checking** — [`checks`] proves the derived relation
//!    deterministic and total over the receipt alphabet; [`soundness`]
//!    enumerates every compliant sender trace up to a round bound and
//!    proves none is convicted; [`mutation`] generates every
//!    single-divergence mutant (kind swap, phase skip, duplicate send,
//!    round jump, send-after-decide) and proves each is convicted,
//!    reporting the kill matrix.
//! 3. **Certificate-rule coverage** ([`coverage`]) — §5's obligation
//!    table: every conditional send in the spec is audited by a matching
//!    rule in `ftm-certify`, no rule is dead, and the only uncertifiable
//!    sends are initial values routed through vector certification.
//! 4. **Certificate-lineage flow** ([`lineage`]) — the global side of the
//!    same obligation: the justification graph over the send table has no
//!    dangling evidence, no dead route, no same-round cycle, and every
//!    value traces back to a vector-certified root.
//! 5. **Transformation refinement** ([`refinement`]) — the crash→Byzantine
//!    step itself: [`ftm_core::spec::transform`] applied to the crash spec
//!    must reproduce the hand-written transformed spec edge by edge; every
//!    compliant crash trace must lift to a compliant transformed trace
//!    (completeness); and a product walk of the two observers must show
//!    the transformed one convicts *strictly more*, never less
//!    (soundness gain), with machine-diffed witness traces.
//!
//! The `ftm-verify` binary runs everything over the transformed, crash,
//! and derived (`transform(crash)`) specs and emits the same no-float,
//! byte-stable JSON as `ftm_sim::report`; CI treats a non-`ok` report as
//! a hard gate failure.
//!
//! # Example
//!
//! ```
//! use ftm_verify::{verify_all, Bounds};
//! let report = verify_all(&Bounds::default());
//! assert!(report.ok(), "{}", report.to_json().render());
//! ```

pub mod checks;
pub mod coverage;
pub mod derived;
pub mod diff;
pub mod lineage;
pub mod mutation;
pub mod perturb;
pub mod refinement;
pub mod report;
pub mod soundness;
pub mod symbol;

pub use derived::DerivedAutomaton;
pub use report::{SpecReport, VerifyReport};

use ftm_core::spec::{transform, ProtocolSpec};

/// Bounds for the exhaustive checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Round bound for the compliant-trace enumerations (soundness and
    /// refinement).
    pub soundness_rounds: u64,
    /// Round bound for mutation bases (mutants multiply fast; a smaller
    /// bound keeps the matrix readable while still covering every operator
    /// at every automaton state).
    pub mutation_rounds: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            soundness_rounds: 6,
            mutation_rounds: 3,
        }
    }
}

/// The specs the driver knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecSelect {
    /// The hand-written transformed protocol (paper Fig. 3).
    Transformed,
    /// The un-transformed crash-model protocol (paper Fig. 1 shape).
    Crash,
    /// `transform(crash)` — the mechanically derived transformed spec.
    Derived,
}

impl SpecSelect {
    /// Every spec, in report order.
    pub fn all() -> [SpecSelect; 3] {
        [
            SpecSelect::Transformed,
            SpecSelect::Crash,
            SpecSelect::Derived,
        ]
    }

    /// Stable label, used as the JSON key and the CLI argument.
    pub fn label(&self) -> &'static str {
        match self {
            SpecSelect::Transformed => "transformed",
            SpecSelect::Crash => "crash",
            SpecSelect::Derived => "derived",
        }
    }

    /// Parses a CLI `--spec` argument.
    pub fn parse(s: &str) -> Option<SpecSelect> {
        SpecSelect::all().into_iter().find(|x| x.label() == s)
    }

    /// Builds the selected spec.
    pub fn spec(&self) -> ProtocolSpec {
        match self {
            SpecSelect::Transformed => ProtocolSpec::transformed(),
            SpecSelect::Crash => ProtocolSpec::crash_hr(),
            SpecSelect::Derived => transform(&ProtocolSpec::crash_hr()),
        }
    }
}

/// Runs every applicable check against one `spec`.
///
/// The hand-written-reference checks (automaton diff and mutation
/// analysis, which uses the hand-written automaton as the killer) only run
/// when the spec projects onto the Fig. 3 shape
/// ([`diff::hand_reference_applies`]); for other specs those sections are
/// `None` and the derived automaton is the sole oracle.
pub fn verify_spec(spec: &ProtocolSpec, bounds: &Bounds) -> SpecReport {
    let auto = DerivedAutomaton::from_spec(spec);
    let hand = diff::hand_reference_applies(spec);
    SpecReport {
        determinism: checks::check_determinism(&auto),
        totality: checks::check_totality(&auto),
        diff: hand.then(|| diff::diff_against_detect(&auto)),
        soundness: soundness::check_soundness(&auto, bounds.soundness_rounds),
        mutation: hand.then(|| mutation::check_mutations(&auto, bounds.mutation_rounds)),
        coverage: coverage::check_coverage(spec),
        lineage: lineage::check_lineage(spec),
    }
}

/// Runs the per-spec checks for `selected` plus the cross-spec refinement
/// check (which always compares the crash spec against the transformed
/// one, regardless of selection — the refinement is the point of the
/// tool).
pub fn verify_selected(selected: &[SpecSelect], bounds: &Bounds) -> VerifyReport {
    VerifyReport {
        specs: selected
            .iter()
            .map(|sel| (sel.label(), verify_spec(&sel.spec(), bounds)))
            .collect(),
        refinement: refinement::check_refinement(
            &ProtocolSpec::crash_hr(),
            &ProtocolSpec::transformed(),
            bounds.soundness_rounds,
        ),
    }
}

/// Runs every check against every spec — the configuration the CI gate
/// uses.
pub fn verify_all(bounds: &Bounds) -> VerifyReport {
    verify_selected(&SpecSelect::all(), bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_verifies_clean() {
        let report = verify_all(&Bounds::default());
        assert!(report.ok(), "{}", report.to_json().render());
        assert_eq!(report.specs.len(), 3);
    }

    #[test]
    fn hand_reference_checks_run_only_where_they_apply() {
        let report = verify_all(&Bounds {
            soundness_rounds: 3,
            mutation_rounds: 2,
        });
        let transformed = report.spec("transformed").unwrap();
        assert!(transformed.diff.is_some());
        assert!(transformed.mutation.is_some());
        assert!(transformed.soundness.hand_checked);
        let crash = report.spec("crash").unwrap();
        assert!(crash.diff.is_none());
        assert!(crash.mutation.is_none());
        assert!(!crash.soundness.hand_checked);
        // The derived spec reproduces the Fig. 3 shape, so the hand
        // reference applies to it too — the strongest form of the
        // derivation check.
        let derived = report.spec("derived").unwrap();
        assert!(derived.diff.is_some());
        assert!(derived.mutation.is_some());
    }

    #[test]
    fn report_json_is_reproducible_and_carries_every_section() {
        let report = verify_all(&Bounds {
            soundness_rounds: 3,
            mutation_rounds: 2,
        });
        let a = report.to_json().render();
        let b = report.to_json().render();
        assert_eq!(a, b);
        for key in [
            "\"specs\"",
            "\"transformed\"",
            "\"crash\"",
            "\"derived\"",
            "determinism",
            "totality",
            "automaton-diff",
            "soundness",
            "hand-checked",
            "mutation",
            "certificate-coverage",
            "lineage",
            "kind-swap",
            "\"refinement\"",
            "derivation",
            "completeness",
            "soundness-gain",
            "gain-witnesses",
            "\"ok\": true",
        ] {
            assert!(a.contains(key), "report lost section {key}:\n{a}");
        }
    }

    #[test]
    fn spec_selection_narrows_the_report_but_keeps_the_refinement() {
        let report = verify_selected(
            &[SpecSelect::Crash],
            &Bounds {
                soundness_rounds: 3,
                mutation_rounds: 2,
            },
        );
        assert_eq!(report.specs.len(), 1);
        assert!(report.spec("transformed").is_none());
        assert!(report.refinement.ok());
        assert!(report.ok());
    }

    #[test]
    fn spec_select_parses_its_own_labels() {
        for sel in SpecSelect::all() {
            assert_eq!(SpecSelect::parse(sel.label()), Some(sel));
        }
        assert_eq!(SpecSelect::parse("bogus"), None);
    }
}
