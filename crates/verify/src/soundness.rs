//! Bounded soundness: no compliant sender is ever convicted.
//!
//! The reliability half of the paper's detector contract (§4): if a
//! correct process declares `q` faulty, `q` really deviated. Statically,
//! that means *no trace a spec-compliant sender can produce drives the
//! automaton into `faulty`*. This module enumerates every compliant send
//! trace up to a round bound — every interleaving of optional and
//! mandatory slots, every round-advance, every decide point, and every
//! stop point (prefixes are compliant: a silent peer is the muteness
//! detector's business, never this automaton's) — and replays each against
//! both the hand-written automaton and the derived one. A conviction is a
//! false positive; a requirement disagreement means the certificate
//! predicates would be consulted differently by the two artifacts.

use ftm_certify::{MessageKind, Round};
use ftm_core::spec::ProtocolSpec;
use ftm_detect::{PeerAutomaton, Requirement};
use ftm_sim::ProcessId;

use crate::derived::{DerivedAutomaton, Outcome, ReqKind};

/// A send trace: the sequence of `(kind, round)` receipts one peer's
/// channel delivers (FIFO, so receipt order is send order).
pub type Trace = Vec<(MessageKind, Round)>;

/// Renders a trace for reports, e.g. `INIT(0) CURRENT(1) NEXT(1)`.
pub fn trace_label(trace: &Trace) -> String {
    trace
        .iter()
        .map(|(k, r)| format!("{k}({r})"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn entry_legal(spec: &ProtocolSpec, from: usize, j: usize) -> bool {
    spec.round_slots[from..j].iter().all(|s| !s.mandatory)
}

fn advance_ready(spec: &ProtocolSpec, i: usize) -> bool {
    spec.round_slots[i..].iter().all(|s| !s.mandatory)
}

/// Enumerates every compliant trace with at most `max_rounds` rounds.
///
/// Each recursion point contributes the trace-so-far (stopping is
/// compliant) and its decide-terminated variant; branches extend with
/// every legal same-round vote and every legal round entry.
pub fn compliant_traces(spec: &ProtocolSpec, max_rounds: Round) -> Vec<Trace> {
    let mut out = Vec::new();
    let opening: Trace = spec.opening.map(|k| vec![(k, 0)]).unwrap_or_default();
    rec(spec, 1, 0, &opening, max_rounds, &mut out);
    out
}

fn rec(
    spec: &ProtocolSpec,
    round: Round,
    progress: usize,
    trace: &Trace,
    max_rounds: Round,
    out: &mut Vec<Trace>,
) {
    // Stopping here is compliant (muteness is out of scope)…
    out.push(trace.clone());
    // …and so is deciding here.
    let mut decided = trace.clone();
    decided.push((spec.terminal, round));
    out.push(decided);

    // Same-round votes: any not-yet-passed slot reachable over optional
    // slots only.
    for j in progress..spec.round_slots.len() {
        if entry_legal(spec, progress, j) {
            let mut t = trace.clone();
            t.push((spec.round_slots[j].kind, round));
            rec(spec, round, j + 1, &t, max_rounds, out);
        }
    }

    // Round advance: only once every mandatory slot is done, and only to
    // the immediate successor round.
    if advance_ready(spec, progress) && round < max_rounds {
        let next = round + spec.round_advance;
        for j in 0..spec.round_slots.len() {
            if entry_legal(spec, 0, j) {
                let mut t = trace.clone();
                t.push((spec.round_slots[j].kind, next));
                rec(spec, next, j + 1, &t, max_rounds, out);
            }
        }
    }
}

/// Result of the bounded soundness check.
#[derive(Debug, Clone, Default)]
pub struct SoundnessReport {
    /// Round bound the enumeration ran to.
    pub max_rounds: u64,
    /// Compliant traces replayed.
    pub traces: u64,
    /// Individual receipts stepped through the automata.
    pub steps: u64,
    /// Whether the hand-written Fig. 4 automaton was replayed alongside
    /// the derived one (only specs projecting onto the Fig. 4 shape have
    /// a hand-written reference).
    pub hand_checked: bool,
    /// Compliant traces an automaton convicted (must be empty: each is a
    /// false positive).
    pub false_convictions: Vec<String>,
    /// Steps where the two automata demanded different certificate
    /// requirements (must be empty).
    pub requirement_mismatches: Vec<String>,
}

/// Replays every compliant trace (up to `max_rounds`) against the derived
/// automaton — and, for specs with a hand-written Fig. 4 reference
/// ([`crate::diff::hand_reference_applies`]), against that automaton too.
pub fn check_soundness(auto: &DerivedAutomaton, max_rounds: Round) -> SoundnessReport {
    let spec = auto.spec();
    let hand_checked = crate::diff::hand_reference_applies(spec);
    let mut report = SoundnessReport {
        max_rounds,
        hand_checked,
        ..SoundnessReport::default()
    };
    let table = ftm_detect::ProtocolTable::for_protocol(spec.protocol);
    for trace in compliant_traces(spec, max_rounds) {
        report.traces += 1;
        let mut hand = PeerAutomaton::new_for(table, ProcessId(0));
        let (mut st, mut round) = auto.initial();
        for (idx, &(kind, r)) in trace.iter().enumerate() {
            report.steps += 1;
            let (outcome, next_state, next_round) = auto.classify(st, round, kind, r);
            let derived_req = match &outcome {
                Outcome::Accept { req, .. } => *req,
                Outcome::Convict { why } => {
                    report.false_convictions.push(format!(
                        "step {idx} of [{}]: derived automaton convicted a \
                         compliant trace: {why}",
                        trace_label(&trace)
                    ));
                    break;
                }
            };
            if hand_checked {
                match hand.step(kind, r) {
                    Err(e) => {
                        report.false_convictions.push(format!(
                            "step {idx} of [{}]: compliant {kind}({r}) convicted: {}",
                            trace_label(&trace),
                            e.reason
                        ));
                        break;
                    }
                    Ok(hand_req) => {
                        let agree = match derived_req {
                            ReqKind::Standard => hand_req == Requirement::Standard,
                            ReqKind::RoundEntry => hand_req == Requirement::RoundEntry(next_round),
                        };
                        if !agree {
                            report.requirement_mismatches.push(format!(
                                "step {idx} of [{}]: derived {derived_req:?} vs hand-written \
                                 {hand_req:?}",
                                trace_label(&trace)
                            ));
                        }
                    }
                }
            }
            st = next_state;
            round = next_round;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_compliant_trace_up_to_six_rounds_is_accepted() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed());
        let report = check_soundness(&auto, 6);
        assert!(
            report.false_convictions.is_empty(),
            "{:?}",
            report.false_convictions
        );
        assert!(
            report.requirement_mismatches.is_empty(),
            "{:?}",
            report.requirement_mismatches
        );
        assert!(
            report.traces > 300,
            "bound 6 should enumerate hundreds of traces, got {}",
            report.traces
        );
    }

    #[test]
    fn crash_spec_traces_are_sound_against_the_derived_automaton_only() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::crash_hr());
        let report = check_soundness(&auto, 5);
        assert!(!report.hand_checked, "crash spec has no Fig. 4 reference");
        assert!(
            report.false_convictions.is_empty(),
            "{:?}",
            report.false_convictions
        );
        assert!(report.traces > 100, "got {}", report.traces);
    }

    #[test]
    fn trace_enumeration_is_duplicate_free() {
        let spec = ProtocolSpec::transformed();
        let traces = compliant_traces(&spec, 3);
        let set: std::collections::BTreeSet<String> = traces.iter().map(trace_label).collect();
        assert_eq!(set.len(), traces.len(), "duplicate compliant traces");
    }

    #[test]
    fn compliant_traces_respect_the_round_bound() {
        let spec = ProtocolSpec::transformed();
        for t in compliant_traces(&spec, 2) {
            assert!(t.iter().all(|&(_, r)| r <= 2), "{}", trace_label(&t));
        }
    }
}
