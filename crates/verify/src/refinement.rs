//! Refinement: model-checking the crash→Byzantine transformation itself.
//!
//! The paper's contribution is a *transformation*, not one protocol — so
//! checking only the transformed instance leaves the central claim
//! untested. This module checks the relation between the two specs three
//! ways:
//!
//! 1. **Derivation** — [`ftm_core::spec::transform`] applied to the crash
//!    spec must reproduce the hand-written transformed spec field by
//!    field, send by send, and the automata derived from both must agree
//!    edge by edge. The hand-written Fig. 3 spec is thereby *derived*,
//!    not trusted.
//! 2. **Completeness** (no new false positives) — every compliant trace
//!    of the crash spec, *lifted* into the transformed alphabet by
//!    prepending the round-0 opening, must be accepted by the transformed
//!    observer: the transformation never convicts a process that was
//!    correct under crash semantics. Violations come with a machine-diffed
//!    witness trace.
//! 3. **Soundness gain** (strictly more convictions) — a product
//!    automaton runs both observers in lockstep over the bounded
//!    reachable state space. Receipts foreign to the crash alphabet
//!    (INIT) are *projected away* on the crash side; every receipt the
//!    transformed observer convicts while the crash observer cannot even
//!    see it — plus every vote the transformed observer rejects before
//!    the opening — is counted as gain. The gate demands gain > 0 and
//!    zero simulation breaks (receipts the crash observer accepts but the
//!    transformed one convicts).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ftm_certify::{MessageKind, Round};
use ftm_core::spec::{transform, ProtocolSpec};

use crate::derived::{DerivedAutomaton, Outcome, State};
use crate::soundness::{compliant_traces, trace_label, Trace};
use crate::symbol::Symbol;

/// How many gain / violation witnesses are rendered in full (all are
/// counted; rendering every one would drown the report).
pub const WITNESS_CAP: usize = 8;

/// Result of the refinement check.
#[derive(Debug, Clone, Default)]
pub struct RefinementReport {
    /// Round bound for trace enumeration and product exploration.
    pub bound: u64,
    /// Conditional sends compared between `transform(crash)` and the
    /// hand-written transformed spec.
    pub derivation_sends: u64,
    /// Automaton edges compared between the two derivations.
    pub derivation_edges: u64,
    /// Differences between the mechanical derivation and the hand-written
    /// spec (must be empty).
    pub derivation_mismatches: Vec<String>,
    /// Compliant crash traces lifted and replayed.
    pub crash_traces: u64,
    /// Receipts stepped during the lifted replay.
    pub lifted_steps: u64,
    /// Lifted compliant crash traces the transformed observer convicted
    /// (must be empty), each with the machine-diffed witness.
    pub completeness_violations: Vec<String>,
    /// Product states explored.
    pub product_states: u64,
    /// Receipts the crash observer accepts but the transformed observer
    /// convicts, from a mutually reachable state (must be empty).
    pub containment_breaks: Vec<String>,
    /// Receipts the crash observer convicts but the transformed observer
    /// accepts — lost detection power on the shared alphabet (must be
    /// empty).
    pub detection_regressions: Vec<String>,
    /// Behaviors only the transformed observer convicts (must be > 0:
    /// the transformation strictly gains detection power).
    pub gain: u64,
    /// Rendered gain witnesses (first [`WITNESS_CAP`]).
    pub gain_witnesses: Vec<String>,
}

impl RefinementReport {
    /// `true` when the derivation matches, completeness holds, the
    /// product simulation never breaks, and the gain is strict.
    pub fn ok(&self) -> bool {
        self.derivation_mismatches.is_empty()
            && self.derivation_sends > 0
            && self.derivation_edges > 0
            && self.completeness_violations.is_empty()
            && self.crash_traces > 0
            && self.containment_breaks.is_empty()
            && self.detection_regressions.is_empty()
            && self.product_states > 0
            && self.gain > 0
    }
}

/// Runs the full refinement check between `crash` and `transformed`.
pub fn check_refinement(
    crash: &ProtocolSpec,
    transformed: &ProtocolSpec,
    bound: Round,
) -> RefinementReport {
    let mut report = RefinementReport {
        bound,
        ..RefinementReport::default()
    };
    check_derivation(crash, transformed, &mut report);
    check_completeness(crash, transformed, bound, &mut report);
    check_product(crash, transformed, bound, &mut report);
    report
}

/// `transform(crash) ≡ transformed`, field by field and edge by edge.
fn check_derivation(crash: &ProtocolSpec, hand: &ProtocolSpec, report: &mut RefinementReport) {
    let derived = transform(crash);

    if derived.opening != hand.opening {
        report.derivation_mismatches.push(format!(
            "opening: derived {:?}, hand-written {:?}",
            derived.opening, hand.opening
        ));
    }
    if derived.terminal != hand.terminal {
        report.derivation_mismatches.push(format!(
            "terminal: derived {}, hand-written {}",
            derived.terminal, hand.terminal
        ));
    }
    if derived.round_advance != hand.round_advance {
        report.derivation_mismatches.push(format!(
            "round-advance: derived {}, hand-written {}",
            derived.round_advance, hand.round_advance
        ));
    }
    if derived.round_slots != hand.round_slots {
        report.derivation_mismatches.push(format!(
            "round slots: derived {:?}, hand-written {:?}",
            derived.round_slots, hand.round_slots
        ));
    }

    report.derivation_sends = hand.sends.len().max(derived.sends.len()) as u64;
    if derived.sends.len() != hand.sends.len() {
        report.derivation_mismatches.push(format!(
            "send table size: derived {}, hand-written {}",
            derived.sends.len(),
            hand.sends.len()
        ));
    }
    for (d, h) in derived.sends.iter().zip(hand.sends.iter()) {
        if d != h {
            report.derivation_mismatches.push(format!(
                "send `{}`: derived {d:?}, hand-written {h:?}",
                h.id
            ));
        }
    }

    // Edge-by-edge automaton diff — only meaningful once the alphabets
    // agree, which the scalar comparison above establishes.
    if derived.opening == hand.opening
        && derived.round_slots == hand.round_slots
        && derived.terminal == hand.terminal
    {
        let auto_d = DerivedAutomaton::from_spec(&derived);
        let auto_h = DerivedAutomaton::from_spec(hand);
        for &state in auto_h.states() {
            for symbol in Symbol::alphabet(hand) {
                report.derivation_edges += 1;
                let ed = auto_d.edges_for(state, symbol);
                let eh = auto_h.edges_for(state, symbol);
                if ed.len() != eh.len() || ed.iter().zip(eh.iter()).any(|(a, b)| a != b) {
                    report.derivation_mismatches.push(format!(
                        "edge {} × {}: derived and hand-written automata disagree",
                        state.label(),
                        symbol.label(hand)
                    ));
                }
            }
        }
    }
}

/// Lifts a crash trace into the transformed alphabet: the round-0 opening
/// is prepended (the vector-certification phase every transformed process
/// runs before round 1).
pub fn lift(transformed: &ProtocolSpec, crash_trace: &Trace) -> Trace {
    let mut out: Trace = transformed
        .opening
        .map(|k| vec![(k, 0)])
        .unwrap_or_default();
    out.extend(crash_trace.iter().copied());
    out
}

/// Every compliant crash trace, lifted, must be transformed-compliant.
fn check_completeness(
    crash: &ProtocolSpec,
    hand: &ProtocolSpec,
    bound: Round,
    report: &mut RefinementReport,
) {
    let trans_auto = DerivedAutomaton::from_spec(hand);
    for trace in compliant_traces(crash, bound) {
        report.crash_traces += 1;
        let lifted = lift(hand, &trace);
        let (mut st, mut round) = trans_auto.initial();
        for (idx, &(kind, r)) in lifted.iter().enumerate() {
            report.lifted_steps += 1;
            let (outcome, ns, nr) = trans_auto.classify(st, round, kind, r);
            if let Outcome::Convict { why } = outcome {
                report.completeness_violations.push(format!(
                    "crash [{}] lifts to [{}]: step {idx} {kind}({r}) convicted in {}@{round}: \
                     {why}",
                    trace_label(&trace),
                    trace_label(&lifted),
                    st.label(),
                ));
                break;
            }
            st = ns;
            round = nr;
        }
    }
}

/// One product state: the crash observer's `(state, round)` paired with
/// the transformed observer's.
type ProductKey = ((State, Round), (State, Round));

/// Product-automaton exploration: containment breaks, regressions, gain.
fn check_product(
    crash: &ProtocolSpec,
    hand: &ProtocolSpec,
    bound: Round,
    report: &mut RefinementReport,
) {
    let crash_auto = DerivedAutomaton::from_spec(crash);
    let trans_auto = DerivedAutomaton::from_spec(hand);

    // Pre-round gain: votes and decisions before the opening. These sit
    // outside the lift image (the product below pairs states *after* the
    // opening), so they are checked directly: the transformed observer
    // must convict any kind arriving at `start` that is not the opening,
    // while the crash observer — which has no notion of "unopened" —
    // accepts the same receipt from its initial state.
    if hand.opening.is_some() {
        let (ts, tr) = trans_auto.initial();
        let (cs, cr) = crash_auto.initial();
        for slot in &hand.round_slots {
            let (t_out, _, _) = trans_auto.classify(ts, tr, slot.kind, 1);
            let (c_out, _, _) = crash_auto.classify(cs, cr, slot.kind, 1);
            if let (Outcome::Convict { why }, Outcome::Accept { .. }) = (&t_out, &c_out) {
                report.gain += 1;
                if report.gain_witnesses.len() < WITNESS_CAP {
                    report.gain_witnesses.push(format!(
                        "[{}(1)] before the opening: transformed convicts ({why}), crash \
                         accepts",
                        slot.kind
                    ));
                }
            }
        }
    }

    // The transformed side consumes the lifted opening before lockstep.
    let mut trans_state = trans_auto.initial();
    if let Some(k) = hand.opening {
        let (out, ns, nr) = trans_auto.classify(trans_state.0, trans_state.1, k, 0);
        assert!(
            matches!(out, Outcome::Accept { .. }),
            "the transformed observer rejects its own opening"
        );
        trans_state = (ns, nr);
    }
    let start: ProductKey = (crash_auto.initial(), trans_state);

    // The receipt kinds of the *transformed* alphabet (the superset).
    let mut kinds: Vec<MessageKind> = Vec::new();
    if let Some(k) = hand.opening {
        kinds.push(k);
    }
    kinds.extend(hand.round_slots.iter().map(|s| s.kind));
    kinds.push(hand.terminal);

    let mut visited: BTreeSet<ProductKey> = BTreeSet::new();
    let mut parent: BTreeMap<ProductKey, (ProductKey, (MessageKind, Round))> = BTreeMap::new();
    let mut queue: VecDeque<ProductKey> = VecDeque::new();
    visited.insert(start);
    queue.push_back(start);

    while let Some(key) = queue.pop_front() {
        report.product_states += 1;
        let ((cs, cr), (ts, tr)) = key;
        for &kind in &kinds {
            for r in receipt_rounds(cr, tr, bound, Some(kind) == hand.opening) {
                let (t_out, tns, tnr) = trans_auto.classify(ts, tr, kind, r);
                let crash_sees = crash.knows_kind(kind);
                let c_step = if crash_sees {
                    Some(crash_auto.classify(cs, cr, kind, r))
                } else {
                    None
                };
                match (&c_step, &t_out) {
                    // Foreign receipt convicted by the transformed
                    // observer alone: pure gain.
                    (None, Outcome::Convict { why }) => {
                        report.gain += 1;
                        if report.gain_witnesses.len() < WITNESS_CAP {
                            report.gain_witnesses.push(render_witness(
                                &parent,
                                key,
                                kind,
                                r,
                                &format!("transformed convicts ({why}), crash cannot see {kind}"),
                            ));
                        }
                    }
                    // Foreign receipt accepted: only the transformed side
                    // moves.
                    (None, Outcome::Accept { .. }) => {
                        let next = ((cs, cr), (tns, tnr));
                        if tnr <= bound && visited.insert(next) {
                            parent.insert(next, (key, (kind, r)));
                            queue.push_back(next);
                        }
                    }
                    (Some((Outcome::Accept { .. }, cns, cnr)), Outcome::Convict { why }) => {
                        report.containment_breaks.push(render_witness(
                            &parent,
                            key,
                            kind,
                            r,
                            &format!(
                                "crash accepts into {}@{cnr}, transformed convicts ({why})",
                                cns.label()
                            ),
                        ));
                    }
                    (Some((Outcome::Convict { why }, _, _)), Outcome::Accept { .. }) => {
                        report.detection_regressions.push(render_witness(
                            &parent,
                            key,
                            kind,
                            r,
                            &format!(
                                "crash convicts ({why}), transformed accepts into {}@{tnr}",
                                tns.label()
                            ),
                        ));
                    }
                    (Some((Outcome::Accept { .. }, cns, cnr)), Outcome::Accept { .. }) => {
                        let next = ((*cns, *cnr), (tns, tnr));
                        if *cnr <= bound && tnr <= bound && visited.insert(next) {
                            parent.insert(next, (key, (kind, r)));
                            queue.push_back(next);
                        }
                    }
                    // Both convict: the observers agree the receipt is
                    // faulty — no refinement information.
                    (Some((Outcome::Convict { .. }, _, _)), Outcome::Convict { .. }) => {}
                }
            }
        }
    }
}

/// Concrete message rounds probing every round delta of both observers.
fn receipt_rounds(cr: Round, tr: Round, bound: Round, is_opening: bool) -> Vec<Round> {
    if is_opening {
        return vec![0]; // the opening's wire round is structurally 0
    }
    let mut out: Vec<Round> = [
        0,
        cr.saturating_sub(1),
        cr,
        cr + 1,
        cr + 2,
        tr.saturating_sub(1),
        tr,
        tr + 1,
        tr + 2,
    ]
    .into_iter()
    .filter(|r| *r <= bound + 2)
    .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Renders the receipt path leading to `key` plus the offending receipt —
/// the machine-diffed witness trace.
fn render_witness(
    parent: &BTreeMap<ProductKey, (ProductKey, (MessageKind, Round))>,
    key: ProductKey,
    kind: MessageKind,
    r: Round,
    verdict: &str,
) -> String {
    let mut path: Trace = Vec::new();
    let mut cur = key;
    while let Some((prev, receipt)) = parent.get(&cur) {
        path.push(*receipt);
        cur = *prev;
    }
    path.reverse();
    let ((cs, cr), (ts, tr)) = key;
    format!(
        "after [{}] (crash {}@{cr}, transformed {}@{tr}): {kind}({r}) — {verdict}",
        trace_label(&path),
        cs.label(),
        ts.label(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_report() -> RefinementReport {
        check_refinement(&ProtocolSpec::crash_hr(), &ProtocolSpec::transformed(), 4)
    }

    #[test]
    fn the_hr_transformation_refines_clean_with_strict_gain() {
        let report = default_report();
        assert!(
            report.derivation_mismatches.is_empty(),
            "{:?}",
            report.derivation_mismatches
        );
        assert!(
            report.completeness_violations.is_empty(),
            "{:?}",
            report.completeness_violations
        );
        assert!(
            report.containment_breaks.is_empty(),
            "{:?}",
            report.containment_breaks
        );
        assert!(
            report.detection_regressions.is_empty(),
            "{:?}",
            report.detection_regressions
        );
        assert!(report.gain > 0, "the transformation must gain detections");
        assert!(report.ok());
        assert!(report.crash_traces > 50, "got {}", report.crash_traces);
        assert!(report.product_states > 10, "got {}", report.product_states);
    }

    #[test]
    fn gain_witnesses_include_the_opening_discipline() {
        let report = default_report();
        let all = report.gain_witnesses.join("\n");
        assert!(
            all.contains("before the opening"),
            "expected a pre-opening gain witness:\n{all}"
        );
        assert!(
            all.contains("crash cannot see INIT"),
            "expected a duplicate-INIT gain witness:\n{all}"
        );
    }

    #[test]
    fn witness_rendering_is_byte_stable() {
        let a = default_report();
        let b = default_report();
        assert_eq!(a.gain_witnesses, b.gain_witnesses);
        assert_eq!(a.gain, b.gain);
        assert_eq!(a.product_states, b.product_states);
    }

    #[test]
    fn a_round_advance_divergence_breaks_completeness_with_a_witness() {
        // A crash spec that legally advances two rounds at a time produces
        // compliant traces the transformed observer convicts as round
        // skips — refinement must fail with a lifted witness trace.
        let mut crash = ProtocolSpec::crash_hr();
        crash.round_advance = 2;
        let report = check_refinement(&crash, &ProtocolSpec::transformed(), 4);
        assert!(!report.ok());
        assert!(
            !report.completeness_violations.is_empty(),
            "expected completeness violations"
        );
        assert!(
            report.completeness_violations[0].contains("lifts to"),
            "witness must show the lift: {}",
            report.completeness_violations[0]
        );
    }

    #[test]
    fn a_send_table_divergence_is_a_derivation_mismatch() {
        let mut crash = ProtocolSpec::crash_hr();
        crash.sends[0].carries_value = false;
        let report = check_refinement(&crash, &ProtocolSpec::transformed(), 3);
        assert!(
            report
                .derivation_mismatches
                .iter()
                .any(|m| m.contains("current-coordinator")),
            "{:?}",
            report.derivation_mismatches
        );
    }
}
