//! Cross-check: derived automaton vs. the hand-written `PeerAutomaton`.
//!
//! `ftm-detect`'s Fig. 4 automaton is hand-written; the one in
//! [`crate::derived`] is generated from the declarative spec. This module
//! diffs them state by state and edge by edge: for every state, every
//! alphabet symbol, and several concrete round witnesses per symbol, the
//! hand-written automaton is placed in the state
//! ([`PeerAutomaton::at`]), fed the concrete receipt
//! ([`PeerAutomaton::step`]), and its verdict — accept/convict, target
//! phase, believed round, demanded requirement — is compared against the
//! derived edge. Any disagreement is a finding: one of the two artifacts
//! mis-states the protocol.

use ftm_certify::Round;
use ftm_core::spec::ProtocolSpec;
use ftm_detect::{PeerAutomaton, PeerPhase, ProtocolTable, Requirement};
use ftm_sim::ProcessId;

use crate::derived::{DerivedAutomaton, Outcome, ReqKind, RoundEffect, State};
use crate::symbol::Symbol;

/// `true` when the hand-written [`PeerAutomaton`] is a valid reference for
/// `spec`: the spec's send discipline projects exactly onto the static
/// [`ProtocolTable`] registered for its protocol — same opening, same
/// ordered `(kind, mandatory)` round slots, same terminal, single-round
/// advance. Transformed specs and anything derived from
/// [`ftm_core::spec::transform`] qualify; the opening-less crash specs do
/// not — their traces would all be convicted for skipping the opening.
pub fn hand_reference_applies(spec: &ProtocolSpec) -> bool {
    let table = ProtocolTable::for_protocol(spec.protocol);
    spec.opening == Some(table.opening)
        && spec.terminal == table.terminal
        && spec.round_advance == 1
        && spec.round_slots.len() == table.slots.len()
        && spec
            .round_slots
            .iter()
            .zip(table.slots)
            .all(|(slot, (kind, mandatory))| slot.kind == *kind && slot.mandatory == *mandatory)
}

/// Result of the automaton diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Symbolic edges compared.
    pub edges: u64,
    /// Concrete probes executed (≥ edges: several round witnesses each).
    pub probes: u64,
    /// Disagreements between the two automata (empty = equivalent on the
    /// probed alphabet).
    pub mismatches: Vec<String>,
}

/// Maps a derived state onto the hand-written automaton's phase: the
/// table-driven [`PeerAutomaton`] names in-round states by slot progress,
/// exactly like [`State::Slot`] (for Hurfin–Raynal these are the paper's
/// `q0`/`q1`/`q2`).
fn phase_of(state: State) -> PeerPhase {
    match state {
        State::Start => PeerPhase::Start,
        State::Slot(i) => PeerPhase::InRound(i),
        State::Final => PeerPhase::Final,
        State::Faulty => PeerPhase::Faulty,
    }
}

/// Observer rounds a state is probed at: `start` is only meaningful at
/// round 0, everything else is probed at several rounds to catch
/// round-dependent behavior.
fn probe_rounds(state: State) -> Vec<Round> {
    match state {
        State::Start => vec![0],
        _ => vec![1, 2, 7],
    }
}

/// Diffs the derived automaton against the hand-written one over the full
/// alphabet.
///
/// # Panics
///
/// Panics when the spec's slot count does not project onto its protocol's
/// hand-written table states (nothing to diff against, a configuration
/// error). A spec that merely *disagrees* with the table — same shape,
/// different discipline — is diffed and every disagreement reported;
/// that asymmetry is what lets the perturbation tests watch a divergent
/// spec get caught.
pub fn diff_against_detect(auto: &DerivedAutomaton) -> DiffReport {
    let spec = auto.spec();
    let table = ProtocolTable::for_protocol(spec.protocol);
    assert_eq!(
        spec.round_slots.len(),
        table.slots.len(),
        "the hand-written {} automaton models {} round slots",
        spec.protocol,
        table.slots.len()
    );
    let mut report = DiffReport::default();

    for &state in auto.states() {
        for symbol in Symbol::alphabet(spec) {
            if !auto.realizable(state, symbol) {
                continue;
            }
            report.edges += 1;
            let edges = auto.edges_for(state, symbol);
            let Some(edge) = edges.first() else {
                // Totality gaps are reported by `checks`; nothing to diff.
                continue;
            };

            for obs in probe_rounds(state) {
                for msg_round in symbol.realizations(spec, obs) {
                    report.probes += 1;
                    let mut hand = PeerAutomaton::at_for(table, ProcessId(0), phase_of(state), obs);
                    let got = hand.step(symbol.kind(spec), msg_round);
                    let ctx = format!(
                        "{} (round {obs}) × {} (r={msg_round})",
                        state.label(),
                        symbol.label(spec)
                    );
                    match (&edge.outcome, got) {
                        (Outcome::Accept { to, round, req }, Ok(hand_req)) => {
                            if hand.phase() != phase_of(*to) {
                                report.mismatches.push(format!(
                                    "{ctx}: derived target {} but hand-written moved to {}",
                                    to.label(),
                                    hand.phase()
                                ));
                            }
                            let want_round = round.apply(spec, obs);
                            if hand.round() != want_round {
                                report.mismatches.push(format!(
                                    "{ctx}: derived round {want_round} but hand-written \
                                     believes {}",
                                    hand.round()
                                ));
                            }
                            let req_matches = match req {
                                ReqKind::Standard => hand_req == Requirement::Standard,
                                ReqKind::RoundEntry => {
                                    hand_req
                                        == Requirement::RoundEntry(
                                            RoundEffect::Advance.apply(spec, obs),
                                        )
                                }
                            };
                            if !req_matches {
                                report.mismatches.push(format!(
                                    "{ctx}: derived requirement {req:?} but hand-written \
                                     demanded {hand_req:?}"
                                ));
                            }
                        }
                        (Outcome::Convict { .. }, Err(_)) => {
                            if hand.phase() != PeerPhase::Faulty {
                                report.mismatches.push(format!(
                                    "{ctx}: hand-written convicted without entering faulty \
                                     (phase {})",
                                    hand.phase()
                                ));
                            }
                        }
                        (Outcome::Accept { to, .. }, Err(e)) => {
                            report.mismatches.push(format!(
                                "{ctx}: derived accepts into {} but hand-written convicts \
                                 ({})",
                                to.label(),
                                e.reason
                            ));
                        }
                        (Outcome::Convict { why }, Ok(_)) => {
                            report.mismatches.push(format!(
                                "{ctx}: derived convicts ({why}) but hand-written accepts \
                                 into {}",
                                hand.phase()
                            ));
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_core::spec::ProtocolSpec;

    #[test]
    fn derived_and_hand_written_automata_agree() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed());
        let report = diff_against_detect(&auto);
        assert!(
            report.mismatches.is_empty(),
            "automata disagree:\n{}",
            report.mismatches.join("\n")
        );
        assert!(
            report.edges >= 75,
            "suspiciously few edges: {}",
            report.edges
        );
        assert!(report.probes > report.edges);
    }

    #[test]
    fn derived_and_hand_written_automata_agree_for_chandra_toueg() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed_ct());
        let report = diff_against_detect(&auto);
        assert!(
            report.mismatches.is_empty(),
            "CT automata disagree:\n{}",
            report.mismatches.join("\n")
        );
        // Four round slots make a larger automaton than HR's two.
        assert!(
            report.edges >= 100,
            "suspiciously few CT edges: {}",
            report.edges
        );
    }

    #[test]
    fn a_spec_divergence_is_caught() {
        // Claim CURRENT is mandatory before leaving a round: the derived
        // automaton then convicts NEXT-only rounds that the hand-written
        // one (faithful to Fig. 3) accepts — the diff must notice.
        let mut spec = ProtocolSpec::transformed();
        spec.round_slots[0].mandatory = true;
        let auto = DerivedAutomaton::from_spec(&spec);
        let report = diff_against_detect(&auto);
        assert!(
            !report.mismatches.is_empty(),
            "diff failed to catch a divergent spec"
        );
    }
}
