//! The observer alphabet: message kind × round position.
//!
//! The Fig. 4 automaton never inspects payloads — a receipt event is
//! classified by the message's *kind* and by where its round number stands
//! relative to the round the observer believes the peer is in. That makes
//! the automaton's input alphabet finite: one symbol for the opening kind
//! (whose round is structurally 0), one per `(vote kind, round delta)`
//! pair, and one per `(terminal, round delta)` pair. Model checking runs
//! over this alphabet instead of over unbounded concrete round numbers.

use ftm_certify::{MessageKind, Round};
use ftm_core::spec::ProtocolSpec;

/// Where a message's round stands relative to the observer's belief.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoundDelta {
    /// Strictly before the peer's current round.
    Past,
    /// The peer's current round.
    Same,
    /// Exactly one legal advance ahead (`round + round_advance`).
    Successor,
    /// More than one advance ahead.
    Skip,
}

impl RoundDelta {
    /// All deltas, in a stable order.
    pub fn all() -> [RoundDelta; 4] {
        [
            RoundDelta::Past,
            RoundDelta::Same,
            RoundDelta::Successor,
            RoundDelta::Skip,
        ]
    }

    /// Classifies `msg_round` relative to `observer_round`.
    pub fn of(spec: &ProtocolSpec, observer_round: Round, msg_round: Round) -> RoundDelta {
        if msg_round < observer_round {
            RoundDelta::Past
        } else if msg_round == observer_round {
            RoundDelta::Same
        } else if msg_round == observer_round + spec.round_advance {
            RoundDelta::Successor
        } else {
            RoundDelta::Skip
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RoundDelta::Past => "past",
            RoundDelta::Same => "same",
            RoundDelta::Successor => "succ",
            RoundDelta::Skip => "skip",
        }
    }
}

/// One symbol of the observer alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Symbol {
    /// The opening kind (INIT); its round is structurally 0.
    Opening,
    /// A round-slot vote (CURRENT / NEXT) at a relative round.
    Vote(MessageKind, RoundDelta),
    /// The terminal kind (DECIDE) at a relative round. The automaton is
    /// round-insensitive for it, but totality must still cover every
    /// position a concrete message can occupy.
    Terminal(RoundDelta),
}

impl Symbol {
    /// The full alphabet for `spec`: opening (when the spec has one) +
    /// slots × deltas + terminal × deltas.
    pub fn alphabet(spec: &ProtocolSpec) -> Vec<Symbol> {
        let mut out = Vec::new();
        if spec.opening.is_some() {
            out.push(Symbol::Opening);
        }
        for slot in &spec.round_slots {
            for d in RoundDelta::all() {
                out.push(Symbol::Vote(slot.kind, d));
            }
        }
        for d in RoundDelta::all() {
            out.push(Symbol::Terminal(d));
        }
        out
    }

    /// Classifies a concrete `(kind, round)` receipt into a symbol, given
    /// the round the observer believes the peer is in.
    pub fn of_message(
        spec: &ProtocolSpec,
        observer_round: Round,
        kind: MessageKind,
        msg_round: Round,
    ) -> Symbol {
        if Some(kind) == spec.opening {
            Symbol::Opening
        } else if kind == spec.terminal {
            Symbol::Terminal(RoundDelta::of(spec, observer_round, msg_round))
        } else {
            Symbol::Vote(kind, RoundDelta::of(spec, observer_round, msg_round))
        }
    }

    /// The delta carried by the symbol, if any.
    pub fn delta(&self) -> Option<RoundDelta> {
        match self {
            Symbol::Opening => None,
            Symbol::Vote(_, d) | Symbol::Terminal(d) => Some(*d),
        }
    }

    /// The wire kind the symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics for [`Symbol::Opening`] against a spec with no opening kind
    /// (the symbol is not in that spec's alphabet).
    pub fn kind(&self, spec: &ProtocolSpec) -> MessageKind {
        match self {
            Symbol::Opening => spec.opening.expect("opening symbol needs an opening kind"),
            Symbol::Vote(k, _) => *k,
            Symbol::Terminal(_) => spec.terminal,
        }
    }

    /// Concrete message rounds realizing this symbol when the observer is
    /// at `observer_round` (empty when unrealizable, e.g. `Past` at round
    /// 0). Several witnesses are produced where the delta is a range.
    pub fn realizations(&self, spec: &ProtocolSpec, observer_round: Round) -> Vec<Round> {
        let Some(delta) = self.delta() else {
            return vec![0];
        };
        let mut rounds = match delta {
            RoundDelta::Past => {
                let mut v = Vec::new();
                if observer_round >= 1 {
                    v.push(observer_round - 1);
                    v.push(0);
                    v.push(observer_round / 2);
                }
                v.retain(|r| *r < observer_round);
                v
            }
            RoundDelta::Same => vec![observer_round],
            RoundDelta::Successor => vec![observer_round + spec.round_advance],
            RoundDelta::Skip => vec![
                observer_round + spec.round_advance + 1,
                observer_round + spec.round_advance + 7,
            ],
        };
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }

    /// Report label, e.g. `CURRENT@succ`.
    ///
    /// # Panics
    ///
    /// Panics for [`Symbol::Opening`] against a spec with no opening kind.
    pub fn label(&self, spec: &ProtocolSpec) -> String {
        match self {
            Symbol::Opening => format!(
                "{}@open",
                spec.opening.expect("opening symbol needs an opening kind")
            ),
            Symbol::Vote(k, d) => format!("{k}@{}", d.label()),
            Symbol::Terminal(d) => format!("{}@{}", spec.terminal, d.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_has_one_symbol_per_kind_and_delta() {
        let spec = ProtocolSpec::transformed();
        let a = Symbol::alphabet(&spec);
        // 1 opening + 2 slots × 4 deltas + terminal × 4 deltas.
        assert_eq!(a.len(), 13);
        let set: std::collections::BTreeSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len(), "alphabet has duplicate symbols");
    }

    #[test]
    fn classification_roundtrips_through_realization() {
        let spec = ProtocolSpec::transformed();
        for obs in [0u64, 1, 2, 7] {
            for sym in Symbol::alphabet(&spec) {
                for r in sym.realizations(&spec, obs) {
                    assert_eq!(
                        Symbol::of_message(&spec, obs, sym.kind(&spec), r),
                        sym,
                        "symbol {} at obs={obs} realized as r={r} does not roundtrip",
                        sym.label(&spec)
                    );
                }
            }
        }
    }

    #[test]
    fn an_opening_less_spec_drops_the_opening_symbol() {
        let crash = ProtocolSpec::crash_hr();
        let a = Symbol::alphabet(&crash);
        // 2 slots × 4 deltas + terminal × 4 deltas, no opening.
        assert_eq!(a.len(), 12);
        assert!(!a.contains(&Symbol::Opening));
        // INIT is foreign to the crash alphabet: classified as nothing.
        assert!(!crash.knows_kind(MessageKind::Init));
    }

    #[test]
    fn past_is_unrealizable_at_round_zero() {
        let spec = ProtocolSpec::transformed();
        let sym = Symbol::Vote(MessageKind::Current, RoundDelta::Past);
        assert!(sym.realizations(&spec, 0).is_empty());
        assert_eq!(sym.realizations(&spec, 1), vec![0]);
    }
}
