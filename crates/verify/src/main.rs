//! The `ftm-verify` CLI: run every static check, print the report, gate CI.
//!
//! ```text
//! ftm-verify [--json] [--rounds N] [--mutation-rounds N]
//! ```
//!
//! Exit status 0 when every check passed, 1 when any finding exists
//! (conflict, gap, diff mismatch, false conviction, surviving mutant, or
//! coverage hole), 2 on usage errors. `--json` prints only the byte-stable
//! JSON document; the default adds a human summary to stderr.

use std::process::ExitCode;

use ftm_verify::{verify_transformed, Bounds};

fn usage() -> ExitCode {
    eprintln!("usage: ftm-verify [--json] [--rounds N] [--mutation-rounds N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json_only = false;
    let mut bounds = Bounds::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_only = true,
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bounds.soundness_rounds = n,
                None => return usage(),
            },
            "--mutation-rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bounds.mutation_rounds = n,
                None => return usage(),
            },
            "--help" | "-h" => {
                eprintln!("ftm-verify: static analysis of the observer automaton");
                return usage();
            }
            _ => return usage(),
        }
    }
    if bounds.soundness_rounds == 0 || bounds.mutation_rounds == 0 {
        eprintln!("ftm-verify: round bounds must be at least 1");
        return usage();
    }

    let report = verify_transformed(&bounds);
    print!("{}", report.to_json().render());

    if !json_only {
        let m = &report.mutation;
        eprintln!(
            "ftm-verify: {} edges diffed ({} probes), {} compliant traces sound to round {}, \
             {} divergent mutants / {} survivors, {} sends vs {} rules",
            report.diff.edges,
            report.diff.probes,
            report.soundness.traces,
            report.soundness.max_rounds,
            m.divergent(),
            m.survivors.len(),
            report.coverage.sends,
            report.coverage.rules,
        );
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("ftm-verify: FINDINGS PRESENT — see report");
        ExitCode::FAILURE
    }
}
