//! The `ftm-verify` CLI: run every static check, print the report, gate CI.
//!
//! ```text
//! ftm-verify [--json] [--rounds N] [--mutation-rounds N]
//!            [--spec {transformed|crash|derived|ct|crash-ct|derived-ct}]...
//! ```
//!
//! `--spec` narrows the per-spec sections (repeatable; default: all six —
//! the Hurfin–Raynal and Chandra–Toueg triples). The per-protocol
//! refinement sections are always present — the crash→Byzantine
//! refinement is what the tool exists to check. Exit
//! status 0 when every check passed, 1 when any finding exists (conflict,
//! gap, diff mismatch, false conviction, surviving mutant, coverage hole,
//! lineage break, or refinement violation), 2 on usage errors. `--json`
//! prints only the byte-stable JSON document; the default adds a human
//! summary to stderr.

use std::process::ExitCode;

use ftm_verify::{verify_selected, Bounds, SpecSelect};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ftm-verify [--json] [--rounds N] [--mutation-rounds N] \
         [--spec {{transformed|crash|derived|ct|crash-ct|derived-ct}}]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json_only = false;
    let mut bounds = Bounds::default();
    let mut selected: Vec<SpecSelect> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_only = true,
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bounds.soundness_rounds = n,
                None => return usage(),
            },
            "--mutation-rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bounds.mutation_rounds = n,
                None => return usage(),
            },
            "--spec" => match args.next().as_deref().and_then(SpecSelect::parse) {
                Some(sel) => {
                    if !selected.contains(&sel) {
                        selected.push(sel);
                    }
                }
                None => return usage(),
            },
            "--help" | "-h" => {
                eprintln!("ftm-verify: static analysis of the observer automaton and the");
                eprintln!("crash->Byzantine transformation that produces it");
                return usage();
            }
            _ => return usage(),
        }
    }
    if bounds.soundness_rounds == 0 || bounds.mutation_rounds == 0 {
        eprintln!("ftm-verify: round bounds must be at least 1");
        return usage();
    }
    if selected.is_empty() {
        selected.extend(SpecSelect::all());
    }

    let report = verify_selected(&selected, &bounds);
    print!("{}", report.to_json().render());

    if !json_only {
        for (label, spec) in &report.specs {
            let diffed = spec.diff.as_ref().map_or_else(
                || "no hand reference".to_string(),
                |d| format!("{} edges diffed ({} probes)", d.edges, d.probes),
            );
            let mutated = spec.mutation.as_ref().map_or_else(
                || "mutation skipped".to_string(),
                |m| {
                    format!(
                        "{} divergent mutants / {} survivors",
                        m.divergent(),
                        m.survivors.len()
                    )
                },
            );
            eprintln!(
                "ftm-verify[{label}]: {diffed}, {} compliant traces sound to round {}, \
                 {mutated}, {} sends vs {} rules, lineage {} edges from {} roots",
                spec.soundness.traces,
                spec.soundness.max_rounds,
                spec.coverage.sends,
                spec.coverage.rules,
                spec.lineage.edges,
                spec.lineage.roots,
            );
        }
        for (label, r) in &report.refinements {
            eprintln!(
                "ftm-verify[refinement:{label}]: derivation {} sends / {} edges, {} crash \
                 traces lifted over {} steps, {} product states, gain {} ({} witnesses)",
                r.derivation_sends,
                r.derivation_edges,
                r.crash_traces,
                r.lifted_steps,
                r.product_states,
                r.gain,
                r.gain_witnesses.len(),
            );
        }
        let q = &report.quorum;
        eprintln!(
            "ftm-verify[quorum]: {} grid points ({} exhaustive pairs), zones \
             {}/{}/{} certified/degraded/broken, {} mismatches",
            q.pairs,
            q.exhaustive_pairs,
            q.certified_zone,
            q.degraded_zone,
            q.broken_zone,
            q.mismatches.len(),
        );
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        eprintln!("ftm-verify: FINDINGS PRESENT — see report");
        ExitCode::FAILURE
    }
}
