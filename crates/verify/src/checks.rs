//! Determinism and totality of the derived transition relation.
//!
//! The derivation in [`crate::derived`] applies its rules as independent
//! clauses, so nothing *constructs* the result to be an automaton — these
//! checks *prove* it is one:
//!
//! * **determinism** — no `(state, symbol)` pair is matched by two rules
//!   with different outcomes (a peer's fate never depends on rule order);
//! * **totality** — every realizable `(state, symbol)` pair is matched by
//!   at least one rule, i.e. every receipt event is classified (expected,
//!   round-advance, or one of the Fig. 4 fault classes); nothing falls
//!   through to undefined behavior.

use crate::derived::DerivedAutomaton;
use crate::symbol::Symbol;

/// Result of the determinism check.
#[derive(Debug, Clone, Default)]
pub struct DeterminismReport {
    /// `(state, symbol)` pairs examined.
    pub pairs: u64,
    /// Human-readable descriptions of conflicting pairs (empty = proven).
    pub conflicts: Vec<String>,
}

/// Result of the totality check.
#[derive(Debug, Clone, Default)]
pub struct TotalityReport {
    /// Realizable `(state, symbol)` pairs examined.
    pub pairs: u64,
    /// Pairs no rule classified (empty = proven).
    pub gaps: Vec<String>,
}

/// Proves that no `(state, symbol)` pair has two rules assigning
/// different outcomes.
pub fn check_determinism(auto: &DerivedAutomaton) -> DeterminismReport {
    let spec = auto.spec();
    let mut report = DeterminismReport::default();
    for &state in auto.states() {
        for symbol in Symbol::alphabet(spec) {
            report.pairs += 1;
            let edges = auto.edges_for(state, symbol);
            let disagree = edges
                .iter()
                .any(|e| e.outcome != edges[0].outcome || e.rule != edges[0].rule);
            if edges.len() > 1 && disagree {
                let rules: Vec<&str> = edges.iter().map(|e| e.rule).collect();
                report.conflicts.push(format!(
                    "{} × {} matched by {} rules: {}",
                    state.label(),
                    symbol.label(spec),
                    edges.len(),
                    rules.join(", ")
                ));
            }
        }
    }
    report
}

/// Proves that every realizable `(state, symbol)` pair is classified.
pub fn check_totality(auto: &DerivedAutomaton) -> TotalityReport {
    let spec = auto.spec();
    let mut report = TotalityReport::default();
    for &state in auto.states() {
        for symbol in Symbol::alphabet(spec) {
            if !auto.realizable(state, symbol) {
                continue;
            }
            report.pairs += 1;
            if auto.edges_for(state, symbol).is_empty() {
                report.gaps.push(format!(
                    "{} × {} classified by no rule",
                    state.label(),
                    symbol.label(spec)
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_core::spec::ProtocolSpec;

    #[test]
    fn transformed_spec_is_deterministic_and_total() {
        let auto = DerivedAutomaton::from_spec(&ProtocolSpec::transformed());
        let det = check_determinism(&auto);
        assert!(det.conflicts.is_empty(), "{:?}", det.conflicts);
        assert_eq!(det.pairs, 6 * 13);
        let tot = check_totality(&auto);
        assert!(tot.gaps.is_empty(), "{:?}", tot.gaps);
        // `start` excludes the three `Past` symbols.
        assert_eq!(tot.pairs, 6 * 13 - 3);
    }

    #[test]
    fn a_spec_with_a_gap_is_caught_by_totality() {
        // A malformed spec: the mandatory slot comes first, so a same-round
        // CURRENT in q0 skips a mandatory slot — the rules still classify
        // it (vote-past-mandatory), but entering a round with CURRENT after
        // an advance hits `round-entry-past-mandatory`. Both paths must
        // stay classified: totality holds even for odd specs.
        let mut spec = ProtocolSpec::transformed();
        spec.round_slots.swap(0, 1);
        let auto = DerivedAutomaton::from_spec(&spec);
        let tot = check_totality(&auto);
        assert!(tot.gaps.is_empty(), "{:?}", tot.gaps);
        let det = check_determinism(&auto);
        assert!(det.conflicts.is_empty(), "{:?}", det.conflicts);
    }
}
