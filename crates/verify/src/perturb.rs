//! Seeded spec perturbations: negative fuel for every static check.
//!
//! A checker that has never failed is indistinguishable from `true`. This
//! module injects single, seeded faults into a [`ProtocolSpec`] — each
//! perturbation targets exactly one analysis and must make it report a
//! finding with the expected diagnostic. The target send is chosen by a
//! [`SplitMix64`] stream, so the negative tests cover different rows on
//! different seeds while staying fully reproducible.

use ftm_core::spec::{CertRoute, EvidencePhase, Justification, ProtocolSpec};
use ftm_sim::prng::{Rng64, SplitMix64};

/// The spec-perturbation operators, each aimed at one checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecPerturbation {
    /// Clear the `justified_by` edges of a value-carrying, non-root send:
    /// its value loses the lineage back to the vector-certified root —
    /// [`crate::lineage`] must report it unjustified.
    DropRoute,
    /// Remove a send other sends cite as evidence: their justifications
    /// dangle — [`crate::lineage`] must report the dangling citations.
    OrphanSend,
    /// Add a same-round back edge closing a justification cycle —
    /// [`crate::lineage`] must report the cycle.
    CyclicRoute,
    /// Re-route a certified send to a rule the analyzer does not have —
    /// [`crate::coverage`] must report the uncovered send.
    MissingRule,
    /// Double the crash spec's round advance: its compliant traces skip
    /// rounds the transformed observer convicts —
    /// [`crate::refinement`] must report completeness violations.
    RoundSkip,
}

impl SpecPerturbation {
    /// All perturbations, in report order.
    pub fn all() -> [SpecPerturbation; 5] {
        [
            SpecPerturbation::DropRoute,
            SpecPerturbation::OrphanSend,
            SpecPerturbation::CyclicRoute,
            SpecPerturbation::MissingRule,
            SpecPerturbation::RoundSkip,
        ]
    }

    /// Stable kebab-case label.
    pub fn label(&self) -> &'static str {
        match self {
            SpecPerturbation::DropRoute => "drop-route",
            SpecPerturbation::OrphanSend => "orphan-send",
            SpecPerturbation::CyclicRoute => "cyclic-route",
            SpecPerturbation::MissingRule => "missing-rule",
            SpecPerturbation::RoundSkip => "round-skip",
        }
    }

    /// Applies the perturbation to `spec` in place, choosing the target
    /// with the stream seeded by `seed`. Returns a description of what was
    /// changed (the id of the touched send, or the touched field).
    ///
    /// # Panics
    ///
    /// Panics when the spec has no eligible target (e.g. perturbing a spec
    /// with no cited sends) — the perturbations are written for the
    /// paper's specs, which always have targets.
    pub fn apply(&self, spec: &mut ProtocolSpec, seed: u64) -> String {
        let mut rng = SplitMix64::from_seed(seed);
        let pick = |rng: &mut SplitMix64, n: usize| -> usize {
            assert!(n > 0, "perturbation has no eligible target");
            rng.gen_range_u64(0, n as u64 - 1) as usize
        };
        match self {
            SpecPerturbation::DropRoute => {
                let candidates: Vec<usize> = spec
                    .sends
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        s.carries_value
                            && !s.justified_by.is_empty()
                            && !matches!(s.route, CertRoute::VectorCertification(_))
                    })
                    .map(|(i, _)| i)
                    .collect();
                let i = candidates[pick(&mut rng, candidates.len())];
                spec.sends[i].justified_by.clear();
                format!("cleared justifications of `{}`", spec.sends[i].id)
            }
            SpecPerturbation::OrphanSend => {
                let cited: Vec<&str> = spec
                    .sends
                    .iter()
                    .flat_map(|s| s.justified_by.iter().map(|j| j.by))
                    .collect();
                let candidates: Vec<usize> = spec
                    .sends
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| cited.contains(&s.id))
                    .map(|(i, _)| i)
                    .collect();
                let i = candidates[pick(&mut rng, candidates.len())];
                let id = spec.sends[i].id;
                spec.sends.remove(i);
                format!("removed cited send `{id}`")
            }
            SpecPerturbation::CyclicRoute => {
                // Close a cycle over an existing same-round edge a -> b by
                // adding the back edge b -> a.
                let pairs: Vec<(usize, &str)> = spec
                    .sends
                    .iter()
                    .flat_map(|s| {
                        s.justified_by
                            .iter()
                            .filter(|j| j.phase == EvidencePhase::SameRound)
                            .filter_map(|j| {
                                spec.sends
                                    .iter()
                                    .position(|t| t.id == j.by)
                                    .map(|i| (i, s.id))
                            })
                    })
                    .collect();
                let (justifier_idx, justified_id) = pairs[pick(&mut rng, pairs.len())];
                spec.sends[justifier_idx]
                    .justified_by
                    .push(Justification::same(justified_id));
                format!(
                    "added same-round back edge `{}` -> `{}`",
                    justified_id, spec.sends[justifier_idx].id
                )
            }
            SpecPerturbation::MissingRule => {
                let candidates: Vec<usize> = spec
                    .sends
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s.route, CertRoute::Rule(_)))
                    .map(|(i, _)| i)
                    .collect();
                let i = candidates[pick(&mut rng, candidates.len())];
                spec.sends[i].route = CertRoute::Rule("no-such-rule");
                format!("re-routed `{}` to a missing rule", spec.sends[i].id)
            }
            SpecPerturbation::RoundSkip => {
                spec.round_advance *= 2;
                format!("round advance doubled to {}", spec.round_advance)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_perturbation_changes_the_spec() {
        for p in SpecPerturbation::all() {
            for seed in 0..5 {
                let mut spec = if p == SpecPerturbation::RoundSkip {
                    ProtocolSpec::crash_hr()
                } else {
                    ProtocolSpec::transformed()
                };
                let clean = spec.clone();
                let what = p.apply(&mut spec, seed);
                assert_ne!(
                    spec,
                    clean,
                    "{} (seed {seed}) was a no-op: {what}",
                    p.label()
                );
            }
        }
    }

    #[test]
    fn perturbations_are_seed_deterministic() {
        for p in SpecPerturbation::all() {
            let mut a = ProtocolSpec::transformed();
            let mut b = ProtocolSpec::transformed();
            let da = p.apply(&mut a, 41);
            let db = p.apply(&mut b, 41);
            assert_eq!(a, b);
            assert_eq!(da, db);
        }
    }
}
