//! Aggregation of every check into one no-float JSON report.
//!
//! The document is built with [`ftm_sim::report::Json`], the same
//! byte-stable integer-only model the sweep harness emits — CI treats the
//! two uniformly and can diff reports across commits.

use ftm_sim::report::Json;

use crate::checks::{DeterminismReport, TotalityReport};
use crate::coverage::CoverageReport;
use crate::diff::DiffReport;
use crate::mutation::MutationReport;
use crate::soundness::SoundnessReport;

/// Everything `ftm-verify` proved (or failed to prove) in one run.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Determinism of the derived transition relation.
    pub determinism: DeterminismReport,
    /// Totality of the derived transition relation.
    pub totality: TotalityReport,
    /// Derived vs. hand-written automaton diff.
    pub diff: DiffReport,
    /// Bounded soundness over compliant traces.
    pub soundness: SoundnessReport,
    /// Static mutation analysis (detection completeness).
    pub mutation: MutationReport,
    /// Certificate-rule coverage.
    pub coverage: CoverageReport,
}

impl VerifyReport {
    /// `true` when every check passed with nothing vacuous: the CI gate.
    pub fn ok(&self) -> bool {
        self.determinism.conflicts.is_empty()
            && self.determinism.pairs > 0
            && self.totality.gaps.is_empty()
            && self.totality.pairs > 0
            && self.diff.mismatches.is_empty()
            && self.diff.probes > 0
            && self.soundness.false_convictions.is_empty()
            && self.soundness.requirement_mismatches.is_empty()
            && self.soundness.traces > 0
            && self.mutation.all_killed()
            && self.coverage.ok()
    }

    /// Renders the report as the byte-stable JSON document.
    pub fn to_json(&self) -> Json {
        let strings = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());

        let mutation_ops = Json::Obj(
            self.mutation
                .operators
                .iter()
                .map(|(op, s)| {
                    (
                        op.label().to_string(),
                        Json::Obj(vec![
                            ("generated".into(), Json::U64(s.generated)),
                            ("equivalent".into(), Json::U64(s.equivalent)),
                            ("killed".into(), Json::U64(s.killed)),
                            ("survived".into(), Json::U64(s.survived)),
                        ]),
                    )
                })
                .collect(),
        );

        Json::Obj(vec![
            (
                "determinism".into(),
                Json::Obj(vec![
                    ("pairs".into(), Json::U64(self.determinism.pairs)),
                    ("conflicts".into(), strings(&self.determinism.conflicts)),
                ]),
            ),
            (
                "totality".into(),
                Json::Obj(vec![
                    ("pairs".into(), Json::U64(self.totality.pairs)),
                    ("gaps".into(), strings(&self.totality.gaps)),
                ]),
            ),
            (
                "automaton-diff".into(),
                Json::Obj(vec![
                    ("edges".into(), Json::U64(self.diff.edges)),
                    ("probes".into(), Json::U64(self.diff.probes)),
                    ("mismatches".into(), strings(&self.diff.mismatches)),
                ]),
            ),
            (
                "soundness".into(),
                Json::Obj(vec![
                    ("round-bound".into(), Json::U64(self.soundness.max_rounds)),
                    ("traces".into(), Json::U64(self.soundness.traces)),
                    ("steps".into(), Json::U64(self.soundness.steps)),
                    (
                        "false-convictions".into(),
                        strings(&self.soundness.false_convictions),
                    ),
                    (
                        "requirement-mismatches".into(),
                        strings(&self.soundness.requirement_mismatches),
                    ),
                ]),
            ),
            (
                "mutation".into(),
                Json::Obj(vec![
                    ("round-bound".into(), Json::U64(self.mutation.max_rounds)),
                    ("bases".into(), Json::U64(self.mutation.bases)),
                    ("divergent".into(), Json::U64(self.mutation.divergent())),
                    ("operators".into(), mutation_ops),
                    ("survivors".into(), strings(&self.mutation.survivors)),
                ]),
            ),
            (
                "certificate-coverage".into(),
                Json::Obj(vec![
                    ("sends".into(), Json::U64(self.coverage.sends)),
                    ("rules".into(), Json::U64(self.coverage.rules)),
                    (
                        "uncovered-sends".into(),
                        strings(&self.coverage.uncovered_sends),
                    ),
                    ("dead-rules".into(), strings(&self.coverage.dead_rules)),
                    (
                        "uncertified-noninitial".into(),
                        strings(&self.coverage.uncertified_noninitial),
                    ),
                ]),
            ),
            ("ok".into(), Json::Bool(self.ok())),
        ])
    }
}
