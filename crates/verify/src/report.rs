//! Aggregation of every check into one no-float JSON report.
//!
//! The document is built with [`ftm_sim::report::Json`], the same
//! byte-stable integer-only model the sweep harness emits — CI treats the
//! two uniformly and can diff reports across commits. The top level holds
//! one section per verified spec plus the cross-spec refinement section:
//!
//! ```text
//! { "specs": { "transformed": {…}, "crash": {…}, "derived": {…} },
//!   "refinement": {…}, "ok": true }
//! ```

use ftm_sim::report::Json;

use crate::checks::{DeterminismReport, TotalityReport};
use crate::coverage::CoverageReport;
use crate::diff::DiffReport;
use crate::lineage::LineageReport;
use crate::mutation::MutationReport;
use crate::quorum::QuorumReport;
use crate::refinement::RefinementReport;
use crate::soundness::SoundnessReport;

fn strings(v: &[String]) -> Json {
    Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect())
}

/// Everything `ftm-verify` proved (or failed to prove) about one spec.
#[derive(Debug, Clone)]
pub struct SpecReport {
    /// Determinism of the derived transition relation.
    pub determinism: DeterminismReport,
    /// Totality of the derived transition relation.
    pub totality: TotalityReport,
    /// Derived vs. hand-written automaton diff — only for specs that
    /// project onto the hand-written Fig. 4 shape.
    pub diff: Option<DiffReport>,
    /// Bounded soundness over compliant traces.
    pub soundness: SoundnessReport,
    /// Static mutation analysis (detection completeness) — needs the
    /// hand-written reference as the killer, so only for Fig. 4 specs.
    pub mutation: Option<MutationReport>,
    /// Certificate-rule coverage.
    pub coverage: CoverageReport,
    /// Certificate-lineage flow analysis.
    pub lineage: LineageReport,
}

impl SpecReport {
    /// `true` when every check that ran passed with nothing vacuous.
    pub fn ok(&self) -> bool {
        self.determinism.conflicts.is_empty()
            && self.determinism.pairs > 0
            && self.totality.gaps.is_empty()
            && self.totality.pairs > 0
            && self
                .diff
                .as_ref()
                .is_none_or(|d| d.mismatches.is_empty() && d.probes > 0)
            && self.soundness.false_convictions.is_empty()
            && self.soundness.requirement_mismatches.is_empty()
            && self.soundness.traces > 0
            && self
                .mutation
                .as_ref()
                .is_none_or(MutationReport::all_killed)
            && self.coverage.ok()
            && self.lineage.ok()
    }

    /// Renders this spec's section of the JSON document.
    pub fn to_json(&self) -> Json {
        let diff = match &self.diff {
            None => Json::Null,
            Some(d) => Json::Obj(vec![
                ("edges".into(), Json::U64(d.edges)),
                ("probes".into(), Json::U64(d.probes)),
                ("mismatches".into(), strings(&d.mismatches)),
            ]),
        };
        let mutation = match &self.mutation {
            None => Json::Null,
            Some(m) => {
                let ops = Json::Obj(
                    m.operators
                        .iter()
                        .map(|(op, s)| {
                            (
                                op.label().to_string(),
                                Json::Obj(vec![
                                    ("generated".into(), Json::U64(s.generated)),
                                    ("equivalent".into(), Json::U64(s.equivalent)),
                                    ("killed".into(), Json::U64(s.killed)),
                                    ("survived".into(), Json::U64(s.survived)),
                                ]),
                            )
                        })
                        .collect(),
                );
                Json::Obj(vec![
                    ("round-bound".into(), Json::U64(m.max_rounds)),
                    ("bases".into(), Json::U64(m.bases)),
                    ("divergent".into(), Json::U64(m.divergent())),
                    ("operators".into(), ops),
                    ("survivors".into(), strings(&m.survivors)),
                ])
            }
        };

        Json::Obj(vec![
            (
                "determinism".into(),
                Json::Obj(vec![
                    ("pairs".into(), Json::U64(self.determinism.pairs)),
                    ("conflicts".into(), strings(&self.determinism.conflicts)),
                ]),
            ),
            (
                "totality".into(),
                Json::Obj(vec![
                    ("pairs".into(), Json::U64(self.totality.pairs)),
                    ("gaps".into(), strings(&self.totality.gaps)),
                ]),
            ),
            ("automaton-diff".into(), diff),
            (
                "soundness".into(),
                Json::Obj(vec![
                    ("round-bound".into(), Json::U64(self.soundness.max_rounds)),
                    ("traces".into(), Json::U64(self.soundness.traces)),
                    ("steps".into(), Json::U64(self.soundness.steps)),
                    (
                        "hand-checked".into(),
                        Json::Bool(self.soundness.hand_checked),
                    ),
                    (
                        "false-convictions".into(),
                        strings(&self.soundness.false_convictions),
                    ),
                    (
                        "requirement-mismatches".into(),
                        strings(&self.soundness.requirement_mismatches),
                    ),
                ]),
            ),
            ("mutation".into(), mutation),
            (
                "certificate-coverage".into(),
                Json::Obj(vec![
                    ("sends".into(), Json::U64(self.coverage.sends)),
                    ("rules".into(), Json::U64(self.coverage.rules)),
                    (
                        "trusted-sends".into(),
                        Json::U64(self.coverage.trusted_sends),
                    ),
                    (
                        "uncovered-sends".into(),
                        strings(&self.coverage.uncovered_sends),
                    ),
                    ("dead-rules".into(), strings(&self.coverage.dead_rules)),
                    (
                        "uncertified-noninitial".into(),
                        strings(&self.coverage.uncertified_noninitial),
                    ),
                ]),
            ),
            (
                "lineage".into(),
                Json::Obj(vec![
                    ("sends".into(), Json::U64(self.lineage.sends)),
                    ("edges".into(), Json::U64(self.lineage.edges)),
                    ("roots".into(), Json::U64(self.lineage.roots)),
                    ("trusted".into(), Json::Bool(self.lineage.trusted)),
                    ("dangling".into(), strings(&self.lineage.dangling)),
                    ("unjustified".into(), strings(&self.lineage.unjustified)),
                    ("dead-routes".into(), strings(&self.lineage.dead_routes)),
                    ("cycles".into(), strings(&self.lineage.cycles)),
                ]),
            ),
            ("ok".into(), Json::Bool(self.ok())),
        ])
    }
}

/// The full multi-spec run: one section per spec plus one refinement
/// section per protocol.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Per-spec reports, keyed by spec label, in CLI order.
    pub specs: Vec<(&'static str, SpecReport)>,
    /// The cross-spec refinement checks, keyed by protocol label
    /// (`"hr"`, `"ct"`), in [`ftm_certify::ProtocolId::all`] order.
    pub refinements: Vec<(&'static str, RefinementReport)>,
    /// The exhaustive quorum-algebra check (grid `n <= 64`).
    pub quorum: QuorumReport,
}

impl VerifyReport {
    /// `true` when every per-spec check and every refinement passed: the
    /// CI gate.
    pub fn ok(&self) -> bool {
        !self.specs.is_empty()
            && self.specs.iter().all(|(_, s)| s.ok())
            && !self.refinements.is_empty()
            && self.refinements.iter().all(|(_, r)| r.ok())
            && self.quorum.ok()
    }

    /// The report for the spec labelled `label`, if it was verified.
    pub fn spec(&self, label: &str) -> Option<&SpecReport> {
        self.specs.iter().find(|(l, _)| *l == label).map(|(_, s)| s)
    }

    /// The refinement report for the protocol labelled `label` (`"hr"`,
    /// `"ct"`), if present.
    pub fn refinement(&self, label: &str) -> Option<&RefinementReport> {
        self.refinements
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, r)| r)
    }

    fn refinement_json(r: &RefinementReport) -> Json {
        Json::Obj(vec![
            ("bound".into(), Json::U64(r.bound)),
            (
                "derivation".into(),
                Json::Obj(vec![
                    ("sends".into(), Json::U64(r.derivation_sends)),
                    ("edges".into(), Json::U64(r.derivation_edges)),
                    ("mismatches".into(), strings(&r.derivation_mismatches)),
                ]),
            ),
            (
                "completeness".into(),
                Json::Obj(vec![
                    ("crash-traces".into(), Json::U64(r.crash_traces)),
                    ("lifted-steps".into(), Json::U64(r.lifted_steps)),
                    ("violations".into(), strings(&r.completeness_violations)),
                ]),
            ),
            (
                "soundness-gain".into(),
                Json::Obj(vec![
                    ("product-states".into(), Json::U64(r.product_states)),
                    ("containment-breaks".into(), strings(&r.containment_breaks)),
                    (
                        "detection-regressions".into(),
                        strings(&r.detection_regressions),
                    ),
                    ("gain".into(), Json::U64(r.gain)),
                    ("gain-witnesses".into(), strings(&r.gain_witnesses)),
                ]),
            ),
            ("ok".into(), Json::Bool(r.ok())),
        ])
    }

    fn quorum_json(q: &QuorumReport) -> Json {
        Json::Obj(vec![
            ("pairs".into(), Json::U64(q.pairs)),
            ("exhaustive-pairs".into(), Json::U64(q.exhaustive_pairs)),
            (
                "zones".into(),
                Json::Obj(vec![
                    ("certified".into(), Json::U64(q.certified_zone)),
                    ("degraded".into(), Json::U64(q.degraded_zone)),
                    ("broken".into(), Json::U64(q.broken_zone)),
                ]),
            ),
            ("cert-witnesses".into(), strings(&q.cert_witnesses)),
            ("disjoint-witnesses".into(), strings(&q.disjoint_witnesses)),
            ("mismatches".into(), strings(&q.mismatches)),
            ("ok".into(), Json::Bool(q.ok())),
        ])
    }

    /// Renders the report as the byte-stable JSON document.
    pub fn to_json(&self) -> Json {
        let specs = Json::Obj(
            self.specs
                .iter()
                .map(|(label, s)| ((*label).to_string(), s.to_json()))
                .collect(),
        );
        let refinement = Json::Obj(
            self.refinements
                .iter()
                .map(|(label, r)| ((*label).to_string(), Self::refinement_json(r)))
                .collect(),
        );
        Json::Obj(vec![
            ("specs".into(), specs),
            ("refinement".into(), refinement),
            ("quorum".into(), Self::quorum_json(&self.quorum)),
            ("ok".into(), Json::Bool(self.ok())),
        ])
    }
}
