//! Certificate-lineage flow analysis: the justification graph.
//!
//! [`crate::coverage`] checks the *local* obligation — every conditional
//! send names an audit rule. This module checks the *global* one: the
//! certificates form a connected chain of evidence. Each
//! [`ftm_core::spec::ConditionalSend`] declares which sends' signed output appears in its
//! certificate (`justified_by`); those edges form a directed graph, and
//! the paper's discipline translates into four graph properties:
//!
//! * **no dangling evidence** — every cited send id exists;
//! * **value lineage** — every value-carrying send is reachable from a
//!   vector-certification root, i.e. every vector a message can carry
//!   traces back, certificate by certificate, to the signed initial
//!   values of the round-0 phase (§5.2). The crash model has no roots and
//!   skips this check: receivers trust values, which is exactly why
//!   classical Validity turns vacuous under arbitrary failures;
//! * **no dead route** — every non-terminal send's output is cited by
//!   some other send's certificate; evidence that justifies nothing
//!   downstream is a dead certificate route (the terminal is exempt:
//!   nothing follows a decision);
//! * **well-foundedness** — the same-round subgraph is acyclic. Edges
//!   carrying previous-round or round-0 evidence may close cycles across
//!   rounds (round-`r` entry cites `NEXT(r−1)`, which cited
//!   `CURRENT(r−1)`, …) — those are well-founded because the round
//!   strictly decreases and bottoms out at round 0. A cycle made of
//!   same-round edges only is vicious: two certificates would each be the
//!   other's evidence.

use std::collections::{BTreeMap, BTreeSet};

use ftm_core::spec::{CertRoute, EvidencePhase, ProtocolSpec};

/// Result of the lineage analysis.
#[derive(Debug, Clone, Default)]
pub struct LineageReport {
    /// Conditional sends (graph nodes).
    pub sends: u64,
    /// Justification edges.
    pub edges: u64,
    /// Vector-certification roots.
    pub roots: u64,
    /// `true` when every route is trusted (crash model): value lineage is
    /// skipped, structural checks still run.
    pub trusted: bool,
    /// Justifications citing a send id that does not exist (must be
    /// empty).
    pub dangling: Vec<String>,
    /// Value-carrying sends with no evidence path back to a
    /// vector-certification root (must be empty).
    pub unjustified: Vec<String>,
    /// Non-terminal sends whose output no certificate cites (must be
    /// empty).
    pub dead_routes: Vec<String>,
    /// Same-round justification cycles, rendered as `a -> b -> a` (must
    /// be empty).
    pub cycles: Vec<String>,
}

impl LineageReport {
    /// `true` when the graph is fully justified and nothing was vacuous.
    pub fn ok(&self) -> bool {
        self.sends > 0
            && (self.trusted || self.roots > 0)
            && self.dangling.is_empty()
            && self.unjustified.is_empty()
            && self.dead_routes.is_empty()
            && self.cycles.is_empty()
    }
}

/// Runs the lineage analysis over `spec`'s conditional-send table.
pub fn check_lineage(spec: &ProtocolSpec) -> LineageReport {
    let sends = spec.conditional_sends();
    let ids: BTreeSet<&str> = sends.iter().map(|s| s.id).collect();
    let mut report = LineageReport {
        sends: sends.len() as u64,
        trusted: sends.iter().all(|s| s.route == CertRoute::Trusted),
        ..LineageReport::default()
    };

    // Edges (justifier -> justified), dangling detection, citation counts.
    let mut cited: BTreeMap<&str, u64> = sends.iter().map(|s| (s.id, 0)).collect();
    let mut forward: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut forward_same: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for send in &sends {
        for j in &send.justified_by {
            report.edges += 1;
            if !ids.contains(j.by) {
                report.dangling.push(format!(
                    "send `{}` cites `{}` ({} evidence), which does not exist",
                    send.id,
                    j.by,
                    j.phase.label()
                ));
                continue;
            }
            *cited.entry(j.by).or_default() += 1;
            forward.entry(j.by).or_default().push(send.id);
            if j.phase == EvidencePhase::SameRound {
                forward_same.entry(j.by).or_default().push(send.id);
            }
        }
    }

    // Value lineage: reachability from the justification roots — the
    // vector-certification phase (round-0 signed initial values) and any
    // checkpoint-compaction send (a quorum-signed digest that replaces
    // the certificate prefix behind it, legitimately restarting the
    // chain; see `CertRoute::CheckpointRoot`).
    let roots: Vec<&str> = sends
        .iter()
        .filter(|s| {
            matches!(
                s.route,
                CertRoute::VectorCertification(_) | CertRoute::CheckpointRoot(_)
            )
        })
        .map(|s| s.id)
        .collect();
    report.roots = roots.len() as u64;
    if !report.trusted {
        let mut reached: BTreeSet<&str> = BTreeSet::new();
        let mut frontier: Vec<&str> = roots.clone();
        while let Some(id) = frontier.pop() {
            if reached.insert(id) {
                if let Some(next) = forward.get(id) {
                    frontier.extend(next.iter().copied());
                }
            }
        }
        for send in &sends {
            if send.carries_value && !reached.contains(send.id) {
                report.unjustified.push(format!(
                    "send `{}` ({}) carries a value with no lineage back to a \
                     vector-certified root",
                    send.id, send.kind
                ));
            }
        }
    }

    // Dead routes: non-terminal evidence nobody cites.
    for send in &sends {
        if send.kind != spec.terminal && cited[send.id] == 0 {
            report.dead_routes.push(format!(
                "send `{}` ({}) justifies no downstream certificate (dead route)",
                send.id, send.kind
            ));
        }
    }

    // Same-round cycles: three-color DFS over the same-round subgraph, in
    // deterministic (send-table) order.
    let order: Vec<&str> = sends.iter().map(|s| s.id).collect();
    let mut color: BTreeMap<&str, u8> = order.iter().map(|id| (*id, 0u8)).collect();
    let mut stack: Vec<&str> = Vec::new();
    for &start in &order {
        if color[start] == 0 {
            dfs_cycles(
                start,
                &forward_same,
                &mut color,
                &mut stack,
                &mut report.cycles,
            );
        }
    }

    report
}

fn dfs_cycles<'a>(
    node: &'a str,
    forward_same: &BTreeMap<&'a str, Vec<&'a str>>,
    color: &mut BTreeMap<&'a str, u8>,
    stack: &mut Vec<&'a str>,
    cycles: &mut Vec<String>,
) {
    color.insert(node, 1);
    stack.push(node);
    if let Some(next) = forward_same.get(node) {
        for &to in next {
            match color.get(to).copied().unwrap_or(2) {
                0 => dfs_cycles(to, forward_same, color, stack, cycles),
                1 => {
                    let from = stack.iter().position(|&n| n == to).unwrap_or(0);
                    let mut path: Vec<&str> = stack[from..].to_vec();
                    path.push(to);
                    cycles.push(format!(
                        "same-round justification cycle: {}",
                        path.join(" -> ")
                    ));
                }
                _ => {}
            }
        }
    }
    stack.pop();
    color.insert(node, 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_core::spec::{transform, Justification};

    #[test]
    fn transformed_lineage_is_fully_justified() {
        let report = check_lineage(&ProtocolSpec::transformed());
        assert!(
            report.ok(),
            "dangling={:?} unjustified={:?} dead={:?} cycles={:?}",
            report.dangling,
            report.unjustified,
            report.dead_routes,
            report.cycles
        );
        assert!(!report.trusted);
        assert_eq!(report.roots, 1);
        assert!(report.edges >= 10, "got {} edges", report.edges);
    }

    #[test]
    fn crash_lineage_is_trusted_but_structurally_clean() {
        let report = check_lineage(&ProtocolSpec::crash_hr());
        assert!(report.ok(), "{report:?}");
        assert!(report.trusted);
        assert_eq!(report.roots, 0);
    }

    #[test]
    fn derived_spec_lineage_matches_the_hand_written_one() {
        let derived = check_lineage(&transform(&ProtocolSpec::crash_hr()));
        assert!(derived.ok(), "{derived:?}");
        assert_eq!(derived.roots, 1);
    }

    #[test]
    fn checkpointed_specs_add_one_root_and_stay_justified() {
        for protocol in ftm_certify::ProtocolId::all() {
            let report = check_lineage(&ProtocolSpec::checkpointed_for(protocol));
            assert!(
                report.ok(),
                "{protocol}: dangling={:?} unjustified={:?} dead={:?} cycles={:?}",
                report.dangling,
                report.unjustified,
                report.dead_routes,
                report.cycles
            );
            // Vector certification plus the checkpoint-compaction root.
            assert_eq!(report.roots, 2, "{protocol}");
            let base = check_lineage(&ProtocolSpec::transformed_for(protocol));
            assert_eq!(report.sends, base.sends + 1, "{protocol}");
            assert_eq!(report.edges, base.edges + 1, "{protocol}");
        }
    }

    #[test]
    fn a_checkpoint_citing_nothing_leaves_the_decision_dead() {
        // The checkpoint must cite the decision whose quorum it compacts;
        // cutting that edge strands `decide-announce` (no longer the
        // terminal in a compacted log) as a dead route.
        let mut spec = ProtocolSpec::checkpointed_for(ftm_certify::ProtocolId::HurfinRaynal);
        spec.sends
            .iter_mut()
            .find(|s| s.id == "checkpoint-quorum")
            .unwrap()
            .justified_by
            .clear();
        let report = check_lineage(&spec);
        assert!(
            report
                .dead_routes
                .iter()
                .any(|s| s.contains("decide-announce")),
            "{:?}",
            report.dead_routes
        );
    }

    #[test]
    fn dropping_a_value_route_is_unjustified() {
        let mut spec = ProtocolSpec::transformed();
        let relay = spec
            .sends
            .iter_mut()
            .find(|s| s.id == "current-relay")
            .unwrap();
        relay.justified_by.clear();
        let report = check_lineage(&spec);
        assert!(
            report
                .unjustified
                .iter()
                .any(|s| s.contains("current-relay")),
            "{:?}",
            report.unjustified
        );
    }

    #[test]
    fn a_same_round_cycle_is_reported_but_cross_round_backing_is_not() {
        // The legitimate graph already has cross-round "cycles" (NEXT of
        // round r−1 backs CURRENT of round r which backs NEXT of round r):
        // those are well-founded and must NOT be reported. An injected
        // same-round back edge must be.
        let mut spec = ProtocolSpec::transformed();
        assert!(check_lineage(&spec).cycles.is_empty());
        let susp = spec
            .sends
            .iter_mut()
            .find(|s| s.id == "next-suspicion")
            .unwrap();
        susp.justified_by
            .push(Justification::same("next-end-of-round"));
        let report = check_lineage(&spec);
        assert!(
            report.cycles.iter().any(|c| c.contains("next-suspicion")),
            "{:?}",
            report.cycles
        );
    }

    #[test]
    fn an_uncited_send_is_a_dead_route() {
        let mut spec = ProtocolSpec::transformed();
        // Cut every citation of next-end-of-round.
        for send in &mut spec.sends {
            send.justified_by.retain(|j| j.by != "next-end-of-round");
        }
        let report = check_lineage(&spec);
        assert!(
            report
                .dead_routes
                .iter()
                .any(|s| s.contains("next-end-of-round")),
            "{:?}",
            report.dead_routes
        );
    }
}
