//! Certificate-rule coverage: §5's obligation table, checked statically.
//!
//! The paper's certification discipline demands that every *conditional
//! send* of the protocol be auditable: the receiver must be able to
//! re-derive the enabling condition from the attached certificate. Two
//! artifacts state the two sides of that contract — the conditional-send
//! table in `ftm_core::spec` (what the protocol sends and when) and the
//! rule table in `ftm_certify::rules` (what the analyzer can audit). They
//! are maintained independently, next to the code they describe; this
//! module diffs them:
//!
//! * every certified conditional send names an existing rule of the same
//!   kind (no unaudited send);
//! * every rule is named by some send (no dead rule);
//! * the only sends whose *condition* is uncertifiable are initial-value
//!   broadcasts, routed through vector certification (paper §5.2).
//!
//! Un-transformed crash-model specs route every send through
//! [`CertRoute::Trusted`] — nothing is audited, which is legal *only* when
//! it is uniform: a spec mixing trusted and certified routes has
//! unaudited sends in a Byzantine model and every such send is reported.

use std::collections::BTreeMap;

use ftm_certify::rules::{certification_rules_for, certification_rules_with_checkpoint, RuleInfo};
use ftm_certify::MessageKind;
use ftm_core::spec::{CertRoute, ProtocolSpec};

/// Result of the coverage diff.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Conditional sends in the spec.
    pub sends: u64,
    /// Certification rules in the analyzer.
    pub rules: u64,
    /// Sends routed through [`CertRoute::Trusted`] (all of them for a
    /// crash-model spec, zero for a transformed one).
    pub trusted_sends: u64,
    /// Sends naming a missing or kind-mismatched rule, or trusted sends
    /// inside a partially-certified spec (must be empty).
    pub uncovered_sends: Vec<String>,
    /// Rules no send references (must be empty; skipped for fully trusted
    /// specs, whose sends reference no rules by design).
    pub dead_rules: Vec<String>,
    /// Uncertifiable sends that are not initial-value broadcasts (must be
    /// empty).
    pub uncertified_noninitial: Vec<String>,
}

impl CoverageReport {
    /// `true` when every check passed and the tables are non-empty. A
    /// fully trusted (crash-model) spec passes without referencing any
    /// rule; a certified spec must reference a non-empty rule table.
    pub fn ok(&self) -> bool {
        self.sends > 0
            && (self.trusted_sends == self.sends || self.rules > 0)
            && self.uncovered_sends.is_empty()
            && self.dead_rules.is_empty()
            && self.uncertified_noninitial.is_empty()
    }
}

/// Diffs the spec's conditional-send table against the analyzer's rule
/// table for the spec's protocol.
pub fn check_coverage(spec: &ProtocolSpec) -> CoverageReport {
    let sends = spec.conditional_sends();
    // A spec with a checkpoint-compaction send is audited against the
    // rule table extended with the shared `checkpoint-quorum` rule; base
    // specs keep the base table, so the transform's bijection over
    // single-shot consensus is unaffected.
    let rules: Vec<RuleInfo> = if sends.iter().any(|s| s.kind == MessageKind::Checkpoint) {
        certification_rules_with_checkpoint(spec.protocol)
    } else {
        certification_rules_for(spec.protocol).to_vec()
    };
    let mut report = CoverageReport {
        sends: sends.len() as u64,
        rules: rules.len() as u64,
        trusted_sends: sends
            .iter()
            .filter(|s| s.route == CertRoute::Trusted)
            .count() as u64,
        ..CoverageReport::default()
    };
    let fully_trusted = report.trusted_sends == report.sends;

    let rule_by_id: BTreeMap<&str, _> = rules.iter().map(|r| (r.id, r)).collect();
    let mut referenced: BTreeMap<&str, u64> = rules.iter().map(|r| (r.id, 0)).collect();

    for send in &sends {
        let Some(rule_id) = send.route.rule_id() else {
            if !fully_trusted {
                report.uncovered_sends.push(format!(
                    "send `{}` ({}) is trusted inside a certified spec",
                    send.id, send.kind
                ));
            }
            continue;
        };
        match rule_by_id.get(rule_id) {
            None => report.uncovered_sends.push(format!(
                "send `{}` ({}) names missing rule `{rule_id}`",
                send.id, send.kind
            )),
            Some(rule) => {
                *referenced.entry(rule_id).or_default() += 1;
                if rule.kind != send.kind {
                    report.uncovered_sends.push(format!(
                        "send `{}` is {} but rule `{rule_id}` audits {}",
                        send.id, send.kind, rule.kind
                    ));
                }
            }
        }
        if !send.route.condition_certifiable() && Some(send.kind) != spec.opening {
            report.uncertified_noninitial.push(format!(
                "send `{}` ({}) is uncertifiable but not an initial value",
                send.id, send.kind
            ));
        }
    }
    if !fully_trusted {
        for (id, count) in referenced {
            if count == 0 {
                report
                    .dead_rules
                    .push(format!("rule `{id}` audits no conditional send"));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_spec_is_fully_covered() {
        let report = check_coverage(&ProtocolSpec::transformed());
        assert!(
            report.ok(),
            "coverage failed: uncovered={:?} dead={:?} uncertified={:?}",
            report.uncovered_sends,
            report.dead_rules,
            report.uncertified_noninitial
        );
        assert_eq!(report.trusted_sends, 0);
        assert_eq!(report.sends, report.rules, "tables should be a bijection");
    }

    #[test]
    fn transformed_ct_spec_is_fully_covered_by_its_own_rule_table() {
        let report = check_coverage(&ProtocolSpec::transformed_ct());
        assert!(
            report.ok(),
            "CT coverage failed: uncovered={:?} dead={:?} uncertified={:?}",
            report.uncovered_sends,
            report.dead_rules,
            report.uncertified_noninitial
        );
        assert_eq!(report.trusted_sends, 0);
        assert_eq!(
            report.sends, report.rules,
            "CT tables should be a bijection"
        );
    }

    #[test]
    fn checkpointed_specs_stay_a_bijection_with_the_extended_table() {
        for protocol in ftm_certify::ProtocolId::all() {
            let report = check_coverage(&ProtocolSpec::checkpointed_for(protocol));
            assert!(
                report.ok(),
                "{protocol}: uncovered={:?} dead={:?} uncertified={:?}",
                report.uncovered_sends,
                report.dead_rules,
                report.uncertified_noninitial
            );
            assert_eq!(report.trusted_sends, 0, "{protocol}");
            assert_eq!(
                report.sends, report.rules,
                "{protocol}: checkpointed tables should stay a bijection"
            );
            let base = check_coverage(&ProtocolSpec::transformed_for(protocol));
            assert_eq!(report.sends, base.sends + 1, "{protocol}");
        }
    }

    #[test]
    fn crash_spec_is_uniformly_trusted() {
        let report = check_coverage(&ProtocolSpec::crash_hr());
        assert!(report.ok(), "uncovered={:?}", report.uncovered_sends);
        assert_eq!(report.trusted_sends, report.sends);
        assert!(
            report.dead_rules.is_empty(),
            "dead-rule check must be skipped"
        );
    }

    #[test]
    fn a_trusted_send_inside_a_certified_spec_is_flagged() {
        let mut spec = ProtocolSpec::transformed();
        spec.sends[3].route = CertRoute::Trusted;
        let report = check_coverage(&spec);
        assert!(!report.ok());
        assert!(
            report
                .uncovered_sends
                .iter()
                .any(|s| s.contains("trusted inside a certified spec")),
            "{:?}",
            report.uncovered_sends
        );
    }
}
