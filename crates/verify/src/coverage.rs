//! Certificate-rule coverage: §5's obligation table, checked statically.
//!
//! The paper's certification discipline demands that every *conditional
//! send* of the protocol be auditable: the receiver must be able to
//! re-derive the enabling condition from the attached certificate. Two
//! artifacts state the two sides of that contract — the conditional-send
//! table in `ftm_core::spec` (what the protocol sends and when) and the
//! rule table in `ftm_certify::rules` (what the analyzer can audit). They
//! are maintained independently, next to the code they describe; this
//! module diffs them:
//!
//! * every conditional send names an existing rule of the same kind
//!   (no unaudited send);
//! * every rule is named by some send (no dead rule);
//! * the only sends whose *condition* is uncertifiable are initial-value
//!   broadcasts, routed through vector certification (paper §5.2).

use std::collections::BTreeMap;

use ftm_certify::rules::certification_rules;
use ftm_core::spec::ProtocolSpec;

/// Result of the coverage diff.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Conditional sends in the spec.
    pub sends: u64,
    /// Certification rules in the analyzer.
    pub rules: u64,
    /// Sends naming a missing or kind-mismatched rule (must be empty).
    pub uncovered_sends: Vec<String>,
    /// Rules no send references (must be empty).
    pub dead_rules: Vec<String>,
    /// Uncertifiable sends that are not initial-value broadcasts (must be
    /// empty).
    pub uncertified_noninitial: Vec<String>,
}

impl CoverageReport {
    /// `true` when every check passed and the tables are non-empty.
    pub fn ok(&self) -> bool {
        self.sends > 0
            && self.rules > 0
            && self.uncovered_sends.is_empty()
            && self.dead_rules.is_empty()
            && self.uncertified_noninitial.is_empty()
    }
}

/// Diffs the spec's conditional-send table against the analyzer's rule
/// table.
pub fn check_coverage(spec: &ProtocolSpec) -> CoverageReport {
    let sends = spec.conditional_sends();
    let rules = certification_rules();
    let mut report = CoverageReport {
        sends: sends.len() as u64,
        rules: rules.len() as u64,
        ..CoverageReport::default()
    };

    let rule_by_id: BTreeMap<&str, _> = rules.iter().map(|r| (r.id, r)).collect();
    let mut referenced: BTreeMap<&str, u64> = rules.iter().map(|r| (r.id, 0)).collect();

    for send in &sends {
        let rule_id = send.route.rule_id();
        match rule_by_id.get(rule_id) {
            None => report.uncovered_sends.push(format!(
                "send `{}` ({}) names missing rule `{rule_id}`",
                send.id, send.kind
            )),
            Some(rule) => {
                *referenced.entry(rule_id).or_default() += 1;
                if rule.kind != send.kind {
                    report.uncovered_sends.push(format!(
                        "send `{}` is {} but rule `{rule_id}` audits {}",
                        send.id, send.kind, rule.kind
                    ));
                }
            }
        }
        if !send.route.condition_certifiable() && send.kind != spec.opening {
            report.uncertified_noninitial.push(format!(
                "send `{}` ({}) is uncertifiable but not an initial value",
                send.id, send.kind
            ));
        }
    }
    for (id, count) in referenced {
        if count == 0 {
            report
                .dead_rules
                .push(format!("rule `{id}` audits no conditional send"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_spec_is_fully_covered() {
        let report = check_coverage(&ProtocolSpec::transformed());
        assert!(
            report.ok(),
            "coverage failed: uncovered={:?} dead={:?} uncertified={:?}",
            report.uncovered_sends,
            report.dead_rules,
            report.uncertified_noninitial
        );
        assert_eq!(report.sends, report.rules, "tables should be a bijection");
    }
}
