//! End-to-end negative tests: every seeded spec perturbation must be
//! rejected by the full driver with the diagnostic its checker owns.
//!
//! The unit tests inside each analysis module perturb specs by hand;
//! here the [`ftm_verify::perturb`] operators drive the *whole* pipeline
//! ([`ftm_verify::verify_spec`] / [`ftm_verify::refinement`]) the same way
//! CI does, across a seed range, so the gate demonstrably fails — with a
//! witness, not just a flag — on every class of broken transformation.

use ftm_core::spec::ProtocolSpec;
use ftm_verify::perturb::SpecPerturbation;
use ftm_verify::refinement::check_refinement;
use ftm_verify::{verify_spec, Bounds};

const SEEDS: [u64; 4] = [1, 7, 23, 90];

fn small() -> Bounds {
    Bounds {
        soundness_rounds: 3,
        mutation_rounds: 2,
    }
}

#[test]
fn dropped_routes_are_rejected_as_unjustified() {
    for seed in SEEDS {
        let mut spec = ProtocolSpec::transformed();
        let what = SpecPerturbation::DropRoute.apply(&mut spec, seed);
        let report = verify_spec(&spec, &small());
        assert!(!report.ok(), "seed {seed}: {what} passed the gate");
        assert!(
            report
                .lineage
                .unjustified
                .iter()
                .any(|d| d.contains("no lineage back to a vector-certified root"))
                || !report.lineage.dead_routes.is_empty(),
            "seed {seed}: {what} not caught by lineage: {:?}",
            report.lineage
        );
    }
}

#[test]
fn orphaned_sends_are_rejected_as_dangling() {
    for seed in SEEDS {
        let mut spec = ProtocolSpec::transformed();
        let what = SpecPerturbation::OrphanSend.apply(&mut spec, seed);
        let report = verify_spec(&spec, &small());
        assert!(!report.ok(), "seed {seed}: {what} passed the gate");
        assert!(
            report
                .lineage
                .dangling
                .iter()
                .any(|d| d.contains("does not exist")),
            "seed {seed}: {what} not caught as dangling: {:?}",
            report.lineage.dangling
        );
    }
}

#[test]
fn cyclic_routes_are_rejected_with_the_cycle_path() {
    for seed in SEEDS {
        let mut spec = ProtocolSpec::transformed();
        let what = SpecPerturbation::CyclicRoute.apply(&mut spec, seed);
        let report = verify_spec(&spec, &small());
        assert!(!report.ok(), "seed {seed}: {what} passed the gate");
        assert!(
            report
                .lineage
                .cycles
                .iter()
                .any(|c| c.contains("same-round justification cycle:") && c.contains(" -> ")),
            "seed {seed}: {what} not caught as a cycle: {:?}",
            report.lineage.cycles
        );
    }
}

#[test]
fn missing_rules_are_rejected_as_uncovered() {
    for seed in SEEDS {
        let mut spec = ProtocolSpec::transformed();
        let what = SpecPerturbation::MissingRule.apply(&mut spec, seed);
        let report = verify_spec(&spec, &small());
        assert!(!report.ok(), "seed {seed}: {what} passed the gate");
        assert!(
            report
                .coverage
                .uncovered_sends
                .iter()
                .any(|d| d.contains("names missing rule `no-such-rule`")),
            "seed {seed}: {what} not caught by coverage: {:?}",
            report.coverage.uncovered_sends
        );
    }
}

#[test]
fn round_skips_break_refinement_completeness_with_a_witness() {
    for seed in SEEDS {
        let mut crash = ProtocolSpec::crash_hr();
        let what = SpecPerturbation::RoundSkip.apply(&mut crash, seed);
        let report = check_refinement(&crash, &ProtocolSpec::transformed(), 4);
        assert!(!report.ok(), "seed {seed}: {what} passed refinement");
        assert!(
            report
                .completeness_violations
                .iter()
                .any(|v| v.contains("lifts to") && v.contains("convicted")),
            "seed {seed}: {what} produced no lift witness: {:?}",
            report.completeness_violations
        );
    }
}

#[test]
fn chandra_toueg_perturbations_are_rejected_by_the_same_checkers() {
    // The perturbation operators pick their targets from the spec's own
    // send table, so the same negative suite must hold over the second
    // protocol: a broken CT transformation may not pass the gate either.
    for p in [
        SpecPerturbation::DropRoute,
        SpecPerturbation::OrphanSend,
        SpecPerturbation::CyclicRoute,
        SpecPerturbation::MissingRule,
    ] {
        for seed in SEEDS {
            let mut spec = ProtocolSpec::transformed_ct();
            let what = p.apply(&mut spec, seed);
            let report = verify_spec(&spec, &small());
            assert!(
                !report.ok(),
                "{} seed {seed}: {what} passed the CT gate",
                p.label()
            );
            let caught = match p {
                SpecPerturbation::DropRoute => {
                    report
                        .lineage
                        .unjustified
                        .iter()
                        .any(|d| d.contains("no lineage back to a vector-certified root"))
                        || !report.lineage.dead_routes.is_empty()
                }
                SpecPerturbation::OrphanSend => report
                    .lineage
                    .dangling
                    .iter()
                    .any(|d| d.contains("does not exist")),
                SpecPerturbation::CyclicRoute => report
                    .lineage
                    .cycles
                    .iter()
                    .any(|c| c.contains("same-round justification cycle:")),
                SpecPerturbation::MissingRule => report
                    .coverage
                    .uncovered_sends
                    .iter()
                    .any(|d| d.contains("names missing rule `no-such-rule`")),
                SpecPerturbation::RoundSkip => unreachable!(),
            };
            assert!(
                caught,
                "{} seed {seed}: {what} not caught by its owning checker",
                p.label()
            );
        }
    }
}

#[test]
fn chandra_toueg_round_skips_break_refinement_completeness() {
    for seed in SEEDS {
        let mut crash = ProtocolSpec::crash_ct();
        let what = SpecPerturbation::RoundSkip.apply(&mut crash, seed);
        let report = check_refinement(&crash, &ProtocolSpec::transformed_ct(), 3);
        assert!(!report.ok(), "seed {seed}: {what} passed CT refinement");
        assert!(
            report
                .completeness_violations
                .iter()
                .any(|v| v.contains("lifts to") && v.contains("convicted")),
            "seed {seed}: {what} produced no lift witness: {:?}",
            report.completeness_violations
        );
    }
}

#[test]
fn refinement_witnesses_render_byte_stable() {
    let a = check_refinement(&ProtocolSpec::crash_hr(), &ProtocolSpec::transformed(), 4);
    let b = check_refinement(&ProtocolSpec::crash_hr(), &ProtocolSpec::transformed(), 4);
    assert_eq!(a.gain_witnesses, b.gain_witnesses);
    assert!(a.gain > 0);

    // Same stability through the perturbed (failing) path.
    let mut c1 = ProtocolSpec::crash_hr();
    let mut c2 = ProtocolSpec::crash_hr();
    SpecPerturbation::RoundSkip.apply(&mut c1, 5);
    SpecPerturbation::RoundSkip.apply(&mut c2, 5);
    let r1 = check_refinement(&c1, &ProtocolSpec::transformed(), 3);
    let r2 = check_refinement(&c2, &ProtocolSpec::transformed(), 3);
    assert_eq!(r1.completeness_violations, r2.completeness_violations);
    assert!(!r1.completeness_violations.is_empty());
}
