//! Problem specifications: Consensus and Vector Consensus.
//!
//! The crash-model protocol solves classical consensus:
//!
//! * **Termination** — every correct process eventually decides;
//! * **Agreement** — no two correct processes decide differently;
//! * **Validity** — the decided value was proposed by some process.
//!
//! In the arbitrary-failure model the classical Validity property is
//! vacuous — a faulty process can propose an "irrelevant" value while
//! otherwise behaving correctly, and nobody can tell (paper §1). The
//! transformed protocol therefore solves **Vector Consensus**
//! (Doudou–Schiper Vector Validity):
//!
//! * every process decides a vector `vect` of size `n`;
//! * for every correct `p_i`: `vect[i] = v_i` or `vect[i] = null`;
//! * at least `ψ ≥ 1` entries of `vect` are initial values of correct
//!   processes, with `ψ = n − 2F` under the paper's resilience bound.

use ftm_certify::{MessageKind, Round};

/// One per-round send slot of the protocol's send discipline.
///
/// A correct process works through the slots of a round *in order*, sending
/// each slot's kind at most once; `mandatory` slots must be sent before the
/// process may leave the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSlot {
    /// The message kind this slot emits.
    pub kind: MessageKind,
    /// Whether a correct process must send this before advancing rounds.
    pub mandatory: bool,
}

/// How a conditional send is audited by the certification module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertRoute {
    /// The send's enabling condition is certifiable: the named
    /// `ftm-certify` rule re-derives it from the attached certificate.
    Rule(&'static str),
    /// The value itself cannot be certified (nobody can audit what a
    /// process's initial value "should" be); the round-0 vector
    /// certification phase bounds the damage instead. The named rule
    /// still audits the send's *structure*.
    VectorCertification(&'static str),
}

impl CertRoute {
    /// The id of the `ftm-certify` rule auditing this send.
    pub fn rule_id(&self) -> &'static str {
        match self {
            CertRoute::Rule(id) | CertRoute::VectorCertification(id) => id,
        }
    }

    /// `true` when the enabling condition itself is certifiable.
    pub fn condition_certifiable(&self) -> bool {
        matches!(self, CertRoute::Rule(_))
    }
}

/// One conditional send of the protocol: a message a correct process emits
/// only when a stated condition holds (paper §5: every such condition needs
/// a certification rule, or the send is unauditable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConditionalSend {
    /// Stable identifier, matched against rule coverage reports.
    pub id: &'static str,
    /// The kind of message sent.
    pub kind: MessageKind,
    /// The enabling condition, as stated in Fig. 3.
    pub condition: &'static str,
    /// The certification route auditing the send.
    pub route: CertRoute,
}

/// Declarative description of the transformed protocol's *send discipline*
/// (paper Fig. 3): which kinds open and close a peer's lifetime, what a
/// round's legal vote sequence is, and how rounds advance.
///
/// This is the artifact the paper's non-muteness module is built "from the
/// program text" (§4): `ftm-verify` *derives* the per-peer observer
/// automaton (Fig. 4) from this description and cross-checks it against
/// the hand-written [`ftm_detect::PeerAutomaton`] — so the spec below is
/// deliberately independent of that implementation.
///
/// # Example
///
/// ```
/// use ftm_core::spec::ProtocolSpec;
/// use ftm_certify::MessageKind;
/// let spec = ProtocolSpec::transformed();
/// assert_eq!(spec.opening, MessageKind::Init);
/// assert_eq!(spec.round_slots.len(), 2);
/// assert!(spec.round_slots[1].mandatory); // NEXT before leaving a round
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// The kind that opens a peer's lifetime: sent first, exactly once.
    pub opening: MessageKind,
    /// The per-round vote sequence, in send order.
    pub round_slots: Vec<SendSlot>,
    /// The kind that closes a peer's lifetime: legal at any time after the
    /// opening (decisions are relayed), after which the peer is silent.
    pub terminal: MessageKind,
    /// How many rounds a correct process advances at a time.
    pub round_advance: Round,
}

impl ProtocolSpec {
    /// The transformed Hurfin–Raynal protocol (Fig. 3): `INIT` opens,
    /// each round sends at most one `CURRENT` then at most one `NEXT`
    /// (the `NEXT` is mandatory before leaving the round, Fig. 3 line 31),
    /// `DECIDE` terminates, rounds advance one at a time.
    pub fn transformed() -> Self {
        ProtocolSpec {
            opening: MessageKind::Init,
            round_slots: vec![
                SendSlot {
                    kind: MessageKind::Current,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Next,
                    mandatory: true,
                },
            ],
            terminal: MessageKind::Decide,
            round_advance: 1,
        }
    }

    /// The slot index of `kind` in the round vote sequence, if any.
    pub fn slot_of(&self, kind: MessageKind) -> Option<usize> {
        self.round_slots.iter().position(|s| s.kind == kind)
    }

    /// Every conditional send of Fig. 3 with its certification route.
    ///
    /// This is the §5 obligation table: `ftm-verify` checks that each
    /// route's rule exists in `ftm-certify` (same kind, no dead rules) and
    /// that the *only* send whose condition is uncertifiable is the
    /// initial-value broadcast, routed through vector certification.
    pub fn conditional_sends(&self) -> Vec<ConditionalSend> {
        vec![
            ConditionalSend {
                id: "init-broadcast",
                kind: MessageKind::Init,
                condition: "protocol start: broadcast the signed initial value",
                route: CertRoute::VectorCertification("init-empty"),
            },
            ConditionalSend {
                id: "current-coordinator",
                kind: MessageKind::Current,
                condition: "round-r coordinator entered r with a witnessed estimate vector",
                route: CertRoute::Rule("current-coordinator"),
            },
            ConditionalSend {
                id: "current-relay",
                kind: MessageKind::Current,
                condition: "received the round-r coordinator's CURRENT and adopted it",
                route: CertRoute::Rule("current-relay"),
            },
            ConditionalSend {
                id: "next-suspicion",
                kind: MessageKind::Next,
                condition: "in q0, the muteness detector suspects the round coordinator",
                route: CertRoute::Rule("next-suspicion"),
            },
            ConditionalSend {
                id: "next-change-mind",
                kind: MessageKind::Next,
                condition: "in q1, a quorum of votes arrived but no decisive quorum",
                route: CertRoute::Rule("next-change-mind"),
            },
            ConditionalSend {
                id: "next-end-of-round",
                kind: MessageKind::Next,
                condition: "a full NEXT quorum for the round was observed",
                route: CertRoute::Rule("next-end-of-round"),
            },
            ConditionalSend {
                id: "decide-announce",
                kind: MessageKind::Decide,
                condition: "n−F CURRENT votes for one vector were collected",
                route: CertRoute::Rule("decide-current-quorum"),
            },
        ]
    }
}

/// Resilience parameters of a system instance.
///
/// # Example
///
/// ```
/// use ftm_core::spec::Resilience;
/// let r = Resilience::new(7, 2);
/// assert_eq!(r.quorum(), 5);       // n − F
/// assert_eq!(r.psi(), 3);          // n − 2F correct entries guaranteed
/// assert_eq!(r.default_cert_capacity(), 2); // ⌊(n−1)/3⌋
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    n: usize,
    f: usize,
}

impl Resilience {
    /// Creates resilience parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 2` and `f ≤ ⌊(n−1)/2⌋` — the transformed
    /// protocol's stated bound `F ≤ min(⌊(n−1)/2⌋, C)`; the `C` part is
    /// the certification capacity, checked by callers who model it.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        assert!(
            f <= (n - 1) / 2,
            "F = {f} exceeds ⌊(n−1)/2⌋ = {}",
            (n - 1) / 2
        );
        Resilience { n, f }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tolerated faulty processes `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Quorum `n − F` (replaces the crash model's majority `⌈(n+1)/2⌉`).
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// Guaranteed correct entries in a decided vector: `ψ = n − 2F ≥ 1`.
    pub fn psi(&self) -> usize {
        (self.n - 2 * self.f).max(1)
    }

    /// The capacity `C` of the usual certification mechanisms,
    /// `⌊(n−1)/3⌋` (paper footnote 2).
    pub fn default_cert_capacity(&self) -> usize {
        (self.n - 1) / 3
    }

    /// The round-`r` coordinator (0-based rotating coordinator).
    ///
    /// # Panics
    ///
    /// Panics for round 0.
    pub fn coordinator(&self, round: Round) -> usize {
        assert!(round >= 1, "round 0 has no coordinator");
        ((round - 1) % self.n as u64) as usize
    }

    /// Majority threshold of the *crash* protocol: smallest count strictly
    /// greater than `n/2`.
    pub fn crash_majority(&self) -> usize {
        self.n / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_psi_majority() {
        let r = Resilience::new(4, 1);
        assert_eq!(r.quorum(), 3);
        assert_eq!(r.psi(), 2);
        assert_eq!(r.crash_majority(), 3);
        assert_eq!(r.default_cert_capacity(), 1);
    }

    #[test]
    fn psi_is_at_least_one() {
        let r = Resilience::new(3, 1);
        assert_eq!(r.psi(), 1);
    }

    #[test]
    fn coordinator_rotates_zero_based() {
        let r = Resilience::new(3, 1);
        assert_eq!(r.coordinator(1), 0);
        assert_eq!(r.coordinator(3), 2);
        assert_eq!(r.coordinator(4), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn bound_is_enforced() {
        let _ = Resilience::new(4, 2);
    }

    #[test]
    fn odd_n_allows_floor_half() {
        let r = Resilience::new(7, 3);
        assert_eq!(r.quorum(), 4);
        assert_eq!(r.psi(), 1);
    }

    #[test]
    fn transformed_spec_names_every_wire_kind_once() {
        let spec = ProtocolSpec::transformed();
        assert_eq!(spec.opening, MessageKind::Init);
        assert_eq!(spec.terminal, MessageKind::Decide);
        assert_eq!(spec.slot_of(MessageKind::Current), Some(0));
        assert_eq!(spec.slot_of(MessageKind::Next), Some(1));
        assert_eq!(spec.slot_of(MessageKind::Init), None);
        // The opening and terminal kinds never appear as round slots.
        assert!(spec
            .round_slots
            .iter()
            .all(|s| s.kind != spec.opening && s.kind != spec.terminal));
        // The last slot is the mandatory one: leaving a round is witnessed.
        assert!(spec.round_slots.last().unwrap().mandatory);
    }

    #[test]
    fn conditional_sends_are_distinct_and_init_is_the_only_uncertifiable() {
        let spec = ProtocolSpec::transformed();
        let sends = spec.conditional_sends();
        let ids: std::collections::BTreeSet<&str> = sends.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), sends.len(), "send ids collide");
        let rules: std::collections::BTreeSet<&str> =
            sends.iter().map(|s| s.route.rule_id()).collect();
        assert_eq!(rules.len(), sends.len(), "rule references collide");
        for s in &sends {
            if !s.route.condition_certifiable() {
                assert_eq!(
                    s.kind, spec.opening,
                    "only initial values are uncertifiable"
                );
            }
        }
    }
}
